//! The CI bench report: JSON emission, parsing and baseline gating.
//!
//! The CI pipeline runs `figures --quick --json`, which sweeps the five
//! apps under all three protocols, writes the tracked metrics to
//! `BENCH_<run>.json` and — when `--baseline bench/baseline.json` is given —
//! fails the build if any tracked metric (modeled wall time, page loads,
//! invalidated pages) regressed by more than the tolerance against the
//! committed baseline.
//!
//! The build environment vendors no JSON crate, so this module carries a
//! minimal recursive-descent JSON parser that understands exactly the values
//! the report schema uses (objects, arrays, strings, numbers, booleans,
//! null).

use std::collections::HashMap;

use crate::FigureRow;

/// Relative regression tolerance of the CI gate: a tracked metric may grow
/// by at most this fraction over the committed baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Absolute slack added on top of the relative tolerance for the counter
/// metrics, so tiny baselines (a handful of page loads) do not flag ±1-page
/// scheduling noise as regressions.
const COUNTER_SLACK: f64 = 8.0;

/// Apps whose amount of work is schedule-dependent (branch-and-bound
/// search, dynamic chunk assignment): their *absolute* page-load and time
/// measurements vary strongly between runs under every protocol, so the
/// gate compares their work-normalized rates (per invalidation epoch / per
/// monitor acquisition) instead, plus a loose absolute blow-up ceiling.
const SCHEDULE_CHAOTIC_APPS: [&str; 2] = ["TSP", "Barnes-Hut"];

/// Absolute ceiling multiple for the schedule-chaotic apps: even their
/// noisy absolute metrics must stay under `ceiling · baseline`.
const CHAOTIC_CEILING: f64 = 3.0;

/// One row of a parsed bench report (current or baseline).
#[derive(Clone, Debug, PartialEq)]
pub struct ReportRow {
    /// Benchmark name (`Pi`, `Jacobi`, ...).
    pub app: String,
    /// Protocol name (`java_ic`, `java_pf`, `java_ad`).
    pub protocol: String,
    /// Cluster label (informational).
    pub cluster: String,
    /// Node count of the run.
    pub nodes: u64,
    /// Modeled wall time in virtual seconds.
    pub exec_seconds: f64,
    /// Cluster-wide pages fetched from remote homes.
    pub page_loads: u64,
    /// Cluster-wide pages dropped by cache invalidations.
    pub pages_invalidated: u64,
    /// Cluster-wide cache-invalidation episodes (work-normalisation base).
    pub cache_invalidations: u64,
    /// Cluster-wide monitor acquisitions (informational).
    pub monitor_enters: u64,
    /// Page loads per invalidation epoch, computed on each run's *own* pair
    /// of counters.  Envelopes fold this as the max of per-run rates —
    /// deriving a rate from independently-maxed counters could fall below a
    /// rate some real run produced and flag it as a regression.
    pub loads_per_epoch: f64,
    /// Pages invalidated per invalidation epoch (same per-run pairing).
    pub invalidated_per_epoch: f64,
    /// Informational: page faults taken.
    pub page_faults: u64,
    /// Informational: in-line locality checks performed.
    pub locality_checks: u64,
    /// Informational: `mprotect` calls performed.
    pub mprotect_calls: u64,
    /// Informational: multi-page fetch RPCs issued.
    pub batched_fetches: u64,
    /// Informational: `java_ad` detection-mode switches.
    pub protocol_switches: u64,
    /// Informational: diff RPCs sent at release points.
    pub diff_messages: u64,
    /// Informational: multi-page diff RPCs (batched flushing).
    pub batched_flushes: u64,
    /// Informational: pages whose home migrated to a dominant writer.
    pub pages_migrated: u64,
    /// Informational: fetch latency cycles hidden by overlapped transport.
    pub fetch_overlap_cycles_hidden: u64,
    /// Informational: pages hinted by home nodes on fetch replies.
    pub hints_sent: u64,
    /// Informational: hint-driven split-transaction fetches issued.
    pub hinted_fetches_issued: u64,
    /// Informational: hinted fetches completed by a real use.
    pub hinted_fetches_completed: u64,
    /// Informational: hinted fetches invalidated untouched (wasted hints).
    pub hinted_fetches_wasted: u64,
    /// Informational: release flushes handed to the deferred queue.
    pub deferred_flushes: u64,
    /// Informational: flush latency cycles hidden by deferred release.
    pub flush_overlap_cycles_hidden: u64,
    /// Serving-style operations completed (0 for the batch kernels); when
    /// non-zero, the throughput floor and p99 ceiling below are gated.
    pub serving_ops: u64,
    /// Serving throughput in operations per virtual second.  Tracked
    /// higher-is-better: the gate flags a run *below* the baseline floor,
    /// and envelopes fold it as the *minimum* across runs.
    pub serving_ops_per_s: f64,
    /// Modeled p99 latency of one serving operation in microseconds.
    /// Tracked lower-is-better like the other time metrics.
    pub serving_p99_us: f64,
}

/// Loads (or similar counters) per epoch, with an epoch-free run counting
/// as a single epoch.
fn per_epoch(count: u64, epochs: u64) -> f64 {
    count as f64 / epochs.max(1) as f64
}

impl ReportRow {
    /// The identity of a row inside a report.
    pub fn key(&self) -> (String, String, u64) {
        (self.app.clone(), self.protocol.clone(), self.nodes)
    }
}

impl From<&FigureRow> for ReportRow {
    fn from(row: &FigureRow) -> ReportRow {
        ReportRow {
            app: row.app.to_string(),
            protocol: row.protocol_label(),
            cluster: row.cluster.clone(),
            nodes: row.nodes as u64,
            exec_seconds: row.seconds,
            page_loads: row.stats.page_loads,
            pages_invalidated: row.stats.pages_invalidated,
            cache_invalidations: row.stats.cache_invalidations,
            monitor_enters: row.stats.monitor_enters,
            loads_per_epoch: per_epoch(row.stats.page_loads, row.stats.cache_invalidations),
            invalidated_per_epoch: per_epoch(
                row.stats.pages_invalidated,
                row.stats.cache_invalidations,
            ),
            page_faults: row.stats.page_faults,
            locality_checks: row.stats.locality_checks,
            mprotect_calls: row.stats.mprotect_calls,
            batched_fetches: row.stats.batched_fetches,
            protocol_switches: row.stats.protocol_switches,
            diff_messages: row.stats.diff_messages,
            batched_flushes: row.stats.batched_flushes,
            pages_migrated: row.stats.pages_migrated,
            fetch_overlap_cycles_hidden: row.stats.fetch_overlap_cycles_hidden,
            hints_sent: row.stats.hints_sent,
            hinted_fetches_issued: row.stats.hinted_fetches_issued,
            hinted_fetches_completed: row.stats.hinted_fetches_completed,
            hinted_fetches_wasted: row.stats.hinted_fetches_wasted,
            deferred_flushes: row.stats.deferred_flushes,
            flush_overlap_cycles_hidden: row.stats.flush_overlap_cycles_hidden,
            serving_ops: row.stats.serving_ops,
            serving_ops_per_s: row.serving_ops_per_s(),
            serving_p99_us: row.serving_p99_us,
        }
    }
}

/// Fold one sweep per run into a per-row *envelope*: every tracked metric
/// keeps its maximum across the runs, and the work-normalised rates keep
/// the maximum of the **per-run** rates (each computed on its own run's
/// counter pair).
///
/// Committed baselines for the dynamically scheduled apps are generated
/// this way: comparing a fresh draw against a single lucky run would flag
/// ordinary scheduling noise as a regression.
pub fn envelope(runs: &[Vec<FigureRow>]) -> Vec<ReportRow> {
    let mut out: Vec<ReportRow> = runs
        .first()
        .expect("envelope of at least one run")
        .iter()
        .map(ReportRow::from)
        .collect();
    for run in &runs[1..] {
        for (acc, row) in out.iter_mut().zip(run) {
            let next = ReportRow::from(row);
            assert_eq!(acc.key(), next.key(), "sweep order must be stable");
            acc.exec_seconds = acc.exec_seconds.max(next.exec_seconds);
            acc.page_loads = acc.page_loads.max(next.page_loads);
            acc.pages_invalidated = acc.pages_invalidated.max(next.pages_invalidated);
            acc.cache_invalidations = acc.cache_invalidations.max(next.cache_invalidations);
            acc.monitor_enters = acc.monitor_enters.max(next.monitor_enters);
            acc.loads_per_epoch = acc.loads_per_epoch.max(next.loads_per_epoch);
            acc.invalidated_per_epoch = acc.invalidated_per_epoch.max(next.invalidated_per_epoch);
            acc.page_faults = acc.page_faults.max(next.page_faults);
            acc.locality_checks = acc.locality_checks.max(next.locality_checks);
            acc.mprotect_calls = acc.mprotect_calls.max(next.mprotect_calls);
            acc.batched_fetches = acc.batched_fetches.max(next.batched_fetches);
            acc.protocol_switches = acc.protocol_switches.max(next.protocol_switches);
            acc.diff_messages = acc.diff_messages.max(next.diff_messages);
            acc.batched_flushes = acc.batched_flushes.max(next.batched_flushes);
            acc.pages_migrated = acc.pages_migrated.max(next.pages_migrated);
            acc.fetch_overlap_cycles_hidden = acc
                .fetch_overlap_cycles_hidden
                .max(next.fetch_overlap_cycles_hidden);
            acc.hints_sent = acc.hints_sent.max(next.hints_sent);
            acc.hinted_fetches_issued = acc.hinted_fetches_issued.max(next.hinted_fetches_issued);
            acc.hinted_fetches_completed = acc
                .hinted_fetches_completed
                .max(next.hinted_fetches_completed);
            acc.hinted_fetches_wasted = acc.hinted_fetches_wasted.max(next.hinted_fetches_wasted);
            acc.deferred_flushes = acc.deferred_flushes.max(next.deferred_flushes);
            acc.flush_overlap_cycles_hidden = acc
                .flush_overlap_cycles_hidden
                .max(next.flush_overlap_cycles_hidden);
            acc.serving_ops = acc.serving_ops.max(next.serving_ops);
            // Throughput is higher-is-better, so the worst-case envelope
            // keeps the *minimum* observed rate (the floor the gate holds).
            acc.serving_ops_per_s = acc.serving_ops_per_s.min(next.serving_ops_per_s);
            acc.serving_p99_us = acc.serving_p99_us.max(next.serving_p99_us);
        }
    }
    out
}

/// Serialise a bench report (single run or envelope) as the JSON consumed
/// by [`parse_report`].  `run` labels the producing CI run (the workflow
/// passes `GITHUB_RUN_ID`).
pub fn report_to_json(run: &str, scale: &str, rows: &[ReportRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": 1,\n  \"run\": {},\n", quote(run)));
    out.push_str(&format!("  \"scale\": {},\n  \"rows\": [\n", quote(scale)));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": {}, \"protocol\": {}, \"cluster\": {}, \"nodes\": {}, \
             \"exec_seconds\": {:.9}, \"page_loads\": {}, \"pages_invalidated\": {}, \
             \"cache_invalidations\": {}, \"monitor_enters\": {}, \
             \"loads_per_epoch\": {:.6}, \"invalidated_per_epoch\": {:.6}, \
             \"page_faults\": {}, \"locality_checks\": {}, \"mprotect_calls\": {}, \
             \"batched_fetches\": {}, \"protocol_switches\": {}, \"diff_messages\": {}, \
             \"batched_flushes\": {}, \"pages_migrated\": {}, \
             \"fetch_overlap_cycles_hidden\": {}, \"hints_sent\": {}, \
             \"hinted_fetches_issued\": {}, \"hinted_fetches_completed\": {}, \
             \"hinted_fetches_wasted\": {}, \"deferred_flushes\": {}, \
             \"flush_overlap_cycles_hidden\": {}, \"serving_ops\": {}, \
             \"serving_ops_per_s\": {:.3}, \"serving_p99_us\": {:.3}}}{}\n",
            quote(&r.app),
            quote(&r.protocol),
            quote(&r.cluster),
            r.nodes,
            r.exec_seconds,
            r.page_loads,
            r.pages_invalidated,
            r.cache_invalidations,
            r.monitor_enters,
            r.loads_per_epoch,
            r.invalidated_per_epoch,
            r.page_faults,
            r.locality_checks,
            r.mprotect_calls,
            r.batched_fetches,
            r.protocol_switches,
            r.diff_messages,
            r.batched_flushes,
            r.pages_migrated,
            r.fetch_overlap_cycles_hidden,
            r.hints_sent,
            r.hinted_fetches_issued,
            r.hinted_fetches_completed,
            r.hinted_fetches_wasted,
            r.deferred_flushes,
            r.flush_overlap_cycles_hidden,
            r.serving_ops,
            r.serving_ops_per_s,
            r.serving_p99_us,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a bench report produced by [`report_to_json`] (or an equivalent
/// hand-maintained baseline file) into its rows.
pub fn parse_report(json: &str) -> Result<Vec<ReportRow>, String> {
    let value = Json::parse(json)?;
    let rows = value
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("report has no \"rows\" array")?;
    rows.iter()
        .map(|row| {
            let counter = |key: &str| row.get(key).and_then(Json::as_f64).map(|v| v as u64);
            let page_loads = counter("page_loads").ok_or("row missing \"page_loads\"")?;
            let pages_invalidated =
                counter("pages_invalidated").ok_or("row missing \"pages_invalidated\"")?;
            let cache_invalidations =
                counter("cache_invalidations").ok_or("row missing \"cache_invalidations\"")?;
            Ok(ReportRow {
                app: row
                    .get("app")
                    .and_then(Json::as_str)
                    .ok_or("row missing \"app\"")?
                    .to_string(),
                protocol: row
                    .get("protocol")
                    .and_then(Json::as_str)
                    .ok_or("row missing \"protocol\"")?
                    .to_string(),
                cluster: row
                    .get("cluster")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                nodes: counter("nodes").ok_or("row missing \"nodes\"")?,
                exec_seconds: row
                    .get("exec_seconds")
                    .and_then(Json::as_f64)
                    .ok_or("row missing \"exec_seconds\"")?,
                page_loads,
                pages_invalidated,
                cache_invalidations,
                monitor_enters: counter("monitor_enters").unwrap_or(0),
                // Rate fields may be absent in hand-maintained baselines;
                // fall back to the row's own counter pair.
                loads_per_epoch: row
                    .get("loads_per_epoch")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| per_epoch(page_loads, cache_invalidations)),
                invalidated_per_epoch: row
                    .get("invalidated_per_epoch")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| per_epoch(pages_invalidated, cache_invalidations)),
                page_faults: counter("page_faults").unwrap_or(0),
                locality_checks: counter("locality_checks").unwrap_or(0),
                mprotect_calls: counter("mprotect_calls").unwrap_or(0),
                batched_fetches: counter("batched_fetches").unwrap_or(0),
                protocol_switches: counter("protocol_switches").unwrap_or(0),
                diff_messages: counter("diff_messages").unwrap_or(0),
                batched_flushes: counter("batched_flushes").unwrap_or(0),
                pages_migrated: counter("pages_migrated").unwrap_or(0),
                fetch_overlap_cycles_hidden: counter("fetch_overlap_cycles_hidden").unwrap_or(0),
                hints_sent: counter("hints_sent").unwrap_or(0),
                hinted_fetches_issued: counter("hinted_fetches_issued").unwrap_or(0),
                hinted_fetches_completed: counter("hinted_fetches_completed").unwrap_or(0),
                hinted_fetches_wasted: counter("hinted_fetches_wasted").unwrap_or(0),
                deferred_flushes: counter("deferred_flushes").unwrap_or(0),
                flush_overlap_cycles_hidden: counter("flush_overlap_cycles_hidden").unwrap_or(0),
                serving_ops: counter("serving_ops").unwrap_or(0),
                serving_ops_per_s: row
                    .get("serving_ops_per_s")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                serving_p99_us: row
                    .get("serving_p99_us")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            })
        })
        .collect()
}

/// Compare a freshly measured sweep against a baseline report.
///
/// Returns one human-readable line per regression: a tracked metric that
/// grew by more than `tolerance` (relative, plus a small absolute slack for
/// the counters).  Baseline rows with no current counterpart are reported
/// too — a silently dropped benchmark must not pass the gate.  Current rows
/// missing from the baseline are fine (new benchmarks land before their
/// baseline is refreshed).
pub fn compare_to_baseline(
    current: &[ReportRow],
    baseline: &[ReportRow],
    tolerance: f64,
) -> Vec<String> {
    let measured: HashMap<(String, String, u64), &ReportRow> =
        current.iter().map(|row| (row.key(), row)).collect();

    let mut regressions = Vec::new();
    for base in baseline {
        let Some(now) = measured.get(&base.key()) else {
            regressions.push(format!(
                "{}/{} @ {} nodes: present in baseline but not measured",
                base.app, base.protocol, base.nodes
            ));
            continue;
        };
        let chaotic = SCHEDULE_CHAOTIC_APPS.contains(&base.app.as_str());
        let mut flag = |metric: &str, base_v: f64, now_v: f64, limit: f64| {
            if now_v > limit {
                regressions.push(format!(
                    "{}/{} @ {} nodes: {} regressed {:.6} -> {:.6} (limit {:.6})",
                    base.app, base.protocol, base.nodes, metric, base_v, now_v, limit
                ));
            }
        };
        if chaotic {
            // Work-normalised rates are stable across the schedule-dependent
            // exploration size; absolute values only get a blow-up ceiling.
            // The explicit rate fields are compared (not rates derived from
            // the envelope counters): an envelope maxes its counters
            // independently, and a ratio of two independent maxima can fall
            // below a rate some real baseline run produced.
            flag(
                "page_loads/epoch",
                base.loads_per_epoch,
                now.loads_per_epoch,
                base.loads_per_epoch * (1.0 + tolerance) + 0.25,
            );
            flag(
                "pages_invalidated/epoch",
                base.invalidated_per_epoch,
                now.invalidated_per_epoch,
                base.invalidated_per_epoch * (1.0 + tolerance) + 0.25,
            );
            // Per-monitor-enter time is itself schedule-dependent (waiting
            // and contention scale non-linearly with the explored work), so
            // wall time only gets the blow-up ceiling below.
            flag(
                "page_loads (ceiling)",
                base.page_loads as f64,
                now.page_loads as f64,
                base.page_loads as f64 * CHAOTIC_CEILING + COUNTER_SLACK,
            );
            flag(
                "exec_seconds (ceiling)",
                base.exec_seconds,
                now.exec_seconds,
                base.exec_seconds * CHAOTIC_CEILING,
            );
        } else {
            flag(
                "page_loads",
                base.page_loads as f64,
                now.page_loads as f64,
                base.page_loads as f64 * (1.0 + tolerance) + COUNTER_SLACK,
            );
            flag(
                "pages_invalidated",
                base.pages_invalidated as f64,
                now.pages_invalidated as f64,
                base.pages_invalidated as f64 * (1.0 + tolerance) + COUNTER_SLACK,
            );
            flag(
                "exec_seconds",
                base.exec_seconds,
                now.exec_seconds,
                base.exec_seconds * (1.0 + tolerance),
            );
        }
        if base.serving_ops > 0 {
            // Serving rows additionally gate the two serving headline
            // metrics.  p99 is lower-is-better, but it is a tail statistic —
            // the 10th-worst op of a kilo-op quick run — and sits right at
            // the adaptive protocol's fault-vs-check boundary, so between
            // runs it flips modes by several-fold.  The gate therefore holds
            // an 8x blow-up ceiling (plus 1 µs for tiny baselines): mode
            // flips pass, a runaway tail (retry storms, flapping pages)
            // still fails.  Throughput is higher-is-better, so the
            // regression direction flips — the gate holds a *floor* under
            // the measured rate.
            flag(
                "serving_p99_us",
                base.serving_p99_us,
                now.serving_p99_us,
                base.serving_p99_us * 8.0 + 1.0,
            );
            let floor = base.serving_ops_per_s * (1.0 - tolerance);
            if now.serving_ops_per_s < floor {
                regressions.push(format!(
                    "{}/{} @ {} nodes: serving_ops_per_s regressed {:.1} -> {:.1} (floor {:.1})",
                    base.app,
                    base.protocol,
                    base.nodes,
                    base.serving_ops_per_s,
                    now.serving_ops_per_s,
                    floor
                ));
            }
        }
    }
    regressions
}

/// Render a measured sweep against its baseline as a GitHub-flavoured
/// markdown table (written to `$GITHUB_STEP_SUMMARY` by the CI gate), so a
/// failing — or passing — bench gate shows its per-app deltas instead of
/// only an exit code.
///
/// One row per (app, protocol, nodes) key of the *current* sweep, with the
/// relative delta of the headline metrics against the baseline envelope and
/// a status column; baseline rows that were not measured at all are listed
/// after the table (they are gate failures).
pub fn markdown_summary(
    current: &[ReportRow],
    baseline: &[ReportRow],
    regressions: &[String],
) -> String {
    let base: HashMap<(String, String, u64), &ReportRow> =
        baseline.iter().map(|row| (row.key(), row)).collect();
    let delta = |b: f64, n: f64| -> String {
        if b == 0.0 {
            if n == 0.0 {
                "—".to_string()
            } else {
                format!("+{n:.0}")
            }
        } else {
            format!("{:+.1}%", (n - b) / b * 100.0)
        }
    };
    let mut out = String::new();
    out.push_str("## Bench gate: per-app deltas vs committed baseline\n\n");
    out.push_str(&format!(
        "{} row(s) measured, {} baseline row(s), {} regression(s).\n\n",
        current.len(),
        baseline.len(),
        regressions.len()
    ));
    // Serving rows (KV store, PageRank) additionally show their headline
    // throughput and modeled p99; the batch kernels show "—".
    let serving = |row: &ReportRow, b: Option<&&ReportRow>| -> (String, String) {
        if row.serving_ops == 0 {
            return ("—".to_string(), "—".to_string());
        }
        let ops = match b.filter(|b| b.serving_ops > 0) {
            Some(b) => format!(
                "{:.0} ({})",
                row.serving_ops_per_s,
                delta(b.serving_ops_per_s, row.serving_ops_per_s)
            ),
            None => format!("{:.0}", row.serving_ops_per_s),
        };
        let p99 = match b.filter(|b| b.serving_ops > 0) {
            Some(b) => format!(
                "{:.1} ({})",
                row.serving_p99_us,
                delta(b.serving_p99_us, row.serving_p99_us)
            ),
            None => format!("{:.1}", row.serving_p99_us),
        };
        (ops, p99)
    };
    out.push_str(
        "| app | protocol | nodes | exec (s) | Δ exec | page loads | Δ loads | Δ loads/epoch | ops/s | p99 (µs) | status |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for row in current {
        let key = row.key();
        let status = if regressions.iter().any(|r| {
            r.starts_with(&format!(
                "{}/{} @ {} nodes",
                row.app, row.protocol, row.nodes
            ))
        }) {
            "❌ regressed"
        } else if base.contains_key(&key) {
            "✅"
        } else {
            "🆕 no baseline"
        };
        let (ops_cell, p99_cell) = serving(row, base.get(&key));
        match base.get(&key) {
            Some(b) => out.push_str(&format!(
                "| {} | {} | {} | {:.4} | {} | {} | {} | {} | {} | {} | {} |\n",
                row.app,
                row.protocol,
                row.nodes,
                row.exec_seconds,
                delta(b.exec_seconds, row.exec_seconds),
                row.page_loads,
                delta(b.page_loads as f64, row.page_loads as f64),
                delta(b.loads_per_epoch, row.loads_per_epoch),
                ops_cell,
                p99_cell,
                status
            )),
            None => out.push_str(&format!(
                "| {} | {} | {} | {:.4} | — | {} | — | — | {} | {} | {} |\n",
                row.app,
                row.protocol,
                row.nodes,
                row.exec_seconds,
                row.page_loads,
                ops_cell,
                p99_cell,
                status
            )),
        }
    }
    let measured: HashMap<(String, String, u64), &ReportRow> =
        current.iter().map(|row| (row.key(), row)).collect();
    let dropped: Vec<&ReportRow> = baseline
        .iter()
        .filter(|b| !measured.contains_key(&b.key()))
        .collect();
    if !dropped.is_empty() {
        out.push_str("\n**Baseline rows not measured (gate failures):**\n\n");
        for b in dropped {
            out.push_str(&format!("- {}/{} @ {} nodes\n", b.app, b.protocol, b.nodes));
        }
    }
    if !regressions.is_empty() {
        out.push_str("\n<details><summary>Regression detail</summary>\n\n");
        for r in regressions {
            out.push_str(&format!("- {r}\n"));
        }
        out.push_str("\n</details>\n");
    }
    out.push('\n');
    out
}

/// Render the one-page "modeled vs measured" transport report: for every
/// figure row of a socket-backend sweep
/// ([`crate::sweep_modeled_vs_measured`]), the modeled virtual-time RPC cost
/// next to the wall-clock time of the real socket round trips, per RPC
/// service.
///
/// The two columns answer different questions and are *expected* to differ —
/// the modeled span charges the paper's 1999-era Myrinet/SCI cluster while
/// the measured span is a same-host socket hop — so the value of the table
/// is in the *ratios staying stable across apps and services*, which is what
/// shows the cost model ranks the protocols faithfully.
pub fn modeled_vs_measured_markdown(rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str("## Modeled vs measured: virtual-time cost model against real socket RPCs\n\n");
    if rows.is_empty() {
        out.push_str("_No rows: the sweep produced nothing._\n");
        return out;
    }
    let backend = rows
        .iter()
        .find(|r| !r.wire.is_empty())
        .map(|r| r.transport)
        .unwrap_or(rows[0].transport);
    out.push_str(&format!(
        "Backend: `{}` on `{}`. Modeled µs/RPC is the virtual-time round-trip span charged by \
         the machine model; measured µs/RPC is the wall-clock span of the matching socket \
         exchange on this host.\n\n",
        backend, rows[0].cluster
    ));
    out.push_str(
        "| app | protocol | nodes | service | RPCs | sent (B) | received (B) | modeled µs/RPC | \
         measured µs/RPC | model/wire |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for row in rows {
        if row.wire.is_empty() {
            out.push_str(&format!(
                "| {} | {} | {} | — | 0 | 0 | 0 | — | — | — |\n",
                row.app,
                row.protocol_label(),
                row.nodes
            ));
            continue;
        }
        for (service, w) in &row.wire {
            let modeled = w.modeled_us_per_rpc();
            let measured = w.measured_us_per_rpc();
            let ratio = if measured > 0.0 {
                format!("{:.2}×", modeled / measured)
            } else {
                "—".to_string()
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.2} | {:.2} | {} |\n",
                row.app,
                row.protocol_label(),
                row.nodes,
                service,
                w.messages,
                w.bytes_sent,
                w.bytes_received,
                modeled,
                measured,
                ratio
            ));
        }
    }
    out.push('\n');
    out
}

/// Render the chaos sweep ([`crate::sweep_chaos`]) as a Markdown report:
/// per (app, protocol), whether the faulted run reproduced the fault-free
/// digest, the virtual-time cost of surviving the schedule, and the fault /
/// recovery counters that explain it.
pub fn chaos_markdown(spec: &str, pairs: &[crate::ChaosPair]) -> String {
    let mut out = String::new();
    out.push_str("## Chaos report: digests and recovery cost under injected faults\n\n");
    if pairs.is_empty() {
        out.push_str("_No rows: the sweep produced nothing._\n");
        return out;
    }
    out.push_str(&format!(
        "Fault schedule: `{}` on `{}` at {} nodes, quorum replication `r=2, w=2`. Every \
         schedule is seeded and exactly replayable. \"digest\" compares the faulted run's \
         result against the fault-free reference — injected drops, delays, duplicate frames \
         and even a node kill may change timing, never values.\n\n",
        spec, pairs[0].baseline.cluster, pairs[0].baseline.nodes
    ));
    out.push_str(
        "| app | protocol | digest | fault-free s | faulted s | overhead | retries | \
         timeouts | drops injected | nodes failed | pages resynced |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    let mut mismatches = 0usize;
    for pair in pairs {
        let s = &pair.faulted.stats;
        let overhead = if pair.baseline.seconds > 0.0 {
            format!(
                "{:+.1}%",
                (pair.faulted.seconds / pair.baseline.seconds - 1.0) * 100.0
            )
        } else {
            "—".to_string()
        };
        if !pair.digests_match() {
            mismatches += 1;
        }
        out.push_str(&format!(
            "| {} | {} | {} | {:.4} | {:.4} | {} | {} | {} | {} | {} | {} |\n",
            pair.baseline.app,
            pair.baseline.protocol_label(),
            if pair.digests_match() {
                "ok"
            } else {
                "MISMATCH"
            },
            pair.baseline.seconds,
            pair.faulted.seconds,
            overhead,
            s.rpc_retries,
            s.rpc_timeouts,
            s.frames_dropped_injected,
            s.nodes_failed,
            s.pages_resynced,
        ));
    }
    out.push('\n');
    if mismatches == 0 {
        out.push_str("All digests match their fault-free reference.\n");
    } else {
        out.push_str(&format!(
            "**{mismatches} digest mismatch(es): the fault plane corrupted a result.**\n"
        ));
    }
    out
}

// ----- a minimal JSON value + parser ---------------------------------------

/// A parsed JSON value (only what the report schema needs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (member order is not preserved).
    Object(HashMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements of an array (`None` elsewhere).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string (`None` elsewhere).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (the report only emits ASCII, but a
                // hand-edited baseline may not).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = HashMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_point, Scale};
    use hyperion::prelude::*;
    use hyperion_apps::common::BenchmarkName;

    #[test]
    fn json_parser_handles_the_report_shapes() {
        let v = Json::parse(
            r#"{"schema": 1, "ok": true, "none": null, "xs": [1, -2.5, "a\"b"], "nested": {"k": 3e2}}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
        let xs = v.get("xs").and_then(Json::as_array).unwrap();
        assert_eq!(xs[0].as_f64(), Some(1.0));
        assert_eq!(xs[1].as_f64(), Some(-2.5));
        assert_eq!(xs[2].as_str(), Some("a\"b"));
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("k"))
                .and_then(Json::as_f64),
            Some(300.0)
        );
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2] trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    fn sample_rows() -> Vec<ReportRow> {
        [ProtocolKind::JavaIc, ProtocolKind::JavaPf]
            .into_iter()
            .map(|p| {
                ReportRow::from(&run_point(
                    BenchmarkName::Pi,
                    Scale::Quick,
                    &sci_450(),
                    p,
                    2,
                ))
            })
            .collect()
    }

    #[test]
    fn report_round_trips_through_json() {
        let rows = sample_rows();
        let json = report_to_json("12345", "quick", &rows);
        let parsed = parse_report(&json).unwrap();
        assert_eq!(parsed.len(), rows.len());
        assert_eq!(parsed[0].app, "Pi");
        assert_eq!(parsed[0].protocol, "java_ic");
        assert_eq!(parsed[0].nodes, 2);
        assert_eq!(parsed[0].page_loads, rows[0].page_loads);
        assert!((parsed[0].exec_seconds - rows[0].exec_seconds).abs() < 1e-9);
        assert!((parsed[0].loads_per_epoch - rows[0].loads_per_epoch).abs() < 1e-5);
        // A fresh report never regresses against itself.
        assert!(compare_to_baseline(&rows, &parsed, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn parse_derives_rates_when_a_baseline_omits_them() {
        let json = r#"{"schema": 1, "rows": [
            {"app": "TSP", "protocol": "java_ic", "nodes": 4, "exec_seconds": 0.01,
             "page_loads": 100, "pages_invalidated": 90, "cache_invalidations": 50}
        ]}"#;
        let rows = parse_report(json).unwrap();
        assert_eq!(rows[0].monitor_enters, 0);
        assert!((rows[0].loads_per_epoch - 2.0).abs() < 1e-12);
        assert!((rows[0].invalidated_per_epoch - 1.8).abs() < 1e-12);
    }

    #[test]
    fn gate_flags_regressions_and_dropped_rows() {
        let rows = sample_rows();
        let mut baseline = parse_report(&report_to_json("x", "quick", &rows)).unwrap();
        // Make the baseline dramatically better than reality.
        baseline[0].exec_seconds /= 2.0;
        baseline[0].page_loads = 0;
        let findings = compare_to_baseline(&rows, &baseline, DEFAULT_TOLERANCE);
        assert!(
            findings.iter().any(|f| f.contains("exec_seconds")),
            "{findings:?}"
        );
        // A baseline row the sweep no longer produces is a failure, too.
        baseline.push(ReportRow {
            app: "Ghost".to_string(),
            protocol: "java_ic".to_string(),
            cluster: String::new(),
            nodes: 2,
            exec_seconds: 1.0,
            page_loads: 1,
            pages_invalidated: 1,
            cache_invalidations: 1,
            monitor_enters: 1,
            loads_per_epoch: 1.0,
            invalidated_per_epoch: 1.0,
            page_faults: 0,
            locality_checks: 0,
            mprotect_calls: 0,
            batched_fetches: 0,
            protocol_switches: 0,
            diff_messages: 0,
            batched_flushes: 0,
            pages_migrated: 0,
            fetch_overlap_cycles_hidden: 0,
            hints_sent: 0,
            hinted_fetches_issued: 0,
            hinted_fetches_completed: 0,
            hinted_fetches_wasted: 0,
            deferred_flushes: 0,
            flush_overlap_cycles_hidden: 0,
            serving_ops: 0,
            serving_ops_per_s: 0.0,
            serving_p99_us: 0.0,
        });
        let findings = compare_to_baseline(&rows, &baseline, DEFAULT_TOLERANCE);
        assert!(findings.iter().any(|f| f.contains("not measured")));
        // Small counter noise stays under the absolute slack.
        let mut noisy = parse_report(&report_to_json("x", "quick", &rows)).unwrap();
        for row in &mut noisy {
            row.page_loads = row.page_loads.saturating_sub(2);
        }
        assert!(compare_to_baseline(&rows, &noisy, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn serving_gate_tracks_throughput_floor_and_p99_ceiling() {
        let row = run_point(
            BenchmarkName::KvStore,
            Scale::Quick,
            &sci_450(),
            ProtocolKind::JavaAd,
            2,
        );
        let current = vec![ReportRow::from(&row)];
        assert!(current[0].serving_ops > 0);
        assert!(current[0].serving_ops_per_s > 0.0);
        // A KV op that misses a page pays a remote fetch, so the tail is
        // well above the 1 µs absolute slack of the gate.
        assert!(current[0].serving_p99_us > 1.0);

        // The serving fields round-trip through the JSON report and a fresh
        // report never regresses against itself.
        let parsed = parse_report(&report_to_json("x", "quick", &current)).unwrap();
        assert_eq!(parsed[0].serving_ops, current[0].serving_ops);
        assert!((parsed[0].serving_ops_per_s - current[0].serving_ops_per_s).abs() < 1e-2);
        assert!((parsed[0].serving_p99_us - current[0].serving_p99_us).abs() < 1e-2);
        assert!(compare_to_baseline(&current, &parsed, DEFAULT_TOLERANCE).is_empty());

        // A baseline with twice the throughput flags the measured drop
        // (higher-is-better: the gate holds a floor)...
        let mut fast = parsed.clone();
        fast[0].serving_ops_per_s = current[0].serving_ops_per_s * 2.0;
        let findings = compare_to_baseline(&current, &fast, DEFAULT_TOLERANCE);
        assert!(
            findings.iter().any(|f| f.contains("serving_ops_per_s")),
            "{findings:?}"
        );
        // ...and a baseline whose tail the measurement blows past the 8x
        // mode-flip ceiling flags the p99 growth.
        let mut tight = parsed.clone();
        tight[0].serving_p99_us = (current[0].serving_p99_us / 16.0 - 1.0).max(0.0);
        let findings = compare_to_baseline(&current, &tight, DEFAULT_TOLERANCE);
        assert!(
            findings.iter().any(|f| f.contains("serving_p99_us")),
            "{findings:?}"
        );

        // The envelope keeps the *worst* serving numbers: minimum
        // throughput, maximum p99.
        let mut slow = row.clone();
        slow.seconds *= 2.0;
        slow.serving_p99_us *= 2.0;
        let env = envelope(&[vec![row.clone()], vec![slow.clone()]]);
        let slow_row = ReportRow::from(&slow);
        assert!((env[0].serving_ops_per_s - slow_row.serving_ops_per_s).abs() < 1e-9);
        assert!((env[0].serving_p99_us - slow_row.serving_p99_us).abs() < 1e-9);

        // Batch kernels gate nothing extra: their serving fields are zero.
        let pi = ReportRow::from(&run_point(
            BenchmarkName::Pi,
            Scale::Quick,
            &sci_450(),
            ProtocolKind::JavaPf,
            2,
        ));
        assert_eq!(pi.serving_ops, 0);
        assert_eq!(pi.serving_ops_per_s, 0.0);
    }

    #[test]
    fn envelope_rates_cover_every_observed_run() {
        // Two anti-correlated TSP-like draws: run A has the *higher* rate on
        // the *smaller* absolute counts.  An envelope deriving its rate from
        // the independently-maxed counters would sit below run A's rate
        // (120/20 = 6.0 < 10.0) and flag an ordinary re-draw of run A as a
        // regression; the per-run-rate fold must keep the max observed rate.
        let mut a = run_point(
            BenchmarkName::Tsp,
            Scale::Quick,
            &sci_450(),
            ProtocolKind::JavaIc,
            2,
        );
        let mut b = a.clone();
        a.stats.page_loads = 100;
        a.stats.cache_invalidations = 10;
        b.stats.page_loads = 120;
        b.stats.cache_invalidations = 20;
        let env = envelope(&[vec![a.clone()], vec![b.clone()]]);
        assert_eq!(env[0].page_loads, 120);
        assert_eq!(env[0].cache_invalidations, 20);
        assert!((env[0].loads_per_epoch - 10.0).abs() < 1e-12);
        // Both original draws pass a gate against the envelope.
        for run in [&a, &b] {
            let current = vec![ReportRow::from(run)];
            let findings = compare_to_baseline(&current, &env, DEFAULT_TOLERANCE);
            assert!(findings.is_empty(), "{findings:?}");
        }
    }
}
