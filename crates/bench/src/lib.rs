//! # hyperion-bench
//!
//! The figure- and table-regeneration harness of the Hyperion-RS
//! reproduction.  For every table and figure of *"Remote object detection in
//! cluster-based Java"* (Antoniu & Hatcher, 2001) this crate provides code
//! that regenerates the corresponding data:
//!
//! * **Figures 1–5** — [`sweep_figure`] runs the matching benchmark program
//!   over both modelled clusters, both protocols and the paper's node
//!   counts, producing one [`FigureRow`] per data point (execution time in
//!   virtual seconds plus the event counts that explain it).
//! * **Table 1** — [`table1_modules`] maps every Hyperion runtime module to
//!   the crate/module of this reproduction that implements it.
//! * **Table 2** — [`table2_primitives`] lists the DSM primitives together
//!   with their micro-measured virtual cost on a two-node cluster.
//! * **§4.3 claims** — [`improvement_summary`] derives the
//!   `java_ic` → `java_pf` improvement percentages the paper discusses.
//! * **Figure 6 (extension)** — [`sweep_adaptive`] compares `java_ic`,
//!   `java_pf` and the adaptive `java_ad` across all five apps, and
//!   [`threshold_ablation`] sweeps the adaptive switching threshold.
//! * **Figure 9 (extension)** — [`sweep_serving`] runs the serving-workload
//!   family (Zipf-skewed KV store, PageRank) under all three protocols and
//!   reports throughput plus modeled p99 per operation.
//! * **Figure 10 (extension)** — [`sweep_scaling`] sweeps node counts
//!   4 → 64 with the two-level home hierarchy on and off, pairing each
//!   point's flat run against its grouped run.
//! * **CI gate** — [`report`] turns a sweep into `BENCH_<run>.json` and
//!   compares it against the committed `bench/baseline.json`.
//!
//! The `figures` binary (`src/main.rs`) is the command-line front end; the
//! Criterion benches under `benches/` wrap the same sweeps.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod report;

use hyperion::prelude::*;
use hyperion::{FaultSpec, StatsSnapshot, WireServiceSnapshot};
use hyperion_apps::common::{protocols_under_test, Benchmark, BenchmarkName};
use hyperion_apps::{asp, barnes, graph, jacobi, kvstore, pi, tsp};

/// Problem-size scale of a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances (seconds for the full sweep; used by CI and benches).
    Quick,
    /// Default harness scale: large enough that the paper's qualitative
    /// behaviour is visible, small enough to run the full sweep on a laptop.
    Harness,
    /// The paper's problem sizes (§4.1).  Slow: use for single data points.
    Paper,
}

impl Scale {
    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "harness" => Some(Scale::Harness),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The command-line name of this scale.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Harness => "harness",
            Scale::Paper => "paper",
        }
    }
}

/// Build the benchmark parameterisation for an app at a scale.
pub fn benchmark_at(name: BenchmarkName, scale: Scale) -> Box<dyn Benchmark> {
    match (name, scale) {
        (BenchmarkName::Pi, Scale::Quick) => Box::new(pi::PiParams::quick()),
        (BenchmarkName::Pi, Scale::Harness) => Box::new(pi::PiParams::harness()),
        (BenchmarkName::Pi, Scale::Paper) => Box::new(pi::PiParams::paper()),
        (BenchmarkName::Jacobi, Scale::Quick) => Box::new(jacobi::JacobiParams::quick()),
        (BenchmarkName::Jacobi, Scale::Harness) => Box::new(jacobi::JacobiParams::harness()),
        (BenchmarkName::Jacobi, Scale::Paper) => Box::new(jacobi::JacobiParams::paper()),
        (BenchmarkName::Barnes, Scale::Quick) => Box::new(barnes::BarnesParams::quick()),
        (BenchmarkName::Barnes, Scale::Harness) => Box::new(barnes::BarnesParams::harness()),
        (BenchmarkName::Barnes, Scale::Paper) => Box::new(barnes::BarnesParams::paper()),
        (BenchmarkName::Tsp, Scale::Quick) => Box::new(tsp::TspParams::quick()),
        (BenchmarkName::Tsp, Scale::Harness) => Box::new(tsp::TspParams::harness()),
        (BenchmarkName::Tsp, Scale::Paper) => Box::new(tsp::TspParams::paper()),
        (BenchmarkName::Asp, Scale::Quick) => Box::new(asp::AspParams::quick()),
        (BenchmarkName::Asp, Scale::Harness) => Box::new(asp::AspParams::harness()),
        (BenchmarkName::Asp, Scale::Paper) => Box::new(asp::AspParams::paper()),
        (BenchmarkName::KvStore, Scale::Quick) => Box::new(kvstore::KvStoreParams::quick()),
        (BenchmarkName::KvStore, Scale::Harness) => Box::new(kvstore::KvStoreParams::harness()),
        (BenchmarkName::KvStore, Scale::Paper) => Box::new(kvstore::KvStoreParams::paper()),
        (BenchmarkName::PageRank, Scale::Quick) => Box::new(graph::PageRankParams::quick()),
        (BenchmarkName::PageRank, Scale::Harness) => Box::new(graph::PageRankParams::harness()),
        (BenchmarkName::PageRank, Scale::Paper) => Box::new(graph::PageRankParams::paper()),
    }
}

/// The node counts plotted in the paper's figures for a given cluster
/// (1–12 on the Myrinet cluster, 1–6 on the SCI cluster).
pub fn paper_node_counts(cluster: &ClusterSpec) -> Vec<usize> {
    let candidates: &[usize] = if cluster.max_nodes >= 12 {
        &[1, 2, 4, 6, 8, 10, 12]
    } else {
        &[1, 2, 3, 4, 5, 6]
    };
    candidates
        .iter()
        .copied()
        .filter(|&n| n <= cluster.max_nodes)
        .collect()
}

/// One data point of a figure: a (cluster, protocol, node count) execution.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Paper figure number (1–5).
    pub figure: usize,
    /// Benchmark name.
    pub app: BenchmarkName,
    /// Cluster label ("200MHz/Myrinet" or "450MHz/SCI").
    pub cluster: String,
    /// Protocol used.
    pub protocol: ProtocolKind,
    /// Transport-variant suffix distinguishing rows that share a protocol
    /// but run under different transport configurations: `""` for the
    /// default, otherwise `"+"` plus the name the relevant policy (or
    /// overlap mode) reports — `"+block"`/`"+ov"` from
    /// [`TransportConfig::overlap_name`], `"+nomig"`/`"+mig"` from the
    /// migration policy, `"+dir"` from the predictor, `"+sync"`/`"+dfl"`
    /// from the flush policy.
    pub variant: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Execution time in virtual seconds.
    pub seconds: f64,
    /// Digest of the computed answer (must agree across configurations).
    pub digest: f64,
    /// Cluster-wide event statistics.
    pub stats: StatsSnapshot,
    /// Transport backend that carried the RPCs (`"sim"`, `"unix-socket"` or
    /// `"tcp-socket"`).
    pub transport: &'static str,
    /// Per-service wire counters, `(service name, counters)` — empty under
    /// the in-process simulator, populated by socket backends with the real
    /// byte counts and wall-clock round-trip times that the
    /// modeled-vs-measured report compares against the cost model.
    pub wire: Vec<(String, WireServiceSnapshot)>,
    /// Modeled p99 latency of one serving-style operation, in microseconds
    /// of virtual time (0 for the paper's batch kernels, which record no
    /// serving operations).
    pub serving_p99_us: f64,
    /// RPC arrivals at the busiest single node — the hot home of a
    /// barrier-style exchange under the flat topology, the largest of the
    /// leader/home arrival counts under a grouped one.  The scaling gate
    /// (`fig10_scaling`) compares this across topologies; `stats` only
    /// carries the cluster-wide totals.
    pub peak_rpc_served: u64,
}

impl FigureRow {
    /// Protocol plus transport-variant label (`java_pf+ov`, `java_ad`...).
    pub fn protocol_label(&self) -> String {
        format!("{}{}", self.protocol.name(), self.variant)
    }

    /// Serving-style throughput: operations completed per virtual second
    /// (0 for the paper's batch kernels, which record no serving
    /// operations).
    pub fn serving_ops_per_s(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.stats.serving_ops as f64 / self.seconds
        }
    }
}

impl FigureRow {
    /// CSV header matching [`FigureRow::to_csv`].
    pub fn csv_header() -> &'static str {
        "figure,app,cluster,protocol,nodes,exec_seconds,digest,locality_checks,page_faults,\
         mprotect_calls,page_loads,diff_messages,bytes_moved,remote_monitor_acquires,\
         barrier_waits,batched_fetches,pages_prefetched,protocol_switches,batched_flushes,\
         pages_migrated,fetch_overlap_cycles_hidden,serving_ops,serving_ops_per_s,\
         serving_p99_us"
    }

    /// Serialise as one CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3}",
            self.figure,
            self.app,
            self.cluster,
            self.protocol_label(),
            self.nodes,
            self.seconds,
            self.digest,
            self.stats.locality_checks,
            self.stats.page_faults,
            self.stats.mprotect_calls,
            self.stats.page_loads,
            self.stats.diff_messages,
            self.stats.bytes_moved(),
            self.stats.remote_monitor_acquires,
            self.stats.barrier_waits,
            self.stats.batched_fetches,
            self.stats.pages_prefetched,
            self.stats.protocol_switches,
            self.stats.batched_flushes,
            self.stats.pages_migrated,
            self.stats.fetch_overlap_cycles_hidden,
            self.stats.serving_ops,
            self.serving_ops_per_s(),
            self.serving_p99_us,
        )
    }
}

/// Run one benchmark under one configuration and wrap the result as a row.
pub fn run_point(
    name: BenchmarkName,
    scale: Scale,
    cluster: &ClusterSpec,
    protocol: ProtocolKind,
    nodes: usize,
) -> FigureRow {
    run_point_with(
        name,
        scale,
        cluster,
        protocol,
        nodes,
        &AdaptiveParams::default(),
    )
}

/// [`run_point`] with explicit adaptive-protocol parameters (ignored unless
/// `protocol` is `java_ad`) — the entry point of the threshold ablation.
pub fn run_point_with(
    name: BenchmarkName,
    scale: Scale,
    cluster: &ClusterSpec,
    protocol: ProtocolKind,
    nodes: usize,
    adaptive: &AdaptiveParams,
) -> FigureRow {
    run_point_configured(
        name,
        scale,
        cluster,
        protocol,
        nodes,
        adaptive,
        &TransportConfig::default(),
        String::new(),
    )
}

/// `"+<name>"` variant suffix from a policy (or overlap-mode) name, so the
/// figure labels track whatever the selected policy calls itself instead of
/// hard-coded strings.
fn plus(name: &str) -> String {
    format!("+{name}")
}

/// The fully configurable run point: explicit adaptive parameters *and*
/// transport configuration, labelled with a variant suffix — the entry
/// point of the figure-7 transport comparison.
#[allow(clippy::too_many_arguments)]
pub fn run_point_configured(
    name: BenchmarkName,
    scale: Scale,
    cluster: &ClusterSpec,
    protocol: ProtocolKind,
    nodes: usize,
    adaptive: &AdaptiveParams,
    transport: &TransportConfig,
    variant: String,
) -> FigureRow {
    run_figure_point(
        name, scale, cluster, protocol, nodes, adaptive, transport, variant, false,
    )
}

/// The one place a figure data point is actually executed: builds the
/// configuration (optionally unpaced), runs the benchmark and wraps the
/// result.
#[allow(clippy::too_many_arguments)]
fn run_figure_point(
    name: BenchmarkName,
    scale: Scale,
    cluster: &ClusterSpec,
    protocol: ProtocolKind,
    nodes: usize,
    adaptive: &AdaptiveParams,
    transport: &TransportConfig,
    variant: String,
    unpaced: bool,
) -> FigureRow {
    let bench = benchmark_at(name, scale);
    let mut builder = HyperionConfig::builder()
        .cluster(cluster.clone())
        .nodes(nodes)
        .protocol(protocol)
        .adaptive(adaptive.clone())
        .transport(transport.clone());
    if unpaced {
        builder = builder.pacing_window(None);
    }
    let config = builder.build().expect("valid figure configuration");
    let (digest, report) = bench.execute(config);
    let peak_rpc_served = report
        .node_stats
        .iter()
        .map(|s| s.rpc_served)
        .max()
        .unwrap_or(0);
    FigureRow {
        figure: name.figure(),
        app: name,
        cluster: report.cluster_label.clone(),
        protocol,
        variant,
        nodes,
        seconds: report.seconds(),
        digest,
        stats: report.total_stats(),
        transport: report.transport,
        wire: report.wire,
        serving_p99_us: report.serving_p99.as_ps() as f64 / 1e6,
        peak_rpc_served,
    }
}

/// Regenerate one of the paper's figures: sweep both clusters, both
/// protocols and the paper's node counts for the benchmark behind `figure`.
pub fn sweep_figure(name: BenchmarkName, scale: Scale) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for cluster in [myrinet_200(), sci_450()] {
        for protocol in ProtocolKind::all() {
            for nodes in paper_node_counts(&cluster) {
                rows.push(run_point(name, scale, &cluster, protocol, nodes));
            }
        }
    }
    rows
}

/// The figure number used for the adaptive-protocol comparison (it extends
/// the paper's five figures).
pub const ADAPTIVE_FIGURE: usize = 6;

/// Node count the adaptive comparison and the CI bench gate run at: large
/// enough that remote traffic dominates, small enough for quick CI sweeps,
/// and available on both modelled clusters.
pub const ADAPTIVE_NODES: usize = 4;

/// Figure 6 (extension): every app under `java_ic`, `java_pf` and `java_ad`
/// on both clusters at [`ADAPTIVE_NODES`] nodes.
pub fn sweep_adaptive(scale: Scale) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for cluster in [myrinet_200(), sci_450()] {
        for name in BenchmarkName::all() {
            for protocol in protocols_under_test() {
                let mut row = run_point(name, scale, &cluster, protocol, ADAPTIVE_NODES);
                row.figure = ADAPTIVE_FIGURE;
                rows.push(row);
            }
        }
    }
    rows
}

/// The figure number used for the transport comparison (overlapped vs
/// blocking fetches, home migration on vs off).
pub const TRANSPORT_FIGURE: usize = 7;

/// One paired comparison of the figure-7 transport sweep: the same
/// (app, protocol, nodes) point under a baseline and a latency-hiding
/// transport configuration.
#[derive(Clone, Debug)]
pub struct TransportPair {
    /// What the pair demonstrates (`"overlap"` or `"migration"`).
    pub mechanism: &'static str,
    /// The point with the mechanism disabled.
    pub baseline: FigureRow,
    /// The point with the mechanism enabled.
    pub enabled: FigureRow,
}

/// Figure 7 (extension): the split-transaction transport against the
/// blocking transport on the Myrinet cluster at [`ADAPTIVE_NODES`] nodes.
///
/// *Overlap* pairs run the barrier apps (Jacobi, ASP) under `java_pf` with
/// blocking vs overlapped fetches — the prefetch windows the kernels open
/// right after each acquire only pay off when the transport can split the
/// transaction.  These pairs run unpaced: both apps divide their work
/// statically, so conservative pacing only adds host-scheduling noise to
/// the modeled times the delta is measured against.  *Migration* pairs run
/// the central-structure apps (TSP, Barnes-Hut) under `java_ad` with home
/// migration off vs on — the write-shared pages behind the work queue, the
/// best bound and the chunk counters are exactly the diff traffic
/// migration eliminates.  The dominance streak is matched to each app's
/// write-burst depth: a TSP worker that drains the queue dequeues many
/// times in a row (streak 3), while the Barnes-Hut chunk counter hands out
/// two-body chunks, so its bursts are only a couple of diffs deep
/// (streak 2).
pub fn sweep_transport(scale: Scale) -> Vec<TransportPair> {
    [
        BenchmarkName::Jacobi,
        BenchmarkName::Asp,
        BenchmarkName::Tsp,
        BenchmarkName::Barnes,
    ]
    .into_iter()
    .filter_map(|app| transport_pair(app, scale))
    .collect()
}

/// Build one figure-7 pair for `app` (see [`sweep_transport`]); `None` for
/// apps outside the transport comparison.
pub fn transport_pair(app: BenchmarkName, scale: Scale) -> Option<TransportPair> {
    let cluster = myrinet_200();
    let ad = AdaptiveParams::default();
    match app {
        BenchmarkName::Jacobi | BenchmarkName::Asp => {
            // Overlap is an engine mechanism; its label comes from the
            // transport's overlap mode rather than a policy name.
            let point = |transport: &TransportConfig| {
                let mut row = run_figure_point(
                    app,
                    scale,
                    &cluster,
                    ProtocolKind::JavaPf,
                    ADAPTIVE_NODES,
                    &ad,
                    transport,
                    plus(transport.overlap_name()),
                    true,
                );
                row.figure = TRANSPORT_FIGURE;
                row
            };
            Some(TransportPair {
                mechanism: "overlap",
                baseline: point(&TransportConfig::blocking()),
                enabled: point(&TransportConfig {
                    overlapped_fetches: true,
                    ..TransportConfig::default()
                }),
            })
        }
        BenchmarkName::Tsp | BenchmarkName::Barnes => {
            let streak = if app == BenchmarkName::Tsp { 3 } else { 2 };
            // The label tracks what the selected migration policy calls
            // itself ("nomig" / "mig").
            let point = |transport: &TransportConfig| {
                let mut row = run_figure_point(
                    app,
                    scale,
                    &cluster,
                    ProtocolKind::JavaAd,
                    ADAPTIVE_NODES,
                    &ad,
                    transport,
                    plus(transport.migration_spec().name()),
                    false,
                );
                row.figure = TRANSPORT_FIGURE;
                row
            };
            Some(TransportPair {
                mechanism: "migration",
                baseline: point(&TransportConfig::default()),
                enabled: point(&TransportConfig {
                    home_migration: true,
                    migration_streak: streak,
                    ..TransportConfig::default()
                }),
            })
        }
        BenchmarkName::Pi | BenchmarkName::KvStore | BenchmarkName::PageRank => None,
    }
}

/// The figure number used for the prefetch-directory comparison (hinted
/// overlapped demand misses + deferred release flushing vs the plain
/// split-transaction transport).
pub const DIRECTORY_FIGURE: usize = 8;

/// One paired comparison of the figure-8 directory sweep: the same
/// (app, protocol, nodes) point under a baseline and a prefetch-directory /
/// deferred-flush transport configuration.
#[derive(Clone, Debug)]
pub struct DirectoryPair {
    /// What the pair demonstrates (`"directory"` or `"deferred"`).
    pub mechanism: &'static str,
    /// The point with the mechanism disabled.
    pub baseline: FigureRow,
    /// The point with the mechanism enabled.
    pub enabled: FigureRow,
}

/// Figure 8 (extension): the prefetch-directory transport against the
/// split-transaction transport of figure 7, on the Myrinet cluster at
/// [`ADAPTIVE_NODES`] nodes.
///
/// *Directory* pairs run the barrier apps (Jacobi, ASP) under `java_pf`,
/// unpaced (both divide work statically): the baseline is figure 7's
/// overlapped transport, the enabled side adds the cluster-wide prefetch
/// directory and deferred release flushing
/// ([`hyperion::TransportConfig::directory`]) — hinted demand misses
/// complete already in-flight RPCs, ASP's pivot loop issues its fetch a
/// statement-window early, and per-barrier release flushes complete at the
/// next acquire instead of stalling the releaser.  *Deferred* pairs isolate
/// deferred flushing alone (default transport vs default + deferred) on all
/// five apps — the mechanism only moves when latency is charged, so it must
/// never make an app slower.
pub fn sweep_directory(scale: Scale) -> Vec<DirectoryPair> {
    let mut pairs: Vec<DirectoryPair> = [BenchmarkName::Jacobi, BenchmarkName::Asp]
        .into_iter()
        .filter_map(|app| directory_pair(app, scale))
        .collect();
    pairs.extend(
        BenchmarkName::all()
            .into_iter()
            .map(|app| deferred_pair(app, scale)),
    );
    pairs
}

/// Build one figure-8 *directory* pair for `app` (see [`sweep_directory`]);
/// `None` for apps outside the directory comparison.
pub fn directory_pair(app: BenchmarkName, scale: Scale) -> Option<DirectoryPair> {
    if !matches!(app, BenchmarkName::Jacobi | BenchmarkName::Asp) {
        return None;
    }
    let cluster = myrinet_200();
    let ad = AdaptiveParams::default();
    // The baseline is labelled by its overlap mode, the enabled side by
    // what the selected predictor calls itself ("dir").
    let point = |transport: &TransportConfig, variant: String| {
        let mut row = run_figure_point(
            app,
            scale,
            &cluster,
            ProtocolKind::JavaPf,
            ADAPTIVE_NODES,
            &ad,
            transport,
            variant,
            true,
        );
        row.figure = DIRECTORY_FIGURE;
        row
    };
    let baseline_transport = TransportConfig {
        overlapped_fetches: true,
        ..TransportConfig::default()
    };
    let directory = TransportConfig::directory();
    Some(DirectoryPair {
        mechanism: "directory",
        baseline: point(&baseline_transport, plus(baseline_transport.overlap_name())),
        enabled: point(&directory, plus(directory.predictor_spec().name())),
    })
}

/// Build one figure-8 *deferred* pair for `app` (see [`sweep_directory`]).
pub fn deferred_pair(app: BenchmarkName, scale: Scale) -> DirectoryPair {
    let cluster = myrinet_200();
    let ad = AdaptiveParams::default();
    // The statically divided apps are compared unpaced (pacing only adds
    // host-scheduling noise); the dynamically scheduled ones keep pacing so
    // virtual time, not the host scheduler, divides their work.
    let unpaced = matches!(
        app,
        BenchmarkName::Pi | BenchmarkName::Jacobi | BenchmarkName::Asp
    );
    // The label tracks what the selected flush policy calls itself
    // ("sync" / "dfl").
    let point = |transport: &TransportConfig| {
        let mut row = run_figure_point(
            app,
            scale,
            &cluster,
            ProtocolKind::JavaPf,
            ADAPTIVE_NODES,
            &ad,
            transport,
            plus(transport.flush_spec().name()),
            unpaced,
        );
        row.figure = DIRECTORY_FIGURE;
        row
    };
    DirectoryPair {
        mechanism: "deferred",
        baseline: point(&TransportConfig::default()),
        enabled: point(&TransportConfig {
            deferred_flush: true,
            ..TransportConfig::default()
        }),
    }
}

/// The CI-tracked sweep behind `BENCH_<run>.json`: all five apps under all
/// three protocols on the Myrinet cluster at [`ADAPTIVE_NODES`] nodes, plus
/// the figure-7 transport-variant rows (overlapped fetches on Jacobi/ASP,
/// home migration on TSP/Barnes), the figure-8 directory/deferred rows and
/// the figure-9 serving rows (KV store and PageRank under all three
/// protocols, with throughput and modeled p99), so their deltas are tracked
/// by the baseline gate too.
pub fn bench_report_rows(scale: Scale) -> Vec<FigureRow> {
    let cluster = myrinet_200();
    let mut rows = Vec::new();
    for name in BenchmarkName::all() {
        for protocol in protocols_under_test() {
            let mut row = run_point(name, scale, &cluster, protocol, ADAPTIVE_NODES);
            row.figure = ADAPTIVE_FIGURE;
            rows.push(row);
        }
    }
    for pair in sweep_transport(scale) {
        rows.push(pair.baseline);
        rows.push(pair.enabled);
    }
    // Figure-8 rows: only the *enabled* sides are added — the directory
    // baseline duplicates figure 7's `+ov` row and the deferred baseline
    // duplicates the plain `java_pf` row, and report keys must stay unique.
    for pair in sweep_directory(scale) {
        rows.push(pair.enabled);
    }
    rows.extend(sweep_serving(scale));
    rows
}

/// The figure number used for the serving-workload comparison (the
/// Zipf-skewed KV store and the PageRank kernel under all three protocols,
/// reported as throughput and modeled p99 per operation).
pub const SERVING_FIGURE: usize = 9;

/// Figure 9 (extension): the serving-workload family — the sharded KV store
/// and the PageRank kernel — under `java_ic`, `java_pf` and `java_ad` on
/// the Myrinet cluster at [`ADAPTIVE_NODES`] nodes, plus one KV point under
/// the prefetch-directory transport of figure 8 so the hint economics of
/// Zipf-skewed traffic are tracked next to the strided kernels.  Serving
/// rows carry throughput ([`FigureRow::serving_ops_per_s`]) and modeled p99
/// per operation ([`FigureRow::serving_p99_us`]) on top of the usual event
/// counters.
pub fn sweep_serving(scale: Scale) -> Vec<FigureRow> {
    let cluster = myrinet_200();
    let mut rows = Vec::new();
    for name in BenchmarkName::serving() {
        for protocol in protocols_under_test() {
            let mut row = run_point(name, scale, &cluster, protocol, ADAPTIVE_NODES);
            row.figure = SERVING_FIGURE;
            rows.push(row);
        }
    }
    rows.push(serving_directory_point(BenchmarkName::KvStore, scale));
    rows
}

/// One serving app under the prefetch-directory transport
/// ([`hyperion::TransportConfig::directory`]) — the point the figure-9
/// hint-waste gate inspects.  Zipf-skewed traffic is the adversarial input
/// for a successor-pair predictor (hot keys recur, but in no stable order),
/// so the cluster-wide hint-waste bound must hold here and not just on the
/// strided kernels of figure 8.  Runs unpaced like the other statically
/// divided directory points.
pub fn serving_directory_point(name: BenchmarkName, scale: Scale) -> FigureRow {
    let cluster = myrinet_200();
    let directory = TransportConfig::directory();
    let mut row = run_figure_point(
        name,
        scale,
        &cluster,
        ProtocolKind::JavaPf,
        ADAPTIVE_NODES,
        &AdaptiveParams::default(),
        &directory,
        plus(directory.predictor_spec().name()),
        true,
    );
    row.figure = SERVING_FIGURE;
    row
}

/// The figure number used for the scaling-curve report: node counts 4 → 64
/// under the flat topology against the two-level home hierarchy
/// (`TransportConfig::group_size`, `dsm::combine`).
pub const SCALING_FIGURE: usize = 10;

/// Node counts of the scaling sweep.  The paper's clusters stop at 12
/// nodes; the hierarchy exists for the far end of this range.
pub const SCALING_NODE_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];

/// Group size the scaling sweep uses at each node count: the largest power
/// of two whose square still fits in `nodes`, so the two levels of the tree
/// have balanced fan-in (members per leader vs leaders per cluster) and the
/// size always divides the node count.  4 → 2, 8 → 2, 16 → 4, 32 → 4,
/// 64 → 8.
pub fn scaling_group_size(nodes: usize) -> usize {
    let mut size = 2;
    while (size * 2) * (size * 2) <= nodes {
        size *= 2;
    }
    size
}

/// One paired point of the scaling sweep: the same (app, node count)
/// execution under the flat topology and under the grouped hierarchy.
#[derive(Clone, Debug)]
pub struct ScalingPair {
    /// Flat single-level homes (the default topology).
    pub flat: FigureRow,
    /// Two-level hierarchy with [`scaling_group_size`] nodes per group.
    pub grouped: FigureRow,
    /// Nodes per group of the grouped run.
    pub group_size: usize,
}

impl ScalingPair {
    /// True if both topologies computed the same answer — the correctness
    /// criterion of the whole hierarchy: relaying through a group leader
    /// may change what an exchange *costs*, never what it *moves*.
    pub fn digests_match(&self) -> bool {
        let tolerance = self.flat.digest.abs().max(1.0) * 1e-9;
        (self.flat.digest - self.grouped.digest).abs() <= tolerance
    }
}

/// Figure 10 (extension): the scaling curve of the two-level home
/// hierarchy.  Jacobi (the paper's barrier-exchange kernel, whose shared
/// convergence counter makes one home the cluster-wide hot spot) and the
/// Zipf-skewed KV store (the serving extension's skewed-read hot spot)
/// under `java_pf` at every count in [`SCALING_NODE_COUNTS`], each point
/// run twice — flat and grouped.  Rows carry `loads/epoch` in their stats
/// and ops/s for the serving app; [`FigureRow::peak_rpc_served`] holds the
/// hot-home arrival count the `fig10_scaling` gate compares across
/// topologies.  Runs unpaced: both apps are statically partitioned at these
/// scales and pacing only injects host-scheduling noise.
pub fn sweep_scaling(scale: Scale) -> Vec<ScalingPair> {
    let base = myrinet_200();
    let mut pairs = Vec::new();
    for name in [BenchmarkName::Jacobi, BenchmarkName::KvStore] {
        for nodes in SCALING_NODE_COUNTS {
            let cluster = scaled_cluster(&base, nodes);
            let group_size = scaling_group_size(nodes);
            let grouped_transport = TransportConfig {
                group_size,
                ..TransportConfig::default()
            };
            let mut flat = run_figure_point(
                name,
                scale,
                &cluster,
                ProtocolKind::JavaPf,
                nodes,
                &AdaptiveParams::default(),
                &TransportConfig::default(),
                String::new(),
                true,
            );
            flat.figure = SCALING_FIGURE;
            let mut grouped = run_figure_point(
                name,
                scale,
                &cluster,
                ProtocolKind::JavaPf,
                nodes,
                &AdaptiveParams::default(),
                &grouped_transport,
                plus(&format!("g{group_size}")),
                true,
            );
            grouped.figure = SCALING_FIGURE;
            pairs.push(ScalingPair {
                flat,
                grouped,
                group_size,
            });
        }
    }
    pairs
}

/// The figure number used for the modeled-vs-measured transport report
/// (modeled virtual-time RPC cost next to wall-clock socket round trips).
pub const WIRE_FIGURE: usize = 11;

/// The modeled-vs-measured sweep behind `figures --transport socket`: all
/// five apps under all three protocols on the Myrinet cluster at
/// [`ADAPTIVE_NODES`] nodes, with every RPC carried by `backend` instead of
/// the in-process simulator.  Each returned row's [`FigureRow::wire`] table
/// holds, per RPC service, the modeled virtual-time round-trip span next to
/// the measured wall-clock span of the real socket exchange (plus real byte
/// and message counts) — the raw material of
/// [`report::modeled_vs_measured_markdown`].
///
/// With [`TransportBackend::Sim`] the sweep still runs (useful as a digest
/// cross-check) but the wire tables come back empty.
pub fn sweep_modeled_vs_measured(scale: Scale, backend: TransportBackend) -> Vec<FigureRow> {
    let cluster = myrinet_200();
    let transport = TransportConfig {
        backend,
        ..TransportConfig::default()
    };
    let mut rows = Vec::new();
    for name in BenchmarkName::all() {
        for protocol in protocols_under_test() {
            let mut row = run_figure_point(
                name,
                scale,
                &cluster,
                protocol,
                ADAPTIVE_NODES,
                &AdaptiveParams::default(),
                &transport,
                String::new(),
                false,
            );
            row.figure = WIRE_FIGURE;
            rows.push(row);
        }
    }
    rows
}

/// The figure number used for the chaos report (fault injection, retry and
/// node-failure recovery under a seeded [`FaultSpec`]).
pub const CHAOS_FIGURE: usize = 12;

/// One paired point of the chaos sweep: the same (app, protocol) execution
/// fault-free (the digest reference) and under the injected schedule with
/// quorum replication armed.
#[derive(Clone, Debug)]
pub struct ChaosPair {
    /// Fault-free reference run (default transport, no replication).
    pub baseline: FigureRow,
    /// The run under the injected `FaultSpec`.
    pub faulted: FigureRow,
}

impl ChaosPair {
    /// True if the faulted run computed the same result as the reference —
    /// the correctness criterion of the whole fault plane: injected drops,
    /// delays, duplicates and even a node kill may change *timing*, never
    /// *values*.
    pub fn digests_match(&self) -> bool {
        self.baseline.digest == self.faulted.digest
    }
}

/// The chaos sweep behind `figures --fault <spec>`: all five apps under all
/// three protocols on the Myrinet cluster at [`ADAPTIVE_NODES`] nodes, each
/// point run twice — once fault-free as the digest reference, once with the
/// seeded `spec` injected at the transport and `2r/2w` quorum replication
/// armed so a killed home can be re-elected.  Both runs ride `backend`
/// (faults are injected by wrapping whichever transport carries the RPCs,
/// so the schedule replays identically over sockets).  The faulted rows
/// carry the recovery economics (`rpc_retries`, `rpc_timeouts`,
/// `frames_dropped_injected`, `nodes_failed`, `pages_resynced`) in their
/// stats; [`report::chaos_markdown`] renders the comparison.
pub fn sweep_chaos(scale: Scale, spec: FaultSpec, backend: TransportBackend) -> Vec<ChaosPair> {
    let cluster = myrinet_200();
    let reference = TransportConfig {
        backend,
        ..TransportConfig::default()
    };
    let transport = TransportConfig {
        backend,
        fault: Some(spec),
        replication: Some((2, 2)),
        ..TransportConfig::default()
    };
    let mut pairs = Vec::new();
    for name in BenchmarkName::all() {
        for protocol in protocols_under_test() {
            let mut baseline = run_point_configured(
                name,
                scale,
                &cluster,
                protocol,
                ADAPTIVE_NODES,
                &AdaptiveParams::default(),
                &reference,
                String::new(),
            );
            baseline.figure = CHAOS_FIGURE;
            let mut faulted = run_figure_point(
                name,
                scale,
                &cluster,
                protocol,
                ADAPTIVE_NODES,
                &AdaptiveParams::default(),
                &transport,
                plus("chaos"),
                false,
            );
            faulted.figure = CHAOS_FIGURE;
            pairs.push(ChaosPair { baseline, faulted });
        }
    }
    pairs
}

/// Ablation of the adaptive switching threshold: run `app` under `java_ad`
/// with the check→protect hysteresis placed at each multiple of the machine
/// model's break-even, keeping the protect→check mark at half of it.
pub fn threshold_ablation(
    app: BenchmarkName,
    scale: Scale,
    hi_multiples: &[f64],
) -> Vec<(f64, FigureRow)> {
    let cluster = myrinet_200();
    hi_multiples
        .iter()
        .map(|&hi| {
            let params = AdaptiveParams {
                hi_multiple: hi,
                lo_multiple: hi / 2.0,
                ..AdaptiveParams::default()
            };
            let mut row = run_point_with(
                app,
                scale,
                &cluster,
                ProtocolKind::JavaAd,
                ADAPTIVE_NODES,
                &params,
            );
            row.figure = ADAPTIVE_FIGURE;
            (hi, row)
        })
        .collect()
}

/// One derived improvement data point: how much faster `java_pf` is than
/// `java_ic` for a given (app, cluster, node count).
#[derive(Clone, Debug)]
pub struct Improvement {
    /// Benchmark name.
    pub app: BenchmarkName,
    /// Cluster label.
    pub cluster: String,
    /// Node count.
    pub nodes: usize,
    /// `java_ic` execution time (virtual seconds).
    pub ic_seconds: f64,
    /// `java_pf` execution time (virtual seconds).
    pub pf_seconds: f64,
}

impl Improvement {
    /// Relative improvement `(ic - pf) / ic`, as a percentage (positive when
    /// `java_pf` is faster, the paper's convention).
    pub fn percent(&self) -> f64 {
        (self.ic_seconds - self.pf_seconds) / self.ic_seconds * 100.0
    }
}

/// Pair up the `java_ic`/`java_pf` rows of a sweep into improvements.
pub fn improvement_summary(rows: &[FigureRow]) -> Vec<Improvement> {
    let mut out = Vec::new();
    for ic_row in rows.iter().filter(|r| r.protocol == ProtocolKind::JavaIc) {
        if let Some(pf_row) = rows.iter().find(|r| {
            r.protocol == ProtocolKind::JavaPf
                && r.app == ic_row.app
                && r.cluster == ic_row.cluster
                && r.nodes == ic_row.nodes
        }) {
            out.push(Improvement {
                app: ic_row.app,
                cluster: ic_row.cluster.clone(),
                nodes: ic_row.nodes,
                ic_seconds: ic_row.seconds,
                pf_seconds: pf_row.seconds,
            });
        }
    }
    out
}

/// Table 1 of the paper: Hyperion's runtime modules, with the part of this
/// reproduction that implements each one.
pub fn table1_modules() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "Threads subsystem",
            "Java thread creation/synchronisation mapped onto PM2 operations",
            "hyperion::runtime::ThreadCtx::{spawn,join} + hyperion-pm2::threads",
        ),
        (
            "Communication subsystem",
            "Message handlers asynchronously invoked on the receiving node (RPCs)",
            "hyperion-pm2::comm + hyperion-pm2::cluster::Cluster::rpc",
        ),
        (
            "Memory subsystem",
            "Single shared address space under the Java Memory Model, two protocols",
            "hyperion-dsm::engine::DsmSystem + hyperion::memory",
        ),
        (
            "Load balancer",
            "Round-robin distribution of newly created threads over the nodes",
            "hyperion::thread::LoadBalancer",
        ),
        (
            "Java API subsystem",
            "Subset of the class library used by the benchmarks",
            "hyperion::api::{JBarrier, SharedCounter, arraycopy}",
        ),
    ]
}

/// A measured row of Table 2: primitive name, description and the virtual
/// cost observed in a two-node micro-benchmark on the given cluster.
#[derive(Clone, Debug)]
pub struct PrimitiveCost {
    /// Primitive name as in the paper's Table 2.
    pub name: &'static str,
    /// Paper description.
    pub description: &'static str,
    /// Virtual time of one invocation in the micro-benchmark (microseconds).
    pub micros: f64,
}

/// Micro-measure the Table 2 primitives on a two-node cluster.
pub fn table2_primitives(cluster: &ClusterSpec, protocol: ProtocolKind) -> Vec<PrimitiveCost> {
    let config = HyperionConfig::builder()
        .cluster(cluster.clone())
        .nodes(2)
        .protocol(protocol)
        .build()
        .expect("two-node configuration");
    let runtime = HyperionRuntime::new(config).expect("two-node configuration");
    let out = runtime.run(|ctx| {
        let remote = ctx.alloc_array::<u64>(64, NodeId(1));
        let mut costs = Vec::new();

        // loadIntoCache: fetch a page that is not yet cached.
        let t0 = ctx.now();
        ctx.load_into_cache(remote.base());
        costs.push(("loadIntoCache", ctx.now() - t0));

        // get on a cached page.
        let t0 = ctx.now();
        let _: u64 = remote.get(ctx, 0);
        costs.push(("get", ctx.now() - t0));

        // put on a cached page.
        let t0 = ctx.now();
        remote.put(ctx, 1, 42);
        costs.push(("put", ctx.now() - t0));

        // updateMainMemory with one dirty slot.
        let t0 = ctx.now();
        hyperion::memory::update_main_memory(ctx);
        costs.push(("updateMainMemory", ctx.now() - t0));

        // invalidateCache with one cached page.
        let t0 = ctx.now();
        hyperion::memory::invalidate_cache(ctx);
        costs.push(("invalidateCache", ctx.now() - t0));

        costs
    });

    let descriptions = [
        ("loadIntoCache", "Load an object into the cache"),
        ("invalidateCache", "Invalidate all entries in the cache"),
        (
            "updateMainMemory",
            "Update memory with modifications made to objects in the cache",
        ),
        (
            "get",
            "Retrieve a field from an object previously loaded into the cache",
        ),
        (
            "put",
            "Modify a field in an object previously loaded into the cache",
        ),
    ];

    descriptions
        .iter()
        .map(|(name, description)| {
            let measured = out
                .result
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.as_ps() as f64 / 1e6)
                .unwrap_or(0.0);
            PrimitiveCost {
                name,
                description,
                micros: measured,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("harness"), Some(Scale::Harness));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn node_counts_match_the_paper_axes() {
        assert_eq!(
            paper_node_counts(&myrinet_200()),
            vec![1, 2, 4, 6, 8, 10, 12]
        );
        assert_eq!(paper_node_counts(&sci_450()), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn table1_covers_all_five_modules() {
        let rows = table1_modules();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|(m, _, _)| *m == "Load balancer"));
    }

    #[test]
    fn table2_micro_costs_are_sane() {
        let rows = table2_primitives(&myrinet_200(), ProtocolKind::JavaIc);
        assert_eq!(rows.len(), 5);
        let get = rows.iter().find(|r| r.name == "get").unwrap();
        let load = rows.iter().find(|r| r.name == "loadIntoCache").unwrap();
        // A cached get is orders of magnitude cheaper than a page fetch.
        assert!(get.micros < load.micros);
        assert!(load.micros > 10.0, "page fetch should cost tens of µs");
    }

    #[test]
    fn run_point_produces_consistent_rows() {
        let row = run_point(
            BenchmarkName::Pi,
            Scale::Quick,
            &sci_450(),
            ProtocolKind::JavaPf,
            2,
        );
        assert_eq!(row.figure, 1);
        assert_eq!(row.nodes, 2);
        assert_eq!(row.cluster, "450MHz/SCI");
        assert!(row.seconds > 0.0);
        assert!((row.digest - std::f64::consts::PI).abs() < 1e-3);
        assert!(row.to_csv().starts_with("1,Pi,450MHz/SCI,java_pf,2,"));
        assert!(FigureRow::csv_header().starts_with("figure,app,cluster"));
    }

    #[test]
    fn adaptive_point_tracks_switches_and_batches() {
        let row = run_point(
            BenchmarkName::Jacobi,
            Scale::Quick,
            &myrinet_200(),
            ProtocolKind::JavaAd,
            2,
        );
        assert_eq!(row.protocol, ProtocolKind::JavaAd);
        assert!(row.seconds > 0.0);
        // The CSV row carries the new counters.
        let csv = row.to_csv();
        assert_eq!(
            csv.matches(',').count(),
            FigureRow::csv_header().matches(',').count()
        );
    }

    #[test]
    fn threshold_ablation_sweeps_the_hysteresis() {
        let points = threshold_ablation(BenchmarkName::Pi, Scale::Quick, &[0.5, 2.0]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, 0.5);
        assert_eq!(points[1].0, 2.0);
        for (_, row) in &points {
            assert_eq!(row.figure, ADAPTIVE_FIGURE);
            assert_eq!(row.protocol, ProtocolKind::JavaAd);
            assert!((row.digest - std::f64::consts::PI).abs() < 1e-3);
        }
    }

    #[test]
    fn serving_rows_carry_throughput_and_p99() {
        let row = run_point(
            BenchmarkName::KvStore,
            Scale::Quick,
            &myrinet_200(),
            ProtocolKind::JavaAd,
            2,
        );
        assert_eq!(row.figure, SERVING_FIGURE);
        assert!(row.stats.serving_ops > 0);
        assert!(row.serving_ops_per_s() > 0.0);
        assert!(row.serving_p99_us > 0.0);
        // The serving columns ride at the end of the CSV row.
        assert_eq!(
            row.to_csv().matches(',').count(),
            FigureRow::csv_header().matches(',').count()
        );
        assert!(FigureRow::csv_header().ends_with("serving_p99_us"));

        // Batch kernels record no serving operations.
        let pi = run_point(
            BenchmarkName::Pi,
            Scale::Quick,
            &myrinet_200(),
            ProtocolKind::JavaPf,
            2,
        );
        assert_eq!(pi.stats.serving_ops, 0);
        assert_eq!(pi.serving_ops_per_s(), 0.0);
        assert_eq!(pi.serving_p99_us, 0.0);
    }

    #[test]
    fn improvement_summary_pairs_protocols() {
        let rows = vec![
            run_point(
                BenchmarkName::Pi,
                Scale::Quick,
                &sci_450(),
                ProtocolKind::JavaIc,
                1,
            ),
            run_point(
                BenchmarkName::Pi,
                Scale::Quick,
                &sci_450(),
                ProtocolKind::JavaPf,
                1,
            ),
        ];
        let imps = improvement_summary(&rows);
        assert_eq!(imps.len(), 1);
        let imp = &imps[0];
        assert_eq!(imp.nodes, 1);
        // Pi is nearly identical under both protocols.
        assert!(imp.percent().abs() < 5.0);
    }
}
