//! `figures` — regenerate every table and figure of the paper, plus the
//! adaptive-protocol comparison and the CI bench report.
//!
//! ```text
//! figures [--fig N]... [--tables] [--claims] [--scale quick|harness|paper]
//!         [--quick] [--json] [--baseline PATH] [--out DIR]
//!         [--transport sim|socket|tcp] [--fault SPEC]
//! ```
//!
//! * `--fig N`     regenerate figure N (1–5 from the paper, 6 for the
//!   ic/pf/ad adaptive comparison, 7 for the split-transaction transport,
//!   8 for the prefetch directory & deferred release, 9 for the serving
//!   workloads: Zipf-skewed KV store and PageRank with throughput and
//!   modeled p99 per operation, 10 for the 4 → 64 node scaling curve of
//!   the two-level home hierarchy); may be repeated.  Default: all of 1–5.
//! * `--tables`    print Table 1 (module inventory) and Table 2 (primitives).
//! * `--claims`    print the derived `java_ic` → `java_pf` improvements that
//!   correspond to the quantitative claims of §4.3.
//! * `--scale`     problem-size scale (default `harness`).
//! * `--quick`     shorthand for `--scale quick` (the CI invocation).
//! * `--json`      run the CI-tracked sweep (five apps × three protocols,
//!   the figure 7–8 transport variants and the figure-9 serving rows with
//!   their throughput/p99 fields) and write it to `BENCH_<run>.json`
//!   (`<run>` is `$GITHUB_RUN_ID`, or `local`).
//! * `--baseline PATH` compare the CI-tracked sweep against a committed
//!   baseline report and exit non-zero if a tracked metric (modeled wall
//!   time, page loads, invalidated pages) regressed more than 10%; the
//!   per-app delta table is appended to `$GITHUB_STEP_SUMMARY` when that
//!   variable is set.
//! * `--runs N`    repeat the CI-tracked sweep N times and report the
//!   per-row envelope (max of each tracked metric) — used when refreshing
//!   `bench/baseline.json` so the dynamically scheduled apps' run-to-run
//!   spread is captured.
//! * `--out DIR`   additionally write one CSV per figure into DIR.
//! * `--transport B` run the modeled-vs-measured sweep with every RPC
//!   carried by backend B (`socket` = per-node Unix-domain socket servers,
//!   `tcp` = localhost TCP, `sim` = the in-process cost model) and print a
//!   one-page report of modeled virtual-time RPC cost next to measured
//!   wall-clock socket round trips; the report is also written to
//!   `MODELED_VS_MEASURED_<run>.md` for the CI artifact upload.
//! * `--fault SPEC` run the chaos sweep: every app × protocol twice, once
//!   fault-free and once with the seeded fault schedule `SPEC` (e.g.
//!   `seed=7,drop=20000,kill=1@300us`) injected at the transport and quorum
//!   replication armed; prints a digest/recovery-cost report and writes it
//!   to `CHAOS_<run>.md` for the CI artifact upload.  Combine with
//!   `--transport` to run the chaos sweep over a socket backend.

use std::io::Write;

use hyperion::prelude::*;
use hyperion::FaultSpec;
use hyperion_apps::common::BenchmarkName;
use hyperion_bench::{
    bench_report_rows, improvement_summary, report, sweep_adaptive, sweep_chaos, sweep_directory,
    sweep_figure, sweep_modeled_vs_measured, sweep_scaling, sweep_serving, sweep_transport,
    table1_modules, table2_primitives, threshold_ablation, FigureRow, Scale, ADAPTIVE_FIGURE,
    DIRECTORY_FIGURE, SCALING_FIGURE, SERVING_FIGURE, TRANSPORT_FIGURE,
};

struct Options {
    figures: Vec<usize>,
    tables: bool,
    claims: bool,
    json: bool,
    baseline: Option<String>,
    runs: usize,
    scale: Scale,
    out_dir: Option<String>,
    transport: Option<TransportBackend>,
    fault: Option<FaultSpec>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        figures: Vec::new(),
        tables: false,
        claims: false,
        json: false,
        baseline: None,
        runs: 1,
        scale: Scale::Harness,
        out_dir: None,
        transport: None,
        fault: None,
    };
    let mut args = std::env::args().skip(1);
    let mut any_selector = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--fig needs a number between 1 and 10"));
                if !(1..=SCALING_FIGURE).contains(&n) {
                    die("--fig needs a number between 1 and 10");
                }
                opts.figures.push(n);
                any_selector = true;
            }
            "--tables" => {
                opts.tables = true;
                any_selector = true;
            }
            "--claims" => {
                opts.claims = true;
                any_selector = true;
            }
            "--json" => {
                opts.json = true;
                any_selector = true;
            }
            "--baseline" => {
                opts.baseline = Some(
                    args.next()
                        .unwrap_or_else(|| die("--baseline needs a file path")),
                );
                any_selector = true;
            }
            "--scale" => {
                let s = args.next().unwrap_or_default();
                opts.scale = Scale::parse(&s)
                    .unwrap_or_else(|| die("--scale must be quick, harness or paper"));
            }
            "--runs" => {
                opts.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--runs needs a positive count"));
            }
            "--transport" => {
                let s = args.next().unwrap_or_default();
                opts.transport = Some(
                    TransportBackend::parse(&s)
                        .unwrap_or_else(|| die("--transport must be sim, socket (unix) or tcp")),
                );
                any_selector = true;
            }
            "--fault" => {
                let s = args.next().unwrap_or_default();
                opts.fault = Some(FaultSpec::parse(&s).unwrap_or_else(|e| {
                    die(&format!("--fault: {e} (format: seed=N,drop=PPM,dropfirst=N,delay=PPM@DUR,dup=PPM,panic=PPM,kill=NODE@TIME)"))
                }));
                any_selector = true;
            }
            "--quick" => {
                opts.scale = Scale::Quick;
            }
            "--out" => {
                opts.out_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--out needs a directory")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "figures [--fig N]... [--tables] [--claims] [--scale quick|harness|paper] \
                     [--quick] [--json] [--baseline PATH] [--out DIR] \
                     [--transport sim|socket|tcp] [--fault SPEC]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    if !any_selector {
        opts.figures = vec![1, 2, 3, 4, 5];
        opts.tables = true;
        opts.claims = true;
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2);
}

fn figure_name(n: usize) -> BenchmarkName {
    BenchmarkName::all()
        .into_iter()
        .find(|b| b.figure() == n)
        .expect("figure number in 1..=5")
}

/// Figure 6: the ic/pf/ad comparison plus a small ablation of the adaptive
/// switching threshold.
fn print_adaptive_figure(scale: Scale) -> Vec<FigureRow> {
    let rows = sweep_adaptive(scale);
    println!(
        "== Figure 6 (extension): java_ic vs java_pf vs java_ad, {} nodes ==",
        hyperion_bench::ADAPTIVE_NODES
    );
    println!(
        "{:<12} {:<16} {:<8} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "App",
        "Cluster",
        "protocol",
        "exec (s)",
        "page_loads",
        "checks",
        "faults",
        "batches",
        "switches"
    );
    for r in &rows {
        println!(
            "{:<12} {:<16} {:<8} {:>12.4} {:>12} {:>10} {:>10} {:>9} {:>9}",
            r.app.to_string(),
            r.cluster,
            r.protocol.to_string(),
            r.seconds,
            r.stats.page_loads,
            r.stats.locality_checks,
            r.stats.page_faults,
            r.stats.batched_fetches,
            r.stats.protocol_switches,
        );
    }
    println!();
    println!("-- switching-threshold ablation (java_ad, Jacobi, hi multiple of break-even) --");
    for (hi, row) in threshold_ablation(BenchmarkName::Jacobi, scale, &[0.25, 0.5, 1.0, 2.0, 4.0]) {
        println!(
            "hi = {hi:>5.2} * n_star: exec {:>10.4}s  checks {:>8}  faults {:>6}  switches {:>4}",
            row.seconds,
            row.stats.locality_checks,
            row.stats.page_faults,
            row.stats.protocol_switches,
        );
    }
    println!();
    rows
}

/// Figure 7: the split-transaction transport against the blocking one —
/// overlapped fetches on the barrier apps, home migration on the
/// central-structure apps.
fn print_transport_figure(scale: Scale) -> Vec<FigureRow> {
    let pairs = sweep_transport(scale);
    println!(
        "== Figure 7 (extension): latency-hiding transport, {} nodes ==",
        hyperion_bench::ADAPTIVE_NODES
    );
    println!(
        "{:<12} {:<10} {:<14} {:>12} {:>10} {:>10} {:>9} {:>14}",
        "App", "mechanism", "variant", "exec (s)", "diffs", "batched", "migrated", "hidden cycles"
    );
    let mut rows = Vec::new();
    for pair in pairs {
        for r in [&pair.baseline, &pair.enabled] {
            println!(
                "{:<12} {:<10} {:<14} {:>12.4} {:>10} {:>10} {:>9} {:>14}",
                r.app.to_string(),
                pair.mechanism,
                r.protocol_label(),
                r.seconds,
                r.stats.diff_messages,
                r.stats.batched_flushes,
                r.stats.pages_migrated,
                r.stats.fetch_overlap_cycles_hidden,
            );
        }
        rows.push(pair.baseline);
        rows.push(pair.enabled);
    }
    println!();
    rows
}

/// Figure 8: the prefetch-directory transport (cluster-wide hints +
/// deferred release flushing) against figure 7's split-transaction
/// transport, plus the deferred-only comparison on all five apps.
fn print_directory_figure(scale: Scale) -> Vec<FigureRow> {
    let pairs = sweep_directory(scale);
    println!(
        "== Figure 8 (extension): prefetch directory & deferred release, {} nodes ==",
        hyperion_bench::ADAPTIVE_NODES
    );
    println!(
        "{:<12} {:<10} {:<14} {:>12} {:>7} {:>9} {:>8} {:>9} {:>14}",
        "App",
        "mechanism",
        "variant",
        "exec (s)",
        "hints",
        "hinted",
        "wasted",
        "deferred",
        "flush hidden"
    );
    let mut rows = Vec::new();
    for pair in pairs {
        for r in [&pair.baseline, &pair.enabled] {
            println!(
                "{:<12} {:<10} {:<14} {:>12.4} {:>7} {:>9} {:>8} {:>9} {:>14}",
                r.app.to_string(),
                pair.mechanism,
                r.protocol_label(),
                r.seconds,
                r.stats.hints_sent,
                r.stats.hinted_fetches_completed,
                r.stats.hinted_fetches_wasted,
                r.stats.deferred_flushes,
                r.stats.flush_overlap_cycles_hidden,
            );
        }
        rows.push(pair.baseline);
        rows.push(pair.enabled);
    }
    println!();
    rows
}

/// Figure 9: the serving-workload family — the Zipf-skewed sharded KV store
/// and the PageRank kernel — under all three protocols, reported as
/// throughput and modeled p99 per operation next to the usual counters.
fn print_serving_figure(scale: Scale) -> Vec<FigureRow> {
    let rows = sweep_serving(scale);
    println!(
        "== Figure 9 (extension): serving workloads (Zipf KV store, PageRank), {} nodes ==",
        hyperion_bench::ADAPTIVE_NODES
    );
    println!(
        "{:<10} {:<14} {:>12} {:>12} {:>12} {:>12} {:>7} {:>8}",
        "App", "variant", "exec (s)", "ops", "ops/s", "p99 (us)", "hints", "wasted"
    );
    for r in &rows {
        println!(
            "{:<10} {:<14} {:>12.4} {:>12} {:>12.0} {:>12.1} {:>7} {:>8}",
            r.app.to_string(),
            r.protocol_label(),
            r.seconds,
            r.stats.serving_ops,
            r.serving_ops_per_s(),
            r.serving_p99_us,
            r.stats.hints_sent,
            r.stats.hinted_fetches_wasted,
        );
    }
    println!();
    rows
}

/// Figure 10: the 4 → 64 node scaling curve of the two-level home
/// hierarchy — each point's flat run paired against its grouped run, with
/// the hot-home arrival count (`peak_rpc_served`) that the hierarchy is
/// meant to flatten.
fn print_scaling_figure(scale: Scale) -> Vec<FigureRow> {
    let pairs = sweep_scaling(scale);
    println!("== Figure 10 (extension): two-level home hierarchy, 4 -> 64 nodes ==");
    println!(
        "{:<10} {:>5} {:<10} {:>12} {:>12} {:>11} {:>10} {:>10} {:>12}",
        "App",
        "nodes",
        "variant",
        "exec (s)",
        "page_loads",
        "peak_served",
        "comb_fetch",
        "comb_diff",
        "ops/s"
    );
    let mut rows = Vec::new();
    for pair in pairs {
        assert!(
            pair.digests_match(),
            "{} @ {} nodes: grouped digest {} diverged from flat digest {}",
            pair.flat.app,
            pair.flat.nodes,
            pair.grouped.digest,
            pair.flat.digest
        );
        for r in [&pair.flat, &pair.grouped] {
            println!(
                "{:<10} {:>5} {:<10} {:>12.4} {:>12} {:>11} {:>10} {:>10} {:>12.0}",
                r.app.to_string(),
                r.nodes,
                r.protocol_label(),
                r.seconds,
                r.stats.page_loads,
                r.peak_rpc_served,
                r.stats.combined_fetches,
                r.stats.combined_diff_batches,
                r.serving_ops_per_s(),
            );
        }
        rows.push(pair.flat);
        rows.push(pair.grouped);
    }
    println!();
    rows
}

/// The `--json` / `--baseline` path: run the CI-tracked sweep, optionally
/// write `BENCH_<run>.json`, optionally gate against a committed baseline.
/// Returns `true` if the baseline gate failed.
fn run_bench_report(opts: &Options) -> bool {
    let sweeps: Vec<Vec<FigureRow>> = (0..opts.runs.max(1))
        .map(|_| bench_report_rows(opts.scale))
        .collect();
    let rows = report::envelope(&sweeps);
    if opts.json {
        let run = std::env::var("GITHUB_RUN_ID").unwrap_or_else(|_| "local".to_string());
        let path = format!("BENCH_{run}.json");
        let json = report::report_to_json(&run, opts.scale.name(), &rows);
        std::fs::write(&path, json).expect("write bench report");
        eprintln!("wrote {path}");
    }
    let Some(baseline_path) = &opts.baseline else {
        return false;
    };
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("figures: cannot read baseline {baseline_path}: {e}");
            return true;
        }
    };
    let baseline = match report::parse_report(&text) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("figures: malformed baseline {baseline_path}: {e}");
            return true;
        }
    };
    let regressions = report::compare_to_baseline(&rows, &baseline, report::DEFAULT_TOLERANCE);
    // Surface the per-app deltas where a CI reader will see them: the job's
    // step summary (or an explicit --summary path), not just an opaque
    // pass/fail exit code.
    let summary = report::markdown_summary(&rows, &baseline, &regressions);
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !path.is_empty() {
            use std::io::Write as _;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = f.write_all(summary.as_bytes());
            }
        }
    }
    if regressions.is_empty() {
        println!(
            "baseline gate: {} rows within {:.0}% of {baseline_path}",
            baseline.len(),
            report::DEFAULT_TOLERANCE * 100.0
        );
        false
    } else {
        eprintln!("baseline gate FAILED against {baseline_path}:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        true
    }
}

/// The `--transport` path: run every app × protocol over the requested
/// backend, print the one-page modeled-vs-measured report and write it to
/// `MODELED_VS_MEASURED_<run>.md` for the CI artifact upload.
fn run_modeled_vs_measured(scale: Scale, backend: TransportBackend) {
    println!(
        "== Modeled vs measured: {} backend, {} nodes ==\n",
        backend,
        hyperion_bench::ADAPTIVE_NODES
    );
    let rows = sweep_modeled_vs_measured(scale, backend);
    let markdown = report::modeled_vs_measured_markdown(&rows);
    println!("{markdown}");
    let run = std::env::var("GITHUB_RUN_ID").unwrap_or_else(|_| "local".to_string());
    let path = format!("MODELED_VS_MEASURED_{run}.md");
    std::fs::write(&path, &markdown).expect("write modeled-vs-measured report");
    eprintln!("wrote {path}");
}

/// The `--fault` path: run the chaos sweep under the given seeded schedule,
/// print the digest/recovery-cost report and write it to `CHAOS_<run>.md`
/// for the CI artifact upload.  Returns `true` if any digest diverged from
/// its fault-free reference.
fn run_chaos(scale: Scale, spec: FaultSpec, backend: TransportBackend) -> bool {
    let spec_str = spec.to_string();
    println!(
        "== Chaos sweep: fault schedule `{spec_str}`, {} nodes, {backend} backend ==\n",
        hyperion_bench::ADAPTIVE_NODES
    );
    let pairs = sweep_chaos(scale, spec, backend);
    let markdown = report::chaos_markdown(&spec_str, &pairs);
    println!("{markdown}");
    let run = std::env::var("GITHUB_RUN_ID").unwrap_or_else(|_| "local".to_string());
    let path = format!("CHAOS_{run}.md");
    std::fs::write(&path, &markdown).expect("write chaos report");
    eprintln!("wrote {path}");
    pairs.iter().any(|p| !p.digests_match())
}

fn print_tables() {
    println!("== Table 1: Hyperion runtime modules and their Hyperion-RS implementations ==");
    println!("{:<26} {:<66} Implemented by", "Module", "Role (paper)");
    for (module, role, implementation) in table1_modules() {
        println!("{module:<26} {role:<66} {implementation}");
    }
    println!();
    println!("== Table 2: key DSM primitives (micro-measured, 2 nodes) ==");
    println!(
        "{:<20} {:<64} {:>16} {:>16}",
        "Primitive", "Description", "java_ic (us)", "java_pf (us)"
    );
    let ic = table2_primitives(&myrinet_200(), ProtocolKind::JavaIc);
    let pf = table2_primitives(&myrinet_200(), ProtocolKind::JavaPf);
    for (row_ic, row_pf) in ic.iter().zip(pf.iter()) {
        println!(
            "{:<20} {:<64} {:>16.2} {:>16.2}",
            row_ic.name, row_ic.description, row_ic.micros, row_pf.micros
        );
    }
    println!();
}

fn print_figure(rows: &[FigureRow]) {
    let fig = rows.first().map(|r| r.figure).unwrap_or(0);
    let app = rows.first().map(|r| r.app.to_string()).unwrap_or_default();
    println!("== Figure {fig}: {app} — execution time (virtual seconds) vs number of nodes ==");
    // Series layout mirroring the paper's plots: one line per
    // (cluster, protocol), node counts across the columns.
    let mut series: Vec<(String, ProtocolKind)> = Vec::new();
    for r in rows {
        let key = (r.cluster.clone(), r.protocol);
        if !series.contains(&key) {
            series.push(key);
        }
    }
    for (cluster, protocol) in series {
        let mut line = format!("{cluster:<16} {:<8}", protocol.to_string());
        let mut points: Vec<&FigureRow> = rows
            .iter()
            .filter(|r| r.cluster == cluster && r.protocol == protocol)
            .collect();
        points.sort_by_key(|r| r.nodes);
        for p in points {
            line.push_str(&format!("  {:>2}n:{:>9.3}s", p.nodes, p.seconds));
        }
        println!("{line}");
    }
    println!();
}

fn print_claims(all_rows: &[FigureRow]) {
    println!("== Derived §4.3 claims: java_ic -> java_pf improvement, (ic-pf)/ic ==");
    println!(
        "{:<12} {:<16} {:>6} {:>12} {:>12} {:>12}",
        "App", "Cluster", "Nodes", "ic (s)", "pf (s)", "improvement"
    );
    let improvements = improvement_summary(all_rows);
    for imp in &improvements {
        println!(
            "{:<12} {:<16} {:>6} {:>12.3} {:>12.3} {:>11.1}%",
            imp.app.to_string(),
            imp.cluster,
            imp.nodes,
            imp.ic_seconds,
            imp.pf_seconds,
            imp.percent()
        );
    }
    // Aggregate per cluster (the paper quotes a 21% average on SCI).
    for cluster in ["200MHz/Myrinet", "450MHz/SCI"] {
        let subset: Vec<f64> = improvements
            .iter()
            .filter(|i| i.cluster == cluster && i.app != BenchmarkName::Pi)
            .map(|i| i.percent())
            .collect();
        if !subset.is_empty() {
            let avg = subset.iter().sum::<f64>() / subset.len() as f64;
            println!(
                "average improvement on {cluster} (excluding Pi, all apps and node counts): {avg:.1}%"
            );
        }
    }
    println!();
}

fn write_csv(dir: &str, rows: &[FigureRow]) {
    let fig = rows.first().map(|r| r.figure).unwrap_or(0);
    let app = if fig == SCALING_FIGURE {
        "scaling".to_string()
    } else if fig == SERVING_FIGURE {
        "serving".to_string()
    } else if fig == DIRECTORY_FIGURE {
        "directory".to_string()
    } else if fig == TRANSPORT_FIGURE {
        "transport".to_string()
    } else if fig == ADAPTIVE_FIGURE {
        "adaptive".to_string()
    } else {
        rows.first()
            .map(|r| r.app.to_string().to_lowercase().replace('-', "_"))
            .unwrap_or_default()
    };
    std::fs::create_dir_all(dir).expect("create output directory");
    let path = format!("{dir}/fig{fig}_{app}.csv");
    let mut file = std::fs::File::create(&path).expect("create CSV file");
    writeln!(file, "{}", FigureRow::csv_header()).expect("write CSV header");
    for row in rows {
        writeln!(file, "{}", row.to_csv()).expect("write CSV row");
    }
    eprintln!("wrote {path}");
}

fn main() {
    let opts = parse_args();
    println!(
        "# Hyperion-RS figure harness — scale: {:?}; times are virtual seconds on the modelled clusters\n",
        opts.scale
    );

    if opts.tables {
        print_tables();
    }

    let mut all_rows = Vec::new();
    for &fig in &opts.figures {
        let rows = if fig == SCALING_FIGURE {
            print_scaling_figure(opts.scale)
        } else if fig == SERVING_FIGURE {
            print_serving_figure(opts.scale)
        } else if fig == DIRECTORY_FIGURE {
            print_directory_figure(opts.scale)
        } else if fig == TRANSPORT_FIGURE {
            print_transport_figure(opts.scale)
        } else if fig == ADAPTIVE_FIGURE {
            print_adaptive_figure(opts.scale)
        } else {
            let rows = sweep_figure(figure_name(fig), opts.scale);
            print_figure(&rows);
            rows
        };
        if let Some(dir) = &opts.out_dir {
            write_csv(dir, &rows);
        }
        all_rows.extend(rows);
    }

    if opts.claims && !all_rows.is_empty() {
        print_claims(&all_rows);
    }

    if let Some(backend) = opts.transport {
        run_modeled_vs_measured(opts.scale, backend);
    }

    if let Some(spec) = opts.fault {
        let backend = opts.transport.unwrap_or(TransportBackend::Sim);
        if run_chaos(opts.scale, spec, backend) {
            eprintln!("figures: chaos sweep digest mismatch");
            std::process::exit(1);
        }
    }

    if (opts.json || opts.baseline.is_some()) && run_bench_report(&opts) {
        std::process::exit(1);
    }
}
