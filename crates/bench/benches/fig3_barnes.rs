//! Figure 3 (Barnes): java_pf vs. java_ic on both clusters.
//!
//! The Criterion measurement is the wall-clock cost of simulating one data
//! point; the *virtual* execution times that reproduce the paper's curves
//! are printed by the `figures` binary (`cargo run -p hyperion-bench --bin
//! figures -- --fig 3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion::prelude::*;
use hyperion_apps::common::BenchmarkName;
use hyperion_bench::{run_point, Scale};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_barnes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for protocol in ProtocolKind::all() {
        for nodes in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(protocol.name(), nodes),
                &nodes,
                |b, &nodes| {
                    b.iter(|| {
                        run_point(
                            BenchmarkName::Barnes,
                            Scale::Quick,
                            &myrinet_200(),
                            protocol,
                            nodes,
                        )
                        .seconds
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
