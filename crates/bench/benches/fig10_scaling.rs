//! Figure 10 (extension): the 4 → 64 node scaling curve of the two-level
//! home hierarchy.
//!
//! Besides the Criterion-style wall-clock measurements this bench performs
//! a verification pass over the modeled results; a violation panics, so
//! `cargo bench` doubles as a gate:
//!
//! * **Digests**: every point of the sweep must compute the same answer
//!   grouped as flat — relaying through a group leader may change what an
//!   exchange costs, never what it moves.
//! * **Combining is live at 64 nodes**: the leaders' fetch and diff
//!   combining counters must both be non-zero on the Jacobi barrier
//!   exchange and on the Zipf-skewed KV store — a hierarchy that never
//!   coalesces anything is dead weight.
//! * **Hot-home flattening**: at 64 nodes the busiest node of the grouped
//!   run serves at most 3/4 of the flat run's hot-home RPC arrivals, for
//!   both apps (measured ratios are near 1/2; the slack absorbs
//!   problem-size tweaks).
//! * **Sub-linear growth**: growing the cluster 4 → 64 nodes must inflate
//!   the grouped hot home's arrivals by a strictly smaller factor than it
//!   inflates the flat hot home's — the scaling claim of the hierarchy
//!   itself, not of one operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion_apps::common::BenchmarkName;
use hyperion_bench::{sweep_scaling, Scale, ScalingPair};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("sweep", "quick"), |b| {
        b.iter(|| sweep_scaling(Scale::Quick).len())
    });
    group.finish();
}

/// The pair at `nodes` nodes for `app`, which the sweep is known to emit.
fn pair_at(pairs: &[ScalingPair], app: BenchmarkName, nodes: usize) -> &ScalingPair {
    pairs
        .iter()
        .find(|p| p.flat.app == app && p.flat.nodes == nodes)
        .expect("sweep emits every (app, node count) pair")
}

fn verify_scaling_invariants(_c: &mut Criterion) {
    println!();
    println!("== fig10 verification: two-level home hierarchy, quick scale, 4 -> 64 nodes ==");
    let pairs = sweep_scaling(Scale::Quick);

    for pair in &pairs {
        println!(
            "{:<10} {:>5} nodes (groups of {}): peak served {:>6} flat vs {:>6} grouped, \
             {:>5} fetches + {:>5} diff batches combined",
            pair.flat.app.to_string(),
            pair.flat.nodes,
            pair.group_size,
            pair.flat.peak_rpc_served,
            pair.grouped.peak_rpc_served,
            pair.grouped.stats.combined_fetches,
            pair.grouped.stats.combined_diff_batches,
        );
        assert!(
            pair.digests_match(),
            "{} @ {} nodes: grouped digest {} diverged from flat digest {}",
            pair.flat.app,
            pair.flat.nodes,
            pair.grouped.digest,
            pair.flat.digest
        );
    }

    for app in [BenchmarkName::Jacobi, BenchmarkName::KvStore] {
        let far = pair_at(&pairs, app, 64);
        assert!(
            far.grouped.stats.combined_fetches > 0,
            "{app}: no page fetch was ever served from a leader's unchanged-version window"
        );
        assert!(
            far.grouped.stats.combined_diff_batches > 0,
            "{app}: no diff batch was ever combined at the leaders"
        );
        assert!(
            4 * far.grouped.peak_rpc_served <= 3 * far.flat.peak_rpc_served,
            "{app}: grouped hot home still serves {} of the flat run's {} arrivals \
             (bound: 3/4)",
            far.grouped.peak_rpc_served,
            far.flat.peak_rpc_served,
        );

        // Sub-linearity: hot-home arrival growth 4 -> 64 nodes, grouped vs
        // flat, compared as cross products to stay in integers.
        let near = pair_at(&pairs, app, 4);
        let grouped_growth = (far.grouped.peak_rpc_served, near.grouped.peak_rpc_served);
        let flat_growth = (far.flat.peak_rpc_served, near.flat.peak_rpc_served);
        assert!(
            grouped_growth.0 * flat_growth.1 < flat_growth.0 * grouped_growth.1,
            "{app}: grouped hot-home arrivals grew {}/{} from 4 to 64 nodes, no slower \
             than flat's {}/{}",
            grouped_growth.0,
            grouped_growth.1,
            flat_growth.0,
            flat_growth.1,
        );
    }
    println!();
}

criterion_group!(benches, bench_fig10, verify_scaling_invariants);
criterion_main!(benches);
