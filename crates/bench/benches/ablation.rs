//! Ablation benches for the design trade-off the paper analyses in §3.3:
//! "choosing between one technique or the other involves a tradeoff which
//! needs to take into account [...] the ratio between the number of local
//! accesses to the number of remote accesses and the relative cost of page
//! faults against inline-checks."
//!
//! Three knobs are swept on the Jacobi workload:
//!
//! * the in-line check cost (`locality_check_cycles`),
//! * the page-fault cost (`page_fault`),
//! * the number of application threads per node (the overlap experiment the
//!   paper lists as future work in §4.3).
//!
//! Each Criterion sample simulates a full run; the interesting output is the
//! virtual execution time, which the bench prints once per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion::prelude::*;
use hyperion_apps::jacobi::{self, JacobiParams};

fn params() -> JacobiParams {
    JacobiParams { size: 64, steps: 4 }
}

fn run_with(cluster: ClusterSpec, protocol: ProtocolKind, threads_per_node: usize) -> f64 {
    let config = HyperionConfig::builder()
        .cluster(cluster)
        .nodes(2)
        .protocol(protocol)
        .threads_per_node(threads_per_node)
        .build()
        .expect("valid ablation configuration");
    jacobi::run(config, &params()).report.seconds()
}

fn bench_check_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/check_cost_cycles");
    group.sample_size(10);
    for cycles in [1.0f64, 6.0, 12.0] {
        let mut cluster = myrinet_200();
        cluster.machine.cpu.locality_check_cycles = cycles;
        let virtual_ic = run_with(cluster.clone(), ProtocolKind::JavaIc, 1);
        let virtual_pf = run_with(cluster.clone(), ProtocolKind::JavaPf, 1);
        eprintln!(
            "check={cycles} cycles: java_ic {virtual_ic:.4}s, java_pf {virtual_pf:.4}s (virtual)"
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(cycles as u64),
            &cycles,
            |b, _| {
                b.iter(|| run_with(cluster.clone(), ProtocolKind::JavaIc, 1));
            },
        );
    }
    group.finish();
}

fn bench_fault_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/page_fault_us");
    group.sample_size(10);
    for fault_us in [5u64, 22, 80] {
        let mut cluster = myrinet_200();
        cluster.machine.dsm.page_fault = VTime::from_us(fault_us);
        let virtual_pf = run_with(cluster.clone(), ProtocolKind::JavaPf, 1);
        eprintln!("fault={fault_us}us: java_pf {virtual_pf:.4}s (virtual)");
        group.bench_with_input(BenchmarkId::from_parameter(fault_us), &fault_us, |b, _| {
            b.iter(|| run_with(cluster.clone(), ProtocolKind::JavaPf, 1));
        });
    }
    group.finish();
}

fn bench_threads_per_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/threads_per_node");
    group.sample_size(10);
    for tpn in [1usize, 2, 4] {
        let virtual_pf = run_with(myrinet_200(), ProtocolKind::JavaPf, tpn);
        eprintln!("threads_per_node={tpn}: java_pf {virtual_pf:.4}s (virtual)");
        group.bench_with_input(BenchmarkId::from_parameter(tpn), &tpn, |b, &tpn| {
            b.iter(|| run_with(myrinet_200(), ProtocolKind::JavaPf, tpn));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_check_cost,
    bench_fault_cost,
    bench_threads_per_node
);
criterion_main!(benches);
