//! Figure 7 (extension): the split-transaction transport against the
//! blocking transport of the paper.
//!
//! Besides the Criterion-style wall-clock measurements this bench performs
//! a verification pass over the modeled results; a violation panics, so
//! `cargo bench` doubles as a gate:
//!
//! * **Overlap** (Jacobi, ASP under `java_pf`): overlapped fetches must
//!   strictly reduce the modeled wall time against the blocking transport,
//!   hide a non-zero amount of round-trip latency, keep page traffic
//!   identical and compute the same answer.
//! * **Migration** (TSP, Barnes-Hut under `java_ad`): home migration must
//!   strictly reduce the diff RPCs of the write-shared central structures
//!   (work queue head, best bound, chunk counters) and compute the same
//!   answer.
//! * The `java_ad` page-load bound of the fig6 gate must keep holding with
//!   the overlapped transport enabled.
//!
//! The dynamically scheduled apps (and, at quick scale, the barrier apps'
//! server-contention ordering) are schedule-noisy, so each pair is gated
//! with one strict round first and re-assessed in aggregate over five fresh
//! rounds when the strict round misses — a transport that systematically
//! lost time or traffic still fails.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion::prelude::*;
use hyperion::TransportConfig;
use hyperion_apps::common::BenchmarkName;
use hyperion_bench::{
    run_point_configured, sweep_transport, transport_pair, Scale, TransportPair, ADAPTIVE_NODES,
};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_transport");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (app, protocol, transport, label) in [
        (
            BenchmarkName::Jacobi,
            ProtocolKind::JavaPf,
            TransportConfig::blocking(),
            "blocking",
        ),
        (
            BenchmarkName::Jacobi,
            ProtocolKind::JavaPf,
            TransportConfig {
                overlapped_fetches: true,
                ..TransportConfig::default()
            },
            "overlapped",
        ),
        (
            BenchmarkName::Tsp,
            ProtocolKind::JavaAd,
            TransportConfig {
                home_migration: true,
                ..TransportConfig::default()
            },
            "migration",
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new(app.to_string(), label),
            &(protocol, transport),
            |b, (protocol, transport)| {
                b.iter(|| {
                    run_point_configured(
                        app,
                        Scale::Quick,
                        &myrinet_200(),
                        *protocol,
                        ADAPTIVE_NODES,
                        &AdaptiveParams::default(),
                        transport,
                        String::new(),
                    )
                    .seconds
                })
            },
        );
    }
    group.finish();
}

/// One fresh draw of the pair behind `pair` (same app/protocol/transport).
fn redraw(pair: &TransportPair) -> TransportPair {
    transport_pair(pair.baseline.app, Scale::Quick).expect("pair app is in the transport sweep")
}

fn verify_transport_invariants(_c: &mut Criterion) {
    println!();
    println!(
        "== fig7 verification: split-transaction vs blocking transport, quick scale, \
         {ADAPTIVE_NODES} nodes =="
    );
    for pair in sweep_transport(Scale::Quick) {
        let base = &pair.baseline;
        let on = &pair.enabled;
        println!(
            "{:<12} {:<10} {}: {:.4}s/{} diffs  ->  {}: {:.4}s/{} diffs (hidden {} cy, migrated {})",
            base.app.to_string(),
            pair.mechanism,
            base.protocol_label(),
            base.seconds,
            base.stats.diff_messages,
            on.protocol_label(),
            on.seconds,
            on.stats.diff_messages,
            on.stats.fetch_overlap_cycles_hidden,
            on.stats.pages_migrated,
        );
        let tolerance = base.digest.abs().max(1.0) * 1e-9;
        assert!(
            (base.digest - on.digest).abs() <= tolerance,
            "{}: transport changed the answer ({} vs {})",
            base.app,
            base.digest,
            on.digest
        );
        match pair.mechanism {
            "overlap" => {
                // Deterministic invariants of the split transport.
                assert!(
                    on.stats.fetch_overlap_cycles_hidden > 0,
                    "{}: overlapped transport hid no latency",
                    base.app
                );
                // Overlap defers when latency is charged, not what is
                // fetched; page traffic stays equal up to the per-barrier
                // wake-order noise every transport shows (the thread that
                // arrives last skips one barrier-state re-fetch).
                let slack = base.stats.page_loads / 20 + ADAPTIVE_NODES as u64;
                assert!(
                    on.stats.page_loads.abs_diff(base.stats.page_loads) <= slack,
                    "{}: overlap changed page traffic: {} vs {}",
                    base.app,
                    on.stats.page_loads,
                    base.stats.page_loads
                );
                // Wall time: strict round, then a deep aggregate (each
                // quick-scale round costs milliseconds).  Jacobi's overlap
                // effect is ~15–20% per round; ASP's honest window (the
                // leading pivot-free work of each Floyd iteration plus the
                // pipelined digest) is ~1% but highly consistent, so it
                // needs the deeper aggregate to clear the per-round
                // barrier-contention jitter.
                if on.seconds < base.seconds {
                    continue;
                }
                let rounds = if base.app == BenchmarkName::Asp {
                    20
                } else {
                    12
                };
                let (mut base_total, mut on_total) = (base.seconds, on.seconds);
                for _ in 0..rounds {
                    let fresh = redraw(&pair);
                    base_total += fresh.baseline.seconds;
                    on_total += fresh.enabled.seconds;
                }
                println!(
                    "  {}: strict round missed; aggregate of {}: {on_total:.4}s vs {base_total:.4}s",
                    base.app,
                    rounds + 1
                );
                assert!(
                    on_total < base_total,
                    "{}: overlapped transport did not reduce modeled wall time \
                     ({on_total:.4}s >= {base_total:.4}s aggregated over {} rounds)",
                    base.app,
                    rounds + 1
                );
            }
            "migration" => {
                if on.stats.pages_migrated > 0 && on.stats.diff_messages < base.stats.diff_messages
                {
                    continue;
                }
                // TSP and Barnes-Hut are schedule-chaotic: one fresh strict
                // retry before the aggregate fallback.
                let retry = redraw(&pair);
                if retry.enabled.stats.pages_migrated > 0
                    && retry.enabled.stats.diff_messages < retry.baseline.stats.diff_messages
                {
                    println!("  {}: strict round missed; retry passed", base.app);
                    continue;
                }
                let (mut base_total, mut on_total, mut migrated) = (
                    base.stats.diff_messages,
                    on.stats.diff_messages,
                    on.stats.pages_migrated,
                );
                for _ in 0..5 {
                    let fresh = redraw(&pair);
                    base_total += fresh.baseline.stats.diff_messages;
                    on_total += fresh.enabled.stats.diff_messages;
                    migrated += fresh.enabled.stats.pages_migrated;
                }
                println!(
                    "  {}: strict round missed; aggregate of 6: {on_total} vs {base_total} diffs",
                    base.app
                );
                assert!(migrated > 0, "{}: home migration never fired", base.app);
                assert!(
                    on_total < base_total,
                    "{}: home migration did not reduce diff RPCs \
                     ({on_total} >= {base_total} aggregated over 6 rounds)",
                    base.app
                );
            }
            other => panic!("unknown mechanism {other}"),
        }
    }

    // The fig6 acceptance bound must survive the new transport: java_ad's
    // page loads stay within the worse of the paper's two protocols when
    // every latency-hiding mechanism is on.  Absolute load counts carry the
    // same ±few-page barrier-wake noise as everywhere else, so the bound
    // uses the fig6 pattern: strict round first, aggregate of three on a
    // miss.
    let overlapped = TransportConfig::latency_hiding();
    for app in [BenchmarkName::Jacobi, BenchmarkName::Asp] {
        let run = |protocol| {
            run_point_configured(
                app,
                Scale::Quick,
                &myrinet_200(),
                protocol,
                ADAPTIVE_NODES,
                &AdaptiveParams::default(),
                &overlapped,
                String::new(),
            )
        };
        let round = || {
            let ic = run(ProtocolKind::JavaIc);
            let pf = run(ProtocolKind::JavaPf);
            let ad = run(ProtocolKind::JavaAd);
            (
                ic.stats.page_loads.max(pf.stats.page_loads),
                ad.stats.page_loads,
            )
        };
        let (worst, ad_loads) = round();
        if ad_loads <= worst {
            continue;
        }
        let mut worst_total = 0u64;
        let mut ad_total = 0u64;
        for _ in 0..3 {
            let (w, a) = round();
            worst_total += w;
            ad_total += a;
        }
        println!(
            "  {app}: strict loads round missed ({ad_loads} > {worst}); \
             aggregate of 3: {ad_total} vs {worst_total}"
        );
        // The strict keeper of this bound is the fig6 gate (default
        // transport); here a few pages of slack absorb the ±1-page
        // barrier-wake noise that `worse(two draws)` vs a third draw shows.
        assert!(
            ad_total <= worst_total + 8,
            "{app}: java_ad page loads {ad_total} exceed worse(ic, pf) {worst_total} \
             under the latency-hiding transport (aggregated over 3 rounds)"
        );
    }
    println!();
}

criterion_group!(benches, bench_fig7, verify_transport_invariants);
criterion_main!(benches);
