//! Table 2 micro-benchmarks: the five DSM primitives under both protocols.
//!
//! Criterion measures the wall-clock cost of executing each primitive in the
//! simulator; the virtual costs the paper's Table 2 describes are printed by
//! `figures --tables`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion::prelude::*;

fn with_runtime(protocol: ProtocolKind) -> HyperionRuntime {
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(2)
        .protocol(protocol)
        .build()
        .unwrap();
    HyperionRuntime::new(config).unwrap()
}

fn bench_get_put_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/get_put_cached");
    group.sample_size(20);
    for protocol in ProtocolKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.name()),
            &protocol,
            |b, &protocol| {
                b.iter(|| {
                    let rt = with_runtime(protocol);
                    rt.run(|ctx| {
                        let arr = ctx.alloc_array::<u64>(512, NodeId(1));
                        // Bring the page in once, then hammer cached accesses.
                        let mut acc = 0u64;
                        for i in 0..512 {
                            arr.put(ctx, i, i as u64);
                        }
                        for i in 0..512 {
                            acc = acc.wrapping_add(arr.get(ctx, i));
                        }
                        acc
                    })
                    .result
                })
            },
        );
    }
    group.finish();
}

fn bench_load_into_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/load_into_cache");
    group.sample_size(20);
    for protocol in ProtocolKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.name()),
            &protocol,
            |b, &protocol| {
                b.iter(|| {
                    let rt = with_runtime(protocol);
                    rt.run(|ctx| {
                        // 64 distinct remote pages, each fetched once.
                        let arrays: Vec<HArray<u64>> = (0..64)
                            .map(|_| ctx.alloc_array_page_aligned::<u64>(8, NodeId(1)))
                            .collect();
                        for a in &arrays {
                            ctx.load_into_cache(a.base());
                        }
                        ctx.now()
                    })
                    .result
                })
            },
        );
    }
    group.finish();
}

fn bench_monitor_and_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/invalidate_update");
    group.sample_size(20);
    for protocol in ProtocolKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.name()),
            &protocol,
            |b, &protocol| {
                b.iter(|| {
                    let rt = with_runtime(protocol);
                    rt.run(|ctx| {
                        let arr = ctx.alloc_array::<u64>(256, NodeId(1));
                        let monitor = ctx.new_monitor(NodeId(0));
                        for round in 0..32u64 {
                            monitor.synchronized(ctx, |ctx| {
                                arr.put(ctx, (round % 256) as usize, round);
                            });
                        }
                        ctx.now()
                    })
                    .result
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_get_put_hit,
    bench_load_into_cache,
    bench_monitor_and_flush
);
criterion_main!(benches);
