//! Figure 8 (extension): the cluster-wide prefetch directory and deferred
//! release flushing against figure 7's split-transaction transport.
//!
//! Besides the Criterion-style wall-clock measurements this bench performs
//! a verification pass over the modeled results; a violation panics, so
//! `cargo bench` doubles as a gate:
//!
//! * **Directory** (Jacobi, ASP under `java_pf`, unpaced): the directory
//!   transport (hints + deferred release, ASP's pivot loop issuing its
//!   fetch a statement-window early) must strictly reduce modeled wall
//!   time against the plain overlapped transport, send hints, and compute
//!   the same answer.  Hint waste — hinted pages invalidated untouched —
//!   must stay within 1/8 of the hints sent.
//! * **Deferred** (all five apps): deferred flushing only moves *when*
//!   flush latency is charged (from the release to the next acquire of the
//!   same monitor), so it must never increase modeled wall time.
//!
//! The schedule-chaotic apps (TSP, Barnes-Hut) are retried once before the
//! aggregate fallback: their per-round wall times vary by tens of percent
//! under every transport, so a single adverse draw is re-drawn before the
//! deeper (and slower) aggregate comparison runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion::prelude::*;
use hyperion::TransportConfig;
use hyperion_apps::common::BenchmarkName;
use hyperion_bench::{
    deferred_pair, directory_pair, run_point_configured, sweep_directory, DirectoryPair, Scale,
    ADAPTIVE_NODES,
};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_directory");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (app, transport, label) in [
        (
            BenchmarkName::Asp,
            TransportConfig {
                overlapped_fetches: true,
                ..TransportConfig::default()
            },
            "overlapped",
        ),
        (
            BenchmarkName::Asp,
            TransportConfig::directory(),
            "directory",
        ),
        (
            BenchmarkName::Jacobi,
            TransportConfig::directory(),
            "directory",
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new(app.to_string(), label),
            &transport,
            |b, transport| {
                b.iter(|| {
                    run_point_configured(
                        app,
                        Scale::Quick,
                        &myrinet_200(),
                        ProtocolKind::JavaPf,
                        ADAPTIVE_NODES,
                        &AdaptiveParams::default(),
                        transport,
                        String::new(),
                    )
                    .seconds
                })
            },
        );
    }
    group.finish();
}

/// One fresh draw of the same pair (same app, mechanism, configurations).
fn redraw(pair: &DirectoryPair) -> DirectoryPair {
    match pair.mechanism {
        "directory" => directory_pair(pair.baseline.app, Scale::Quick)
            .expect("pair app is in the directory sweep"),
        "deferred" => deferred_pair(pair.baseline.app, Scale::Quick),
        other => panic!("unknown mechanism {other}"),
    }
}

fn assert_same_digest(pair: &DirectoryPair) {
    let base = &pair.baseline;
    let on = &pair.enabled;
    let tolerance = base.digest.abs().max(1.0) * 1e-9;
    assert!(
        (base.digest - on.digest).abs() <= tolerance,
        "{}: {} transport changed the answer ({} vs {})",
        base.app,
        pair.mechanism,
        base.digest,
        on.digest
    );
}

fn verify_directory_invariants(_c: &mut Criterion) {
    println!();
    println!(
        "== fig8 verification: prefetch directory & deferred release, quick scale, \
         {ADAPTIVE_NODES} nodes =="
    );
    let mut hints_sent = 0u64;
    let mut hints_wasted = 0u64;
    for pair in sweep_directory(Scale::Quick) {
        let base = &pair.baseline;
        let on = &pair.enabled;
        println!(
            "{:<12} {:<10} {}: {:.4}s  ->  {}: {:.4}s (hints {} sent/{} done/{} wasted, \
             deferred {}, flush hidden {} cy)",
            base.app.to_string(),
            pair.mechanism,
            base.protocol_label(),
            base.seconds,
            on.protocol_label(),
            on.seconds,
            on.stats.hints_sent,
            on.stats.hinted_fetches_completed,
            on.stats.hinted_fetches_wasted,
            on.stats.deferred_flushes,
            on.stats.flush_overlap_cycles_hidden,
        );
        assert_same_digest(&pair);
        match pair.mechanism {
            "directory" => {
                hints_sent += on.stats.hints_sent;
                hints_wasted += on.stats.hinted_fetches_wasted;
                // The directory must actually participate: hints on the
                // wire and deferred flushes at the barriers.
                assert!(on.stats.hints_sent > 0, "{}: no hints sent", base.app);
                assert!(
                    on.stats.deferred_flushes > 0,
                    "{}: no deferred flushes",
                    base.app
                );
                assert_eq!(base.stats.hints_sent, 0, "baseline must not hint");
                // Wall time: strict round first, then an aggregate re-draw
                // (the directory effect on the already-overlapped baseline
                // is a few percent, within per-round barrier-order jitter).
                if on.seconds < base.seconds {
                    continue;
                }
                // Each quick-scale round costs milliseconds; the directory
                // effect on the already-overlapped baseline is 1–3%, so the
                // fallback needs depth to clear the per-round barrier-order
                // jitter (Jacobi's shorter rounds need more of them).
                let rounds = if base.app == BenchmarkName::Asp {
                    20
                } else {
                    24
                };
                let (mut base_total, mut on_total) = (base.seconds, on.seconds);
                for _ in 0..rounds {
                    let fresh = redraw(&pair);
                    base_total += fresh.baseline.seconds;
                    on_total += fresh.enabled.seconds;
                    hints_sent += fresh.enabled.stats.hints_sent;
                    hints_wasted += fresh.enabled.stats.hinted_fetches_wasted;
                }
                println!(
                    "  {}: strict round missed; aggregate of {}: {on_total:.4}s vs {base_total:.4}s",
                    base.app,
                    rounds + 1
                );
                assert!(
                    on_total < base_total,
                    "{}: directory transport did not reduce modeled wall time \
                     ({on_total:.4}s >= {base_total:.4}s aggregated over {} rounds)",
                    base.app,
                    rounds + 1
                );
            }
            "deferred" => {
                // Deferring only moves when flush latency is charged: wall
                // time must never grow (tiny epsilon for rounding).
                let chaotic = matches!(base.app, BenchmarkName::Tsp | BenchmarkName::Barnes);
                if on.seconds <= base.seconds * 1.001 {
                    continue;
                }
                if chaotic {
                    // Schedule-chaotic: one fresh re-draw before the deeper
                    // aggregate — a single adverse draw is ordinary noise.
                    let retry = redraw(&pair);
                    assert_same_digest(&retry);
                    if retry.enabled.seconds <= retry.baseline.seconds * 1.001 {
                        println!("  {}: strict round missed; retry passed", base.app);
                        continue;
                    }
                }
                // Non-chaotic rounds cost low milliseconds each, and the
                // deferred effect there is below the per-round barrier-order
                // jitter (~1%), so the fallback needs depth for the noise to
                // average out.
                let (mut base_total, mut on_total) = (base.seconds, on.seconds);
                let rounds = if chaotic { 5 } else { 9 };
                for _ in 0..rounds {
                    let fresh = redraw(&pair);
                    base_total += fresh.baseline.seconds;
                    on_total += fresh.enabled.seconds;
                }
                println!(
                    "  {}: strict round missed; aggregate of {}: {on_total:.4}s vs {base_total:.4}s",
                    base.app,
                    rounds + 1
                );
                // The chaotic apps explore a schedule-dependent amount of
                // work: their per-round times vary by tens of percent under
                // *every* transport (the committed baseline gives them a 3×
                // ceiling for the same reason), so the deferred bound is a
                // blow-up ceiling there and stays tight only for the
                // statically divided apps, where "never slower" is actually
                // measurable — up to the residual barrier-order jitter the
                // aggregate cannot fully average out.
                let slack = if chaotic { 1.5 } else { 1.005 };
                assert!(
                    on_total <= base_total * slack,
                    "{}: deferred flushing increased modeled wall time \
                     ({on_total:.4}s > {base_total:.4}s aggregated over {} rounds)",
                    base.app,
                    rounds + 1
                );
            }
            other => panic!("unknown mechanism {other}"),
        }
    }
    // Cluster-wide hint-waste bound across the directory pairs: hinted
    // pages that were invalidated untouched must stay within 1/8 of the
    // hints the homes sent (floor of 16 so a near-hintless run cannot fail
    // on a single unlucky conversion).
    assert!(
        hints_wasted * 8 <= hints_sent.max(16),
        "hint waste {hints_wasted} exceeds 1/8 of {hints_sent} hints sent"
    );
    println!("  hint waste: {hints_wasted}/{hints_sent} sent (bound: 1/8)");
    println!();
}

criterion_group!(benches, bench_fig8, verify_directory_invariants);
criterion_main!(benches);
