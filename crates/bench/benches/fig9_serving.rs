//! Figure 9 (extension): the serving-workload family — the Zipf-skewed
//! sharded KV store and the PageRank kernel — under all three protocols.
//!
//! Besides the Criterion-style wall-clock measurements this bench performs
//! a verification pass over the modeled results; a violation panics, so
//! `cargo bench` doubles as a gate:
//!
//! * **Digests**: each app must compute the same answer under `java_ic`,
//!   `java_pf` and `java_ad` (the serving apps are as
//!   protocol-independent as the paper's five).
//! * **KV throughput**: `java_ad` must serve at least as many operations
//!   per virtual second as the *worse* of the two fixed protocols — the
//!   adaptive protocol may split the difference, but it must not lose to
//!   both.  Strict round first, then an aggregate of fresh rounds
//!   (throughput inherits the per-round barrier-order jitter of the wall
//!   times it is derived from).
//! * **Hint economics**: under the prefetch-directory transport the
//!   Zipf-skewed KV traffic is the adversarial input for a successor-pair
//!   predictor (hot keys recur, but in no stable order), and the
//!   cluster-wide hint-waste bound of figure 8 — wasted hints within 1/8
//!   of hints sent — must hold here too.
//! * **PageRank page loads**: the adaptive protocol's page loads on the
//!   irregular graph traffic must stay within 25% of the `java_pf`
//!   reference — switching detection modes must not thrash the cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion::prelude::*;
use hyperion_apps::common::{protocols_under_test, BenchmarkName};
use hyperion_bench::{run_point, serving_directory_point, FigureRow, Scale, ADAPTIVE_NODES};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_serving");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for app in BenchmarkName::serving() {
        for protocol in protocols_under_test() {
            group.bench_with_input(
                BenchmarkId::new(app.to_string(), protocol.name()),
                &protocol,
                |b, &protocol| {
                    b.iter(|| {
                        run_point(app, Scale::Quick, &myrinet_200(), protocol, ADAPTIVE_NODES)
                            .seconds
                    })
                },
            );
        }
    }
    group.finish();
}

/// One quick-scale row per protocol, in `protocols_under_test()` order
/// (`java_ic`, `java_pf`, `java_ad`).
fn protocol_rows(app: BenchmarkName) -> Vec<FigureRow> {
    protocols_under_test()
        .into_iter()
        .map(|protocol| run_point(app, Scale::Quick, &myrinet_200(), protocol, ADAPTIVE_NODES))
        .collect()
}

fn assert_same_digest(a: &FigureRow, b: &FigureRow) {
    let tolerance = a.digest.abs().max(1.0) * 1e-9;
    assert!(
        (a.digest - b.digest).abs() <= tolerance,
        "{}: digest diverged between {} and {} ({} vs {})",
        a.app,
        a.protocol_label(),
        b.protocol_label(),
        a.digest,
        b.digest
    );
}

fn verify_serving_invariants(_c: &mut Criterion) {
    println!();
    println!(
        "== fig9 verification: serving workloads (Zipf KV store, PageRank), quick scale, \
         {ADAPTIVE_NODES} nodes =="
    );
    for app in BenchmarkName::serving() {
        let rows = protocol_rows(app);
        let (ic, pf, ad) = (&rows[0], &rows[1], &rows[2]);
        for row in &rows {
            println!(
                "{:<10} {:<8} {:.4}s  {:>8} ops  {:>10.0} ops/s  p99 {:>8.1} us  {:>6} loads",
                row.app.to_string(),
                row.protocol_label(),
                row.seconds,
                row.stats.serving_ops,
                row.serving_ops_per_s(),
                row.serving_p99_us,
                row.stats.page_loads,
            );
            assert!(row.stats.serving_ops > 0, "{app}: no serving ops recorded");
            assert!(row.serving_p99_us > 0.0, "{app}: no p99 recorded");
        }
        assert_same_digest(ic, pf);
        assert_same_digest(ic, ad);

        match app {
            BenchmarkName::KvStore => {
                // Throughput: java_ad must not lose to *both* fixed
                // protocols.  Strict round first, then aggregate ops over
                // aggregate virtual time across fresh rounds.
                let worse = ic.serving_ops_per_s().min(pf.serving_ops_per_s());
                if ad.serving_ops_per_s() >= worse {
                    continue;
                }
                let mut totals = [
                    (ic.stats.serving_ops, ic.seconds),
                    (pf.stats.serving_ops, pf.seconds),
                    (ad.stats.serving_ops, ad.seconds),
                ];
                for _ in 0..3 {
                    let fresh = protocol_rows(app);
                    for (acc, row) in totals.iter_mut().zip(&fresh) {
                        acc.0 += row.stats.serving_ops;
                        acc.1 += row.seconds;
                    }
                }
                let rate = |(ops, secs): (u64, f64)| ops as f64 / secs;
                let worse_total = rate(totals[0]).min(rate(totals[1]));
                let ad_total = rate(totals[2]);
                println!(
                    "  KVStore: strict round missed; aggregate of 4: \
                     java_ad {ad_total:.0} ops/s vs worse fixed {worse_total:.0} ops/s"
                );
                assert!(
                    ad_total >= worse_total,
                    "KVStore: java_ad throughput {ad_total:.0} ops/s fell below the worse \
                     fixed protocol's {worse_total:.0} ops/s aggregated over 4 rounds"
                );
            }
            BenchmarkName::PageRank => {
                // Irregular traffic must not make the adaptive protocol
                // thrash: its page loads stay within 25% of the java_pf
                // reference (plus a small absolute slack for tiny sweeps).
                let bound = pf.stats.page_loads + pf.stats.page_loads / 4 + 16;
                assert!(
                    ad.stats.page_loads <= bound,
                    "PageRank: java_ad loaded {} pages, above the bound {} derived from \
                     java_pf's {}",
                    ad.stats.page_loads,
                    bound,
                    pf.stats.page_loads
                );
            }
            other => panic!("unexpected serving app {other}"),
        }
    }

    // Hint economics under Zipf traffic: the KV store under the
    // prefetch-directory transport must hold figure 8's cluster-wide
    // hint-waste bound (wasted hints within 1/8 of hints sent, floor of 16
    // so a near-hintless run cannot fail on a single unlucky conversion).
    let dir = serving_directory_point(BenchmarkName::KvStore, Scale::Quick);
    let plain = run_point(
        BenchmarkName::KvStore,
        Scale::Quick,
        &myrinet_200(),
        ProtocolKind::JavaPf,
        ADAPTIVE_NODES,
    );
    assert_same_digest(&plain, &dir);
    let (sent, wasted) = (dir.stats.hints_sent, dir.stats.hinted_fetches_wasted);
    assert!(
        wasted * 8 <= sent.max(16),
        "KVStore under directory transport: hint waste {wasted} exceeds 1/8 of {sent} hints sent"
    );
    println!("  KVStore+dir hint waste: {wasted}/{sent} sent (bound: 1/8)");
    println!();
}

criterion_group!(benches, bench_fig9, verify_serving_invariants);
criterion_main!(benches);
