//! Figure 6 (extension): the adaptive protocol `java_ad` against the
//! paper's `java_ic` / `java_pf` across all five applications.
//!
//! Besides the Criterion-style wall-clock measurements this bench performs a
//! verification pass over the modeled results: for every app it asserts that
//! `java_ad` produces the same answer as the paper's protocols and that its
//! modeled page loads never exceed the worse of ic/pf — the acceptance
//! criterion of the adaptive protocol.  A violation panics, so `cargo bench`
//! doubles as a gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion::prelude::*;
use hyperion_apps::common::{protocols_under_test, BenchmarkName};
use hyperion_bench::{run_point, threshold_ablation, FigureRow, Scale, ADAPTIVE_NODES};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_adaptive");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for app in BenchmarkName::all() {
        for protocol in protocols_under_test() {
            group.bench_with_input(
                BenchmarkId::new(app.to_string(), protocol.name()),
                &protocol,
                |b, &protocol| {
                    b.iter(|| {
                        run_point(app, Scale::Quick, &myrinet_200(), protocol, ADAPTIVE_NODES)
                            .seconds
                    })
                },
            );
        }
    }
    group.finish();
}

/// The modeled-result gate: same answers, and `java_ad` page loads bounded
/// by the worse of the paper's two protocols on every app.
///
/// The dynamically scheduled apps (TSP's branch-and-bound, Barnes-Hut's
/// chunk counter) explore a schedule-dependent amount of work, so their
/// absolute page-load counts vary between runs *for every protocol* — a
/// single draw of `ad` against a single draw of `max(ic, pf)` is a coin
/// flip even when the adaptive protocol adds zero traffic of its own.  The
/// gate therefore starts with one strict round and, only if that round
/// fails, re-assesses over three fresh rounds in aggregate: total `ad`
/// loads must stay within the total per-round worse of ic/pf.
fn verify_adaptive_invariants(_c: &mut Criterion) {
    println!();
    println!(
        "== fig6 verification: java_ad vs worse(ic, pf), quick scale, {ADAPTIVE_NODES} nodes =="
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "App", "ic loads", "pf loads", "ad loads", "ad batches", "ad time(s)"
    );
    for app in BenchmarkName::all() {
        let round = || -> (FigureRow, FigureRow, FigureRow) {
            let run =
                |protocol| run_point(app, Scale::Quick, &myrinet_200(), protocol, ADAPTIVE_NODES);
            (
                run(ProtocolKind::JavaIc),
                run(ProtocolKind::JavaPf),
                run(ProtocolKind::JavaAd),
            )
        };
        let (ic, pf, ad) = round();
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>10} {:>10.4}",
            app.to_string(),
            ic.stats.page_loads,
            pf.stats.page_loads,
            ad.stats.page_loads,
            ad.stats.batched_fetches,
            ad.seconds,
        );
        let tolerance = ic.digest.abs().max(1.0) * 1e-9;
        assert!(
            (ic.digest - pf.digest).abs() <= tolerance
                && (ic.digest - ad.digest).abs() <= tolerance,
            "{app}: protocol digests diverge (ic {}, pf {}, ad {})",
            ic.digest,
            pf.digest,
            ad.digest
        );
        let worst = ic.stats.page_loads.max(pf.stats.page_loads);
        if ad.stats.page_loads <= worst {
            continue;
        }
        // Schedule-chaotic apps get one fresh strict retry before the
        // (three times slower) aggregate fallback: a single adverse draw of
        // `ad` against a single lucky draw of `worse(ic, pf)` is ordinary
        // scheduling noise, not a signal worth three more rounds.
        if matches!(app, BenchmarkName::Tsp | BenchmarkName::Barnes) {
            let (ic2, pf2, ad2) = round();
            if ad2.stats.page_loads <= ic2.stats.page_loads.max(pf2.stats.page_loads) {
                println!("  {app}: strict round missed; retry passed");
                continue;
            }
        }
        // Scheduling-noise fallback: aggregate five fresh rounds.  Per-round
        // load counts jitter by a page or two under *every* protocol (the
        // speculative-batch draw depends on arrival order), so the aggregate
        // tolerates one load of jitter per round — systematic inflation
        // still fails by a margin.
        const ROUNDS: u64 = 5;
        let mut ad_total = 0u64;
        let mut worst_total = 0u64;
        for _ in 0..ROUNDS {
            let (ic, pf, ad) = round();
            ad_total += ad.stats.page_loads;
            worst_total += ic.stats.page_loads.max(pf.stats.page_loads);
        }
        println!(
            "  {app}: strict round missed ({} > {worst}); aggregate of {ROUNDS}: ad {ad_total} vs worse {worst_total}",
            ad.stats.page_loads
        );
        assert!(
            ad_total <= worst_total + ROUNDS,
            "{app}: java_ad page loads exceed the worse of ic/pf even aggregated \
             over {ROUNDS} rounds ({ad_total} > {worst_total} + {ROUNDS})"
        );
    }
    println!();
    println!("-- switching-threshold ablation (Jacobi, hi multiple of break-even) --");
    for (hi, row) in threshold_ablation(BenchmarkName::Jacobi, Scale::Quick, &[0.25, 1.0, 4.0]) {
        println!(
            "hi = {hi:>5.2} * n_star: exec {:>9.4}s  checks {:>8}  faults {:>6}  switches {:>4}",
            row.seconds,
            row.stats.locality_checks,
            row.stats.page_faults,
            row.stats.protocol_switches,
        );
    }
    println!();
}

criterion_group!(benches, bench_fig6, verify_adaptive_invariants);
criterion_main!(benches);
