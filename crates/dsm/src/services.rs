//! The home-side RPC services of the DSM: page fetch and diff apply.
//!
//! Both handlers are pure mechanism — copy pages, apply diffs, charge the
//! modelled service cost — and consult two policies each at their decision
//! points: the [`Predictor`] for which hints a fetch reply carries, the
//! [`MigrationPolicy`] for whether an applied diff hands the page's home to
//! the writer, and the [`ReplicationPolicy`] on both paths for whether
//! served pages register read replicas and applied diffs perform quorum
//! writes (with the replica-shipping cost charged in the service time).

use std::sync::Arc;

use hyperion_model::{CpuModel, DsmCostModel, NodeStats};
use hyperion_pm2::{Node, NodeId, PageId, RpcHandler, RpcReply, SLOTS_PER_PAGE};

use crate::diff::{decode_diff_message, decode_page_fetch_request, encode_migration_grant};
use crate::policy::{MigrationPolicy, Predictor, ReplicationPolicy};
use crate::table::DsmStore;

/// Bytes of one page on the wire.
pub(crate) const PAGE_BYTES: usize = SLOTS_PER_PAGE * 8;

/// RPC service: ship a copy of a home page to a requesting node and, when
/// the predictor asks for it, piggyback "a neighbour also fetched p..p+k"
/// hints derived from the home's per-page fetch history.
pub(crate) struct PageFetchService {
    pub(crate) store: Arc<DsmStore>,
    pub(crate) cpu: CpuModel,
    pub(crate) dsm: DsmCostModel,
    pub(crate) predictor: Arc<dyn Predictor>,
    pub(crate) replication: Arc<dyn ReplicationPolicy>,
}

impl RpcHandler for PageFetchService {
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        let (first, count, hints_ok) = decode_page_fetch_request(payload);
        let mut bytes = Vec::with_capacity(PAGE_BYTES * count as usize);
        let home = target.id();
        // Directory bookkeeping exists only when the predictor opts in: a
        // `NoopPredictor` declines the observation, and the fetch handler
        // does exactly what the plain split-transaction transport did (no
        // stamps, no history writes).
        let obs = self
            .predictor
            .observe_fetch(&self.store, home, caller, first, count);
        for k in 0..count as u64 {
            let page = PageId(first.0 + k);
            // Serve the *current* home's copy: normally that is `target`,
            // but a concurrent home migration may have moved the page after
            // the caller looked its home up, in which case the old home
            // forwards the authoritative frame (the shared store gives the
            // modelled handler direct access to it).
            let home_now = self.store.home_of(page);
            debug_assert!(
                home_now == target.id() || self.store.page_migrated(page),
                "page fetch sent to a node that is not the page's home"
            );
            bytes.extend_from_slice(&self.store.with_frame(home_now, page, |f| {
                if let Some(o) = &obs {
                    self.predictor.record_served_page(f, caller, o);
                }
                f.data().snapshot_bytes()
            }));
            if self.replication.replicates() {
                // The served copy doubles as a read replica: the caller is
                // now a candidate home should this node fail.
                self.replication.on_page_served(&self.store, page, caller);
            }
        }
        let mut hint_entries = 0u16;
        if hints_ok {
            if let Some(o) = &obs {
                if let Some((start, run)) =
                    self.predictor
                        .predict(&self.store, home, caller, first, count, o)
                {
                    crate::diff::append_fetch_hints(&mut bytes, &[(start, run)]);
                    hint_entries = 1;
                    NodeStats::bump_by(&target.stats.hints_sent, run as u64);
                }
            }
        }
        let service = self.cpu.cycles(
            self.dsm.page_copy_cycles_per_slot * (SLOTS_PER_PAGE * count as usize) as f64
                + self.dsm.batch_page_cycles * (count - 1) as f64
                + self.dsm.hint_entry_cycles * hint_entries as f64,
        );
        RpcReply::with_data(bytes, service)
    }

    fn name(&self) -> &'static str {
        "dsm.page_fetch"
    }
}

/// RPC service: apply one or more field-granularity diffs to home pages,
/// and — when the migration policy says so — hand the home of a
/// write-shared page over to the writer that dominates its diff traffic.
pub(crate) struct DiffApplyService {
    pub(crate) store: Arc<DsmStore>,
    pub(crate) cpu: CpuModel,
    pub(crate) dsm: DsmCostModel,
    pub(crate) migration: Arc<dyn MigrationPolicy>,
    pub(crate) replication: Arc<dyn ReplicationPolicy>,
}

impl RpcHandler for DiffApplyService {
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        let diffs = decode_diff_message(payload);
        let mut slots = 0usize;
        let mut quorum_slots = 0usize;
        let mut grant: Option<(PageId, Vec<u8>)> = None;
        for (page, entries) in &diffs {
            slots += entries.len();
            // Apply to the *current* home frame (see `PageFetchService` on
            // why this may differ from `target` under concurrent migration).
            let home_now = self.store.home_of(*page);
            debug_assert!(
                home_now == target.id() || self.store.page_migrated(*page),
                "diff sent to a node that is not the page's home"
            );
            let migrate = self.store.with_frame(home_now, *page, |f| {
                debug_assert!(f.is_home() || self.store.page_migrated(*page));
                for &(slot, value) in entries {
                    f.apply_diff_slot(slot as usize, value);
                }
                // Migration decision: one grant per message at most (the
                // `grant.is_none()` guard runs first so a policy's vote
                // state is untouched once this message granted).
                grant.is_none() && self.migration.should_migrate(f, caller, home_now)
            });
            if migrate {
                // Execute the hand-over while still inside the handler so no
                // fetch can observe a half-migrated page: promote the
                // writer's frame from the authoritative snapshot (keeping
                // any newer local writes it has pending), then re-route the
                // home and demote the old home to an ordinary cached copy.
                let (snapshot, back_off) = self.store.with_frame(home_now, *page, |f| {
                    (f.data().snapshot_bytes(), f.mig_required())
                });
                self.store.with_frame(caller, *page, |f| {
                    f.promote_to_home(&snapshot);
                    f.mig_inherit_required(back_off);
                });
                self.store.set_home(*page, caller);
                self.store
                    .with_frame(home_now, *page, |f| f.demote_from_home());
                grant = Some((*page, snapshot));
            }
            if self.replication.replicates() {
                // Quorum write: advance the page's replica version and ship
                // the applied slots to the stamped holders.  The shipping is
                // charged below as extra apply work per (holder, slot) pair.
                let members = self.replication.on_diff_applied(&self.store, *page);
                quorum_slots += members * entries.len();
            }
        }
        let service = self.cpu.cycles(
            self.dsm.diff_apply_cycles_per_slot * (slots + quorum_slots) as f64
                + self.dsm.batch_flush_cycles * (diffs.len() - 1) as f64,
        );
        match grant {
            // The grant reply carries the page snapshot so shipping the
            // authoritative copy to the new home is charged on the wire.
            Some((page, snapshot)) => {
                RpcReply::with_data(encode_migration_grant(page, &snapshot), service)
            }
            None => RpcReply::ack(service),
        }
    }

    fn name(&self) -> &'static str {
        "dsm.diff_apply"
    }
}
