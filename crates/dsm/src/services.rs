//! The home-side RPC services of the DSM: page fetch and diff apply.
//!
//! Both handlers are pure mechanism — copy pages, apply diffs, charge the
//! modelled service cost — and consult two policies each at their decision
//! points: the [`Predictor`] for which hints a fetch reply carries, the
//! [`MigrationPolicy`] for whether an applied diff hands the page's home to
//! the writer, and the [`ReplicationPolicy`] on both paths for whether
//! served pages register read replicas and applied diffs perform quorum
//! writes (with the replica-shipping cost charged in the service time).

use std::sync::Arc;

use hyperion_model::{CpuModel, DsmCostModel, NodeStats};
use hyperion_pm2::{Node, NodeId, PageId, RpcHandler, RpcReply, SLOTS_PER_PAGE};

use crate::diff::{decode_diff_message, decode_page_fetch_request, encode_migration_grant};
use crate::policy::{FetchObservation, MigrationPolicy, Predictor, ReplicationPolicy};
use crate::table::DsmStore;

/// Bytes of one page on the wire.
pub(crate) const PAGE_BYTES: usize = SLOTS_PER_PAGE * 8;

/// Copy the span `[first, first + count)` out of the authoritative home
/// frames, running the predictor's per-page bookkeeping and the
/// replication policy's read-replica registration exactly as the direct
/// fetch path does.  Shared between [`PageFetchService`] and the group
/// relay so a fetch served through a leader is byte-identical to one
/// served directly.
pub(crate) fn copy_home_pages(
    store: &DsmStore,
    predictor: &dyn Predictor,
    replication: &dyn ReplicationPolicy,
    home: NodeId,
    caller: NodeId,
    first: PageId,
    count: u32,
) -> (Vec<u8>, Option<FetchObservation>) {
    let mut bytes = Vec::with_capacity(PAGE_BYTES * count as usize);
    // Directory bookkeeping exists only when the predictor opts in: a
    // `NoopPredictor` declines the observation, and the fetch handler
    // does exactly what the plain split-transaction transport did (no
    // stamps, no history writes).
    let obs = predictor.observe_fetch(store, home, caller, first, count);
    for k in 0..count as u64 {
        let page = PageId(first.0 + k);
        // Serve the *current* home's copy: normally that is the node the
        // request was addressed to, but a concurrent home migration may
        // have moved the page after the caller looked its home up, in
        // which case the old home forwards the authoritative frame (the
        // shared store gives the modelled handler direct access to it).
        let home_now = store.home_of(page);
        debug_assert!(
            home_now == home || store.page_migrated(page),
            "page fetch sent to a node that is not the page's home"
        );
        bytes.extend_from_slice(&store.with_frame(home_now, page, |f| {
            if let Some(o) = &obs {
                predictor.record_served_page(f, caller, o);
            }
            f.data().snapshot_bytes()
        }));
        if replication.replicates() {
            // The served copy doubles as a read replica: the caller is
            // now a candidate home should this node fail.
            replication.on_page_served(store, page, caller);
        }
    }
    (bytes, obs)
}

/// What applying one diff message to the home frames produced: the slot
/// counts that price the service time and the at-most-one migration grant.
pub(crate) struct DiffOutcome {
    /// Diff slots applied across all pages of the message.
    pub(crate) slots: usize,
    /// Extra (holder, slot) pairs shipped by quorum replica writes.
    pub(crate) quorum_slots: usize,
    /// Number of per-page diff batches in the message.
    pub(crate) batches: usize,
    /// Home hand-over granted to the writer, with the page snapshot the
    /// grant reply ships.
    pub(crate) grant: Option<(PageId, Vec<u8>)>,
}

/// Apply one encoded diff message to the authoritative home frames on
/// behalf of `caller`, consulting the migration policy for a home
/// hand-over and the replication policy for quorum writes.  Shared
/// between [`DiffApplyService`] and the group relay: a diff batch routed
/// through a leader mutates memory exactly once, identically to the
/// direct path (the relay only re-prices the RPC fan-in).
pub(crate) fn apply_diff_message(
    store: &DsmStore,
    migration: &dyn MigrationPolicy,
    replication: &dyn ReplicationPolicy,
    nominal_home: NodeId,
    caller: NodeId,
    payload: &[u8],
) -> DiffOutcome {
    let diffs = decode_diff_message(payload);
    let mut out = DiffOutcome {
        slots: 0,
        quorum_slots: 0,
        batches: diffs.len(),
        grant: None,
    };
    for (page, entries) in &diffs {
        out.slots += entries.len();
        // Apply to the *current* home frame (see `copy_home_pages` on why
        // this may differ from the addressed node under concurrent
        // migration).
        let home_now = store.home_of(*page);
        debug_assert!(
            home_now == nominal_home || store.page_migrated(*page),
            "diff sent to a node that is not the page's home"
        );
        let migrate = store.with_frame(home_now, *page, |f| {
            debug_assert!(f.is_home() || store.page_migrated(*page));
            for &(slot, value) in entries {
                f.apply_diff_slot(slot as usize, value);
            }
            // Migration decision: one grant per message at most (the
            // `grant.is_none()` guard runs first so a policy's vote
            // state is untouched once this message granted).
            out.grant.is_none() && migration.should_migrate(f, caller, home_now)
        });
        // The page's bytes changed: stale leader-cached copies must not be
        // treated as current by the fetch-combining version check.
        store.note_page_changed(*page);
        if migrate {
            // Execute the hand-over while still inside the handler so no
            // fetch can observe a half-migrated page: promote the
            // writer's frame from the authoritative snapshot (keeping
            // any newer local writes it has pending), then re-route the
            // home and demote the old home to an ordinary cached copy.
            let (snapshot, back_off) = store.with_frame(home_now, *page, |f| {
                (f.data().snapshot_bytes(), f.mig_required())
            });
            store.with_frame(caller, *page, |f| {
                f.promote_to_home(&snapshot);
                f.mig_inherit_required(back_off);
            });
            store.set_home(*page, caller);
            store.with_frame(home_now, *page, |f| f.demote_from_home());
            out.grant = Some((*page, snapshot));
        }
        if replication.replicates() {
            // Quorum write: advance the page's replica version and ship
            // the applied slots to the stamped holders.  The shipping is
            // charged as extra apply work per (holder, slot) pair.
            let members = replication.on_diff_applied(store, *page);
            out.quorum_slots += members * entries.len();
        }
    }
    out
}

/// RPC service: ship a copy of a home page to a requesting node and, when
/// the predictor asks for it, piggyback "a neighbour also fetched p..p+k"
/// hints derived from the home's per-page fetch history.
pub(crate) struct PageFetchService {
    pub(crate) store: Arc<DsmStore>,
    pub(crate) cpu: CpuModel,
    pub(crate) dsm: DsmCostModel,
    pub(crate) predictor: Arc<dyn Predictor>,
    pub(crate) replication: Arc<dyn ReplicationPolicy>,
}

impl RpcHandler for PageFetchService {
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        let (first, count, hints_ok) = decode_page_fetch_request(payload);
        let home = target.id();
        let (mut bytes, obs) = copy_home_pages(
            &self.store,
            self.predictor.as_ref(),
            self.replication.as_ref(),
            home,
            caller,
            first,
            count,
        );
        let mut hint_entries = 0u16;
        if hints_ok {
            if let Some(o) = &obs {
                if let Some((start, run)) =
                    self.predictor
                        .predict(&self.store, home, caller, first, count, o)
                {
                    crate::diff::append_fetch_hints(&mut bytes, &[(start, run)]);
                    hint_entries = 1;
                    NodeStats::bump_by(&target.stats.hints_sent, run as u64);
                }
            }
        }
        let service = self.cpu.cycles(
            self.dsm.page_copy_cycles_per_slot * (SLOTS_PER_PAGE * count as usize) as f64
                + self.dsm.batch_page_cycles * (count - 1) as f64
                + self.dsm.hint_entry_cycles * hint_entries as f64,
        );
        RpcReply::with_data(bytes, service)
    }

    fn name(&self) -> &'static str {
        "dsm.page_fetch"
    }
}

/// RPC service: apply one or more field-granularity diffs to home pages,
/// and — when the migration policy says so — hand the home of a
/// write-shared page over to the writer that dominates its diff traffic.
pub(crate) struct DiffApplyService {
    pub(crate) store: Arc<DsmStore>,
    pub(crate) cpu: CpuModel,
    pub(crate) dsm: DsmCostModel,
    pub(crate) migration: Arc<dyn MigrationPolicy>,
    pub(crate) replication: Arc<dyn ReplicationPolicy>,
}

impl RpcHandler for DiffApplyService {
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        let out = apply_diff_message(
            &self.store,
            self.migration.as_ref(),
            self.replication.as_ref(),
            target.id(),
            caller,
            payload,
        );
        let service = self.cpu.cycles(
            self.dsm.diff_apply_cycles_per_slot * (out.slots + out.quorum_slots) as f64
                + self.dsm.batch_flush_cycles * (out.batches - 1) as f64,
        );
        match out.grant {
            // The grant reply carries the page snapshot so shipping the
            // authoritative copy to the new home is charged on the wire.
            Some((page, snapshot)) => {
                RpcReply::with_data(encode_migration_grant(page, &snapshot), service)
            }
            None => RpcReply::ack(service),
        }
    }

    fn name(&self) -> &'static str {
        "dsm.diff_apply"
    }
}
