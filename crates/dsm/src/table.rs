//! Per-node page tables and the cluster-wide DSM store.
//!
//! Every node keeps one [`PageFrame`] per page of the
//! global address space.  The home node's frame *is* the main-memory copy of
//! the page; the other nodes' frames are caches.  Frame tables grow lazily as
//! pages are allocated.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hyperion_pm2::{IsoAllocator, NodeId, PageId, Topology};
use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::page::PageFrame;

/// Replication metadata of one page: which nodes hold read replicas and how
/// current each holder is.
///
/// `version` counts the quorum writes the page's home has applied; each
/// holder records the version it was last brought up to.  Recovery elects
/// the *newest* live holder as the page's next home (ties go to the lowest
/// node id, so elections are deterministic).
#[derive(Clone, Debug, Default)]
pub struct ReplicaSet {
    /// Monotone count of quorum writes applied to the page.
    pub version: u64,
    /// `(holder node id, version the holder was last updated to)`, in
    /// registration order.
    pub holders: Vec<(u32, u64)>,
}

/// The frame table of a single node.
#[derive(Debug, Default)]
pub struct NodeFrames {
    frames: RwLock<Vec<Arc<PageFrame>>>,
}

impl NodeFrames {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages this node currently has frames for.
    pub fn len(&self) -> usize {
        self.frames.read().len()
    }

    /// True if no frames exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The cluster-wide DSM store: one frame table per node plus the allocator
/// that knows each page's home.
///
/// This is the piece of state shared between the protocol engine and the RPC
/// handlers registered with the communication subsystem (the handlers read
/// home frames and apply diffs to them).
pub struct DsmStore {
    allocator: Arc<IsoAllocator>,
    nodes: Vec<NodeFrames>,
    /// Pages whose home has *ever* migrated away from the allocator's
    /// static assignment (home migration).  An entry stays even when a page
    /// migrates back to its static home, so per-page "has this page ever
    /// moved" queries stay answerable.
    home_overrides: RwLock<HashMap<u64, NodeId>>,
    /// Number of entries in `home_overrides`, readable without the lock so
    /// the migration-free common case of [`DsmStore::home_of`] stays a
    /// plain array index.
    num_overrides: std::sync::atomic::AtomicUsize,
    /// The node-group shape of the cluster (flat single-node groups by
    /// default).  The directory keys its per-requester state by group, the
    /// relay layer routes cross-group traffic through group leaders, and
    /// under the flat default both collapse to the pre-topology behaviour.
    topology: Topology,
    /// Prefetch directory: per-home fetch sequence counters.  Every page
    /// fetch a home serves bumps its counter; the per-page observations on
    /// the home frames are stamped with it, which is how "recently fetched"
    /// is defined without a clock.
    fetch_seq: Vec<std::sync::atomic::AtomicU64>,
    /// Prefetch directory: for each (home, requester *group*) pair, the
    /// page id + 1 of the most recent page that home served to that group
    /// (0 = none).  Consecutive ids form the stride runs the directory
    /// extends.  Keying by group instead of node keeps the table
    /// `homes × groups` instead of `homes × nodes`; under the flat
    /// topology the two coincide exactly.
    last_fetch: Vec<std::sync::atomic::AtomicU64>,
    /// Per-page change counters, maintained only under a grouped topology:
    /// bumped on every diff application and home change so a group
    /// leader's relay cache can tell "unchanged since my last upstream
    /// fetch" apart from stale.  Empty (and never consulted) when flat.
    page_versions: RwLock<HashMap<u64, Arc<AtomicU64>>>,
    /// Groups whose leader has failed: their members stop relaying and fall
    /// back to direct home RPCs (combining degrades, correctness does not).
    degraded_groups: RwLock<HashSet<usize>>,
    /// Entry count of `degraded_groups`, readable without the lock.
    num_degraded: std::sync::atomic::AtomicUsize,
    /// Replication directory: per-page read-replica holders and their
    /// quorum-write versions (empty under the Noop replication policy).
    replicas: RwLock<HashMap<u64, ReplicaSet>>,
    /// Nodes that have failed fail-stop and been recovered from.
    failed: RwLock<HashSet<u32>>,
    /// Entry count of `failed`, readable without the lock so the
    /// failure-free common case stays a plain load.
    num_failed: std::sync::atomic::AtomicUsize,
    /// Serialises node recovery: the first thread to observe a dead peer
    /// re-homes every page it served; concurrent observers wait here and
    /// then see the already-recovered routing.
    recovery: Mutex<()>,
}

impl DsmStore {
    /// Create a store for `num_nodes` nodes sharing `allocator`'s address
    /// space, under the flat (ungrouped) topology.
    pub fn new(allocator: Arc<IsoAllocator>, num_nodes: usize) -> Arc<Self> {
        DsmStore::with_topology(allocator, Topology::flat(num_nodes))
    }

    /// Create a store under an explicit node-group [`Topology`] (whose node
    /// count is the cluster's node count).
    pub fn with_topology(allocator: Arc<IsoAllocator>, topology: Topology) -> Arc<Self> {
        let num_nodes = topology.nodes();
        assert!(num_nodes > 0, "DSM store needs at least one node");
        let dir_keys = topology.num_groups();
        Arc::new(DsmStore {
            allocator,
            nodes: (0..num_nodes).map(|_| NodeFrames::new()).collect(),
            home_overrides: RwLock::new(HashMap::new()),
            num_overrides: std::sync::atomic::AtomicUsize::new(0),
            topology,
            fetch_seq: (0..num_nodes)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            last_fetch: (0..num_nodes * dir_keys)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            page_versions: RwLock::new(HashMap::new()),
            degraded_groups: RwLock::new(HashSet::new()),
            num_degraded: std::sync::atomic::AtomicUsize::new(0),
            replicas: RwLock::new(HashMap::new()),
            failed: RwLock::new(HashSet::new()),
            num_failed: std::sync::atomic::AtomicUsize::new(0),
            recovery: Mutex::new(()),
        })
    }

    /// The node-group topology this store routes under.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The directory key of a requester: its group index.  Under the flat
    /// topology this is the node index, so per-group directory state is
    /// byte-identical to the historical per-node state.
    #[inline]
    pub fn dir_key(&self, requester: NodeId) -> usize {
        self.topology.group_of(requester)
    }

    /// The nonzero directory tag of a requester (`dir_key + 1`; 0 means
    /// "empty slot" in the frames' recent-fetcher ring).
    #[inline]
    pub fn dir_tag(&self, requester: NodeId) -> u64 {
        self.dir_key(requester) as u64 + 1
    }

    /// The iso-address allocator behind this store.
    pub fn allocator(&self) -> &IsoAllocator {
        &self.allocator
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Home node of `page`: the allocator's static assignment unless the
    /// page's home has migrated.  With migration disabled (or before the
    /// first grant) this is a lock-free array index.
    #[inline]
    pub fn home_of(&self, page: PageId) -> NodeId {
        if self
            .num_overrides
            .load(std::sync::atomic::Ordering::Acquire)
            > 0
        {
            let overrides = self.home_overrides.read();
            if let Some(&home) = overrides.get(&page.0) {
                return home;
            }
        }
        self.allocator.home_of(page)
    }

    /// Re-home `page` on `node` (home migration).  The caller is responsible
    /// for flipping the two affected frames' home flags in the same step.
    pub fn set_home(&self, page: PageId, node: NodeId) {
        let mut overrides = self.home_overrides.write();
        overrides.insert(page.0, node);
        self.num_overrides
            .store(overrides.len(), std::sync::atomic::Ordering::Release);
        drop(overrides);
        // A home change invalidates any relay-cache copy of the page.
        self.note_page_changed(page);
    }

    /// Bump `page`'s change counter (grouped topologies only; a no-op when
    /// flat).  Called on every diff application and home change so group
    /// leaders' relay caches can detect staleness.
    pub fn note_page_changed(&self, page: PageId) {
        if !self.topology.is_grouped() {
            return;
        }
        if let Some(v) = self.page_versions.read().get(&page.0) {
            v.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.page_versions
            .write()
            .entry(page.0)
            .or_default()
            .fetch_add(1, Ordering::Relaxed);
    }

    /// `page`'s current change counter (0 until the first change; always 0
    /// under the flat topology, which never consults it).
    pub fn page_version(&self, page: PageId) -> u64 {
        self.page_versions
            .read()
            .get(&page.0)
            .map_or(0, |v| v.load(Ordering::Relaxed))
    }

    /// Mark `group`'s combining degraded (its leader died): members fall
    /// back to direct home RPCs from now on.
    pub fn mark_group_degraded(&self, group: usize) {
        let mut degraded = self.degraded_groups.write();
        degraded.insert(group);
        self.num_degraded
            .store(degraded.len(), std::sync::atomic::Ordering::Release);
    }

    /// True if `group`'s leader has failed and its combining is degraded.
    pub fn group_degraded(&self, group: usize) -> bool {
        self.num_degraded.load(std::sync::atomic::Ordering::Acquire) > 0
            && self.degraded_groups.read().contains(&group)
    }

    /// Number of pages whose home has ever migrated away from (and possibly
    /// back to) their allocation-time node.
    pub fn migrated_pages(&self) -> usize {
        self.num_overrides
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// True if `page`'s home has ever migrated (used to scope the handler
    /// routing assertions: a stale route is only legitimate for a page that
    /// actually moved).
    pub fn page_migrated(&self, page: PageId) -> bool {
        self.migrated_pages() > 0 && self.home_overrides.read().contains_key(&page.0)
    }

    /// Advance and return home `home`'s prefetch-directory fetch sequence
    /// (the stamp recorded on the served pages' directory entries).
    pub fn next_fetch_seq(&self, home: NodeId) -> u64 {
        self.fetch_seq[home.index()].fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// The page id (`+ 1`, 0 = none) home `home` most recently served to
    /// `requester`'s group, then replace it with `page`.  The directory's
    /// stride detector compares the returned value against the page being
    /// served.  Group-keyed so the table stays `homes × groups`; flat
    /// topologies key per node exactly as before.
    pub fn swap_last_fetch(&self, home: NodeId, requester: NodeId, page: PageId) -> u64 {
        self.last_fetch[home.index() * self.topology.num_groups() + self.dir_key(requester)]
            .swap(page.0 + 1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Run `f` on node `node`'s frame for `page`, creating the frame (and any
    /// missing lower-numbered frames) on first touch.
    ///
    /// # Panics
    /// Panics if `page` has not been allocated or `node` is out of range.
    pub fn with_frame<R>(&self, node: NodeId, page: PageId, f: impl FnOnce(&PageFrame) -> R) -> R {
        let table = &self.nodes[node.index()];
        {
            let frames = table.frames.read();
            if let Some(frame) = frames.get(page.index()) {
                return f(frame);
            }
        }
        self.grow_table(node, page);
        let frames = table.frames.read();
        f(&frames[page.index()])
    }

    /// Clone the `Arc` of node `node`'s frame for `page`, creating it on
    /// first touch.  Used by the access fast path so that no table lock is
    /// held while the protocol engine performs RPCs.
    pub fn frame(&self, node: NodeId, page: PageId) -> Arc<PageFrame> {
        {
            let frames = self.nodes[node.index()].frames.read();
            if let Some(frame) = frames.get(page.index()) {
                return Arc::clone(frame);
            }
        }
        self.grow_table(node, page);
        let frames = self.nodes[node.index()].frames.read();
        Arc::clone(&frames[page.index()])
    }

    /// Visit every currently materialised frame of `node` together with its
    /// page id (used by `invalidateCache` and `updateMainMemory`).
    pub fn for_each_frame(&self, node: NodeId, mut f: impl FnMut(PageId, &PageFrame)) {
        let frames = self.nodes[node.index()].frames.read();
        for (i, frame) in frames.iter().enumerate() {
            f(PageId(i as u64), frame);
        }
    }

    /// Number of frames currently materialised on `node`.
    pub fn frames_on(&self, node: NodeId) -> usize {
        self.nodes[node.index()].len()
    }

    /// Record `holder` as a read-replica of `page`, up to `cap` holders
    /// (the replication policy's `r`).  A new holder starts at the page's
    /// current quorum version — it just fetched the current bytes.  The
    /// page's home never registers as its own replica.
    pub fn register_replica(&self, page: PageId, holder: NodeId, cap: usize) {
        if holder == self.home_of(page) {
            return;
        }
        let mut replicas = self.replicas.write();
        let set = replicas.entry(page.0).or_default();
        if set.holders.iter().any(|(h, _)| *h == holder.0) {
            let version = set.version;
            if let Some(entry) = set.holders.iter_mut().find(|(h, _)| *h == holder.0) {
                entry.1 = version;
            }
            return;
        }
        if set.holders.len() < cap {
            set.holders.push((holder.0, set.version));
        }
    }

    /// Apply one quorum write to `page`: advance its version and bring the
    /// first `quorum - 1` registered holders up to it (the home itself is
    /// the quorum's first member).  Returns how many holders were updated —
    /// the cost the diff-apply handler charges for shipping the update.
    pub fn quorum_update(&self, page: PageId, quorum: usize) -> usize {
        let mut replicas = self.replicas.write();
        let set = replicas.entry(page.0).or_default();
        set.version += 1;
        let version = set.version;
        let members = quorum.saturating_sub(1).min(set.holders.len());
        for entry in set.holders.iter_mut().take(members) {
            entry.1 = version;
        }
        members
    }

    /// The replica set of `page`, if any holder has registered.
    pub fn replica_set(&self, page: PageId) -> Option<ReplicaSet> {
        self.replicas.read().get(&page.0).cloned()
    }

    /// The live replica holder with the newest quorum version (ties go to
    /// the lowest node id), if any.  This is the node recovery elects as
    /// the page's next home.
    pub fn newest_live_replica(&self, page: PageId) -> Option<NodeId> {
        let replicas = self.replicas.read();
        let set = replicas.get(&page.0)?;
        let failed = self.failed.read();
        set.holders
            .iter()
            .filter(|(h, _)| !failed.contains(h))
            .max_by(|(ha, va), (hb, vb)| va.cmp(vb).then(hb.cmp(ha)))
            .map(|(h, _)| NodeId(*h))
    }

    /// Mark `node` failed fail-stop.  Returns `true` the first time —
    /// exactly one caller performs the recovery of the node's pages.
    pub fn mark_failed(&self, node: NodeId) -> bool {
        let mut failed = self.failed.write();
        let fresh = failed.insert(node.0);
        self.num_failed
            .store(failed.len(), std::sync::atomic::Ordering::Release);
        fresh
    }

    /// True if `node` has been marked failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.num_failed.load(std::sync::atomic::Ordering::Acquire) > 0
            && self.failed.read().contains(&node.0)
    }

    /// Number of nodes marked failed so far.
    pub fn failed_nodes(&self) -> usize {
        self.num_failed.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The lowest-id node not marked failed (the deterministic fallback
    /// home when a page has no live replica).
    ///
    /// # Panics
    /// Panics if every node has failed.
    pub fn first_live_node(&self) -> NodeId {
        let failed = self.failed.read();
        (0..self.nodes.len() as u32)
            .find(|n| !failed.contains(n))
            .map(NodeId)
            .expect("at least one live node")
    }

    /// Take the cluster-wide recovery lock: the holder is the one thread
    /// re-homing a dead node's pages.
    pub fn recovery_guard(&self) -> MutexGuard<'_, ()> {
        self.recovery.lock()
    }

    fn grow_table(&self, node: NodeId, page: PageId) {
        let allocated = self.allocator.num_pages();
        assert!(
            page.index() < allocated,
            "page {page:?} accessed before being allocated ({allocated} pages exist)"
        );
        let mut frames = self.nodes[node.index()].frames.write();
        while frames.len() <= page.index() {
            let pid = frames.len();
            // Consult the (possibly migrated) current home, not the
            // allocator's static table: a node materialising its frame after
            // a migration must see the page's present-day home.
            let frame = if self.home_of(PageId(pid as u64)) == node {
                PageFrame::new_home()
            } else {
                PageFrame::new_remote()
            };
            frames.push(Arc::new(frame));
        }
    }
}

impl std::fmt::Debug for DsmStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmStore")
            .field("num_nodes", &self.nodes.len())
            .field("pages_allocated", &self.allocator.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(nodes: usize) -> (Arc<IsoAllocator>, Arc<DsmStore>) {
        let alloc = Arc::new(IsoAllocator::new(nodes));
        let store = DsmStore::new(Arc::clone(&alloc), nodes);
        (alloc, store)
    }

    #[test]
    fn frames_materialise_with_correct_home_flag() {
        let (alloc, store) = store(3);
        let a = alloc.alloc(4, NodeId(1));
        let page = a.page();

        assert!(store.with_frame(NodeId(1), page, |f| f.is_home()));
        assert!(!store.with_frame(NodeId(0), page, |f| f.is_home()));
        assert!(!store.with_frame(NodeId(2), page, |f| f.is_home()));
        assert_eq!(store.home_of(page), NodeId(1));
    }

    #[test]
    fn growth_fills_all_lower_pages() {
        let (alloc, store) = store(2);
        let _ = alloc.alloc(600, NodeId(0)); // spans two fresh pages
        let b = alloc.alloc(600, NodeId(1));
        // Touch only the last page; earlier frames must exist afterwards.
        let last = b.offset(599).page();
        store.with_frame(NodeId(0), last, |_| ());
        assert_eq!(store.frames_on(NodeId(0)), last.index() + 1);
        // Other nodes are independent.
        assert_eq!(store.frames_on(NodeId(1)), 0);
    }

    #[test]
    #[should_panic(expected = "before being allocated")]
    fn touching_unallocated_page_panics() {
        let (_alloc, store) = store(1);
        store.with_frame(NodeId(0), PageId(99), |_| ());
    }

    #[test]
    fn frame_arc_is_shared_with_table() {
        let (alloc, store) = store(2);
        let a = alloc.alloc(4, NodeId(0));
        let frame = store.frame(NodeId(1), a.page());
        frame.install_copy(&crate::page::PageData::zeroed().snapshot_bytes());
        assert!(store.with_frame(NodeId(1), a.page(), |f| f.is_present()));
    }

    #[test]
    fn for_each_frame_visits_every_materialised_frame() {
        let (alloc, store) = store(2);
        let a = alloc.alloc(4, NodeId(0));
        let b = alloc.alloc(4, NodeId(1));
        store.with_frame(NodeId(0), a.page(), |_| ());
        store.with_frame(NodeId(0), b.page(), |_| ());
        let mut seen = Vec::new();
        store.for_each_frame(NodeId(0), |pid, f| seen.push((pid, f.is_home())));
        assert!(seen.len() >= 2);
        assert!(seen.iter().any(|(pid, home)| *pid == a.page() && *home));
        assert!(seen.iter().any(|(pid, home)| *pid == b.page() && !*home));
    }

    #[test]
    fn replica_registration_quorum_updates_and_election() {
        let (alloc, store) = store(4);
        let page = alloc.alloc(4, NodeId(0)).page();
        store.register_replica(page, NodeId(0), 2); // the home never registers
        store.register_replica(page, NodeId(1), 2);
        store.register_replica(page, NodeId(2), 2);
        store.register_replica(page, NodeId(3), 2); // over the r cap: ignored
        assert_eq!(store.replica_set(page).unwrap().holders.len(), 2);

        // One w=2 quorum write: the home plus the first registered holder.
        assert_eq!(store.quorum_update(page, 2), 1);
        assert_eq!(store.newest_live_replica(page), Some(NodeId(1)));

        // Kill the newest holder: the election falls back to the next one.
        assert!(store.mark_failed(NodeId(1)));
        assert!(
            !store.mark_failed(NodeId(1)),
            "second observer is not first"
        );
        assert!(store.is_failed(NodeId(1)));
        assert_eq!(store.failed_nodes(), 1);
        assert_eq!(store.newest_live_replica(page), Some(NodeId(2)));
        assert_eq!(store.first_live_node(), NodeId(0));

        // A re-registered holder is refreshed to the current version.
        assert_eq!(store.quorum_update(page, 3), 2);
        store.register_replica(page, NodeId(2), 2);
        let set = store.replica_set(page).unwrap();
        assert!(set.holders.contains(&(2, set.version)));
    }

    #[test]
    fn grouped_store_keys_directory_by_group_and_tracks_versions() {
        let alloc = Arc::new(IsoAllocator::new(4));
        let topo = Topology::grouped(4, 2).unwrap();
        let store = DsmStore::with_topology(Arc::clone(&alloc), topo);
        let page = alloc.alloc(4, NodeId(0)).page();

        // Nodes 2 and 3 share a group, hence a directory key/tag.
        assert_eq!(store.dir_key(NodeId(2)), 1);
        assert_eq!(store.dir_key(NodeId(3)), 1);
        assert_eq!(store.dir_tag(NodeId(3)), 2);
        // A fetch by node 2 leaves a stride trail node 3 continues.
        assert_eq!(store.swap_last_fetch(NodeId(0), NodeId(2), page), 0);
        assert_eq!(
            store.swap_last_fetch(NodeId(0), NodeId(3), page),
            page.0 + 1
        );

        // Change counters move on diffs/home changes only when grouped.
        assert_eq!(store.page_version(page), 0);
        store.note_page_changed(page);
        store.note_page_changed(page);
        assert_eq!(store.page_version(page), 2);
        store.set_home(page, NodeId(1));
        assert_eq!(store.page_version(page), 3);

        // Degraded-group flags.
        assert!(!store.group_degraded(1));
        store.mark_group_degraded(1);
        assert!(store.group_degraded(1));
        assert!(!store.group_degraded(0));
    }

    #[test]
    fn flat_store_never_tracks_page_versions() {
        let (alloc, store) = store(2);
        let page = alloc.alloc(4, NodeId(0)).page();
        assert!(!store.topology().is_grouped());
        store.note_page_changed(page);
        assert_eq!(store.page_version(page), 0);
        // Flat dir keys coincide with node indices.
        assert_eq!(store.dir_key(NodeId(1)), 1);
        assert_eq!(store.dir_tag(NodeId(1)), 2);
    }

    #[test]
    fn concurrent_growth_is_safe() {
        let (alloc, store) = store(4);
        let addr = alloc.alloc(hyperion_pm2::SLOTS_PER_PAGE * 8, NodeId(0));
        let last = addr
            .offset(hyperion_pm2::SLOTS_PER_PAGE as u64 * 8 - 1)
            .page();
        std::thread::scope(|s| {
            for n in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for p in 0..=last.index() {
                        store.with_frame(NodeId(n), PageId(p as u64), |f| {
                            assert_eq!(f.is_home(), n == 0);
                        });
                    }
                });
            }
        });
        for n in 0..4u32 {
            assert_eq!(store.frames_on(NodeId(n)), last.index() + 1);
        }
    }
}
