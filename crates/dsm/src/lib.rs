//! # hyperion-dsm
//!
//! A Rust re-implementation of the **DSM-PM2** layer used by Hyperion in
//! *"Remote object detection in cluster-based Java"* (Antoniu & Hatcher,
//! JavaPDC/IPDPS 2001): a page-based, home-based distributed shared memory
//! with pluggable access-detection, providing the five primitives of the
//! paper's Table 2 (`loadIntoCache`, `invalidateCache`, `updateMainMemory`,
//! `get`, `put`).
//!
//! Three protocols implement Java consistency:
//!
//! * [`ProtocolKind::JavaIc`] — access detection by explicit in-line
//!   locality checks (§3.2);
//! * [`ProtocolKind::JavaPf`] — access detection by page faults on protected
//!   pages (§3.3);
//! * [`ProtocolKind::JavaAd`] — adaptive per-page selection between the two
//!   techniques with batched contiguous page fetches (extension beyond the
//!   paper; see [`protocol::AdaptiveParams`]).
//!
//! Module map:
//!
//! * [`page`] — page frames, presence/protection bits, dirty-slot bitmaps;
//! * [`table`] — per-node frame tables and the cluster-wide [`DsmStore`];
//! * [`diff`] — wire encoding of page fetches and field-granularity diffs;
//! * [`protocol`] — the [`DsmSystem`] protocol engine and its RPC services.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod diff;
pub mod page;
pub mod protocol;
pub mod table;

pub use hyperion_pm2::TransportBackend;
pub use page::{AdMode, PageData, PageFrame};
pub use protocol::{
    AdaptiveParams, DeferredFlush, DsmSystem, Locality, ProtocolKind, TransportConfig,
};
pub use table::DsmStore;
