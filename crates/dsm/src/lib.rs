//! # hyperion-dsm
//!
//! A Rust re-implementation of the **DSM-PM2** layer used by Hyperion in
//! *"Remote object detection in cluster-based Java"* (Antoniu & Hatcher,
//! JavaPDC/IPDPS 2001): a page-based, home-based distributed shared memory
//! with pluggable access-detection, providing the five primitives of the
//! paper's Table 2 (`loadIntoCache`, `invalidateCache`, `updateMainMemory`,
//! `get`, `put`).
//!
//! Three protocols implement Java consistency:
//!
//! * [`ProtocolKind::JavaIc`] — access detection by explicit in-line
//!   locality checks (§3.2);
//! * [`ProtocolKind::JavaPf`] — access detection by page faults on protected
//!   pages (§3.3);
//! * [`ProtocolKind::JavaAd`] — adaptive per-page selection between the two
//!   techniques with batched contiguous page fetches (extension beyond the
//!   paper; see [`AdaptiveParams`]).
//!
//! Module map:
//!
//! * [`page`] — page frames, presence/protection bits, dirty-slot bitmaps;
//! * [`table`] — per-node frame tables and the cluster-wide [`DsmStore`];
//! * [`diff`] — wire encoding of page fetches and field-granularity diffs;
//! * [`config`] — protocol / transport configuration data;
//! * [`policy`] — the pluggable policy traits ([`policy::DetectionPolicy`],
//!   [`policy::Predictor`], [`policy::MigrationPolicy`],
//!   [`policy::FlushPolicy`], [`policy::ReplicationPolicy`]) and their
//!   default implementations;
//! * [`engine`] — the [`DsmSystem`] protocol engine (with its fetch
//!   mechanics in `fetch` and its RPC services in `services`), which calls
//!   through the policy traits at every decision point;
//! * [`recover`] — the fault plane's DSM side: bounded retry with
//!   exponential backoff on the RPC path and node-failure recovery
//!   (re-electing homes for a dead node's pages from the replication
//!   directory);
//! * `combine` — the two-level home hierarchy's relay layer: under a
//!   grouped [`policy::TopologySpec`] each group's leader coalesces its
//!   members' cross-group page fetches and diff batches into upstream
//!   relay RPCs (inert under the flat default).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod combine;
pub mod config;
pub mod diff;
pub mod engine;
mod fetch;
pub mod page;
pub mod policy;
pub mod recover;
mod services;
pub mod table;

pub use config::{
    AdaptiveParams, DeferredFlush, HomeFlushMark, Locality, ProtocolKind, TransportConfig,
};
pub use engine::DsmSystem;
pub use hyperion_pm2::TransportBackend;
pub use page::{AdMode, PageData, PageFrame};
// `policy` is deliberately not wildcard re-exported at the crate root: the
// deferred-flush *policy* (`policy::DeferredFlush`) would collide with the
// deferred-flush *record* (`DeferredFlush`) above.  Use `policy::...` paths.
pub use policy::{PolicyError, PolicySet, PolicySpec, TopologySpec};
pub use recover::RpcFailure;
pub use table::DsmStore;
