//! The consistency-protocol engine behind `java_ic`, `java_pf` and
//! `java_ad`.
//!
//! All protocols implement the Java Memory Model the same way (home-based
//! caching, invalidate on monitor entry, flush field-granularity diffs on
//! monitor exit — §3.1) and differ *only* in how accesses to remote objects
//! are detected (§3.2, §3.3):
//!
//! * **`java_ic`** — every `get`/`put` performs an explicit in-line locality
//!   check; a miss triggers a page fetch.  No page protection, no faults, no
//!   `mprotect`.
//! * **`java_pf`** — `get`/`put` on a present, unprotected page cost nothing
//!   beyond the raw access.  Pages of remote objects are access-protected,
//!   so the first access after initialisation or after a cache invalidation
//!   takes a (simulated) page fault, fetches the page, and pays an `mprotect`
//!   to open it; monitor-entry invalidation pays an `mprotect` to re-protect
//!   the cached region.
//! * **`java_ad`** — an adaptive extension beyond the paper: every cached
//!   page runs its own state machine between the two techniques above.  A
//!   page tracks how often it is re-accessed after each invalidation and is
//!   flipped — at invalidation time, when its copy is dropped anyway — to
//!   the technique that would have been cheaper, with hysteresis around the
//!   cost-model break-even `n* = ⌈(t_fault + t_mprotect) / t_check⌉` (see
//!   [`hyperion_model::MachineModel::adaptive_break_even`]).  `java_ad` also
//!   batches page fetches: one RPC may carry a run of contiguous same-home
//!   pages, either because an in-flight bulk access is certain to touch them
//!   or because their epoch history shows stable re-access.
//!
//! The engine exposes exactly the primitives of the paper's Table 2:
//! [`DsmSystem::load_into_cache`], [`DsmSystem::invalidate_cache`],
//! [`DsmSystem::update_main_memory`], [`DsmSystem::get`] and
//! [`DsmSystem::put`].
//!
//! Every protocol-variable decision is delegated to the [`crate::policy`]
//! layer: the engine holds a [`PolicySet`] and calls through its traits at
//! the decision points (access detection, epoch close, hint conversion,
//! flush placement), while all mechanism — RPC framing, ticket bookkeeping,
//! lock order, batching loops — lives here and in `fetch.rs` / the RPC
//! services.

use std::sync::Arc;

use hyperion_model::{NodeStats, ThreadClock};
use hyperion_pm2::{Cluster, GlobalAddr, Node, NodeId, PageId, ServiceId, SLOTS_PER_PAGE};

use crate::config::{AdaptiveParams, DeferredFlush, Locality, ProtocolKind, TransportConfig};
use crate::diff::{decode_migration_grant, encode_diff, encode_diff_batch, DiffEntry, HintRun};
use crate::page::PageFrame;
use crate::policy::{resolve_marks, AccessAction, PolicySet, PolicySpec};
use crate::services::{DiffApplyService, PageFetchService};
use crate::table::DsmStore;

/// The DSM system of one cluster run: the protocol engine plus its services.
pub struct DsmSystem {
    pub(crate) cluster: Arc<Cluster>,
    pub(crate) store: Arc<DsmStore>,
    pub(crate) kind: ProtocolKind,
    /// The `(hi, lo)` marks the adaptive parameters resolve to on this
    /// cluster's machine — reported by [`DsmSystem::adaptive_thresholds`]
    /// for every protocol (tools and sweeps query them regardless of kind).
    pub(crate) configured_marks: (u64, u64),
    pub(crate) policies: PolicySet,
    pub(crate) transport: TransportConfig,
    pub(crate) page_fetch: ServiceId,
    pub(crate) diff_apply: ServiceId,
    pub(crate) group_relay: ServiceId,
}

impl DsmSystem {
    /// Build a DSM system over an existing cluster and store, registering the
    /// page-fetch and diff-apply services with the communication subsystem.
    /// `java_ad` runs with the default [`AdaptiveParams`]; use
    /// [`DsmSystem::with_params`] to tune it.
    pub fn new(cluster: Arc<Cluster>, store: Arc<DsmStore>, kind: ProtocolKind) -> Arc<Self> {
        Self::with_params(cluster, store, kind, &AdaptiveParams::default())
    }

    /// Build a DSM system with explicit adaptive-protocol parameters (they
    /// are resolved against the cluster's machine model and ignored by
    /// `java_ic` / `java_pf`) and the default transport.
    pub fn with_params(
        cluster: Arc<Cluster>,
        store: Arc<DsmStore>,
        kind: ProtocolKind,
        params: &AdaptiveParams,
    ) -> Arc<Self> {
        Self::with_config(cluster, store, kind, params, &TransportConfig::default())
    }

    /// Build a DSM system with explicit adaptive-protocol parameters and an
    /// explicit transport configuration (the legacy flag surface: the flags
    /// are mapped onto default policy objects via [`PolicySpec::from_config`]).
    pub fn with_config(
        cluster: Arc<Cluster>,
        store: Arc<DsmStore>,
        kind: ProtocolKind,
        params: &AdaptiveParams,
        transport: &TransportConfig,
    ) -> Arc<Self> {
        let policies = PolicySpec::from_config(kind, params, transport)
            .build(cluster.machine(), cluster.num_nodes());
        Self::with_policies(cluster, store, kind, params, transport, policies)
    }

    /// Build a DSM system from explicit policy objects — the typed surface
    /// behind [`DsmSystem::with_config`].  `params` is still taken for the
    /// configured-threshold accessors (sweeps query them regardless of the
    /// detection policy in use); `transport` supplies the engine-level
    /// mechanism switches (fetch overlap, backend) that are not policies.
    pub fn with_policies(
        cluster: Arc<Cluster>,
        store: Arc<DsmStore>,
        kind: ProtocolKind,
        params: &AdaptiveParams,
        transport: &TransportConfig,
        policies: PolicySet,
    ) -> Arc<Self> {
        let cpu = cluster.machine().cpu.clone();
        let dsm = cluster.machine().dsm.clone();
        let configured_marks = resolve_marks(params, cluster.machine().adaptive_break_even());
        let page_fetch = cluster.register_service(Arc::new(PageFetchService {
            store: Arc::clone(&store),
            cpu: cpu.clone(),
            dsm: dsm.clone(),
            predictor: Arc::clone(&policies.predictor),
            replication: Arc::clone(&policies.replication),
        }));
        let diff_apply = cluster.register_service(Arc::new(DiffApplyService {
            store: Arc::clone(&store),
            cpu,
            dsm,
            migration: Arc::clone(&policies.migration),
            replication: Arc::clone(&policies.replication),
        }));
        // Registered unconditionally so the service table is identical under
        // every topology; under the flat default `relay_route` never selects
        // it, keeping the 4-node behaviour byte-identical.
        let group_relay = cluster.register_service(Arc::new(
            crate::combine::GroupRelayService::new(Arc::clone(&store), &cluster, &policies),
        ));
        Arc::new(DsmSystem {
            cluster,
            store,
            kind,
            configured_marks,
            policies,
            transport: transport.clone(),
            page_fetch,
            diff_apply,
            group_relay,
        })
    }

    /// The protocol this system runs.
    #[inline]
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The policy objects this engine consults.
    #[inline]
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    /// The resolved `java_ad` switching thresholds `(hi, lo)` in absolute
    /// accesses-per-epoch (for tests, tools and the ablation benchmarks).
    /// These are the *configured* marks; with online tuning a node's current
    /// marks may differ — see [`DsmSystem::adaptive_thresholds_on`].
    pub fn adaptive_thresholds(&self) -> (u64, u64) {
        self.configured_marks
    }

    /// The `hi`/`lo` marks node `node` currently switches on (equal to
    /// [`DsmSystem::adaptive_thresholds`] unless online tuning has moved
    /// them).
    pub fn adaptive_thresholds_on(&self, node: NodeId) -> (u64, u64) {
        self.policies
            .detection
            .thresholds_on(node)
            .unwrap_or(self.configured_marks)
    }

    /// The transport configuration of this system.
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// The cluster this system runs on.
    #[inline]
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The shared page store.
    #[inline]
    pub fn store(&self) -> &Arc<DsmStore> {
        &self.store
    }

    /// Retrieve a field (an 8-byte slot): the `get` primitive of Table 2.
    ///
    /// Charges the protocol-dependent access-detection cost to `clock` and
    /// fetches the containing page if it is not available locally.
    pub fn get(&self, node: NodeId, clock: &mut ThreadClock, addr: GlobalAddr) -> u64 {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.field_reads);
        let page = addr.page();
        let frame = self.store.frame(node, page);
        let access = self.ensure_access(node, node_ref, clock, page, &frame, 1);
        self.unwrap_rpc(access);
        frame.load_slot(addr.slot())
    }

    /// Modify a field: the `put` primitive of Table 2.
    ///
    /// The modification is recorded with field granularity (dirty-slot
    /// bitmap) so `updateMainMemory` can flush exactly the modified fields.
    pub fn put(&self, node: NodeId, clock: &mut ThreadClock, addr: GlobalAddr, value: u64) {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.field_writes);
        let page = addr.page();
        let frame = self.store.frame(node, page);
        let access = self.ensure_access(node, node_ref, clock, page, &frame, 1);
        self.unwrap_rpc(access);
        frame.store_slot(addr.slot(), value);
    }

    /// Classify the current locality of `page` as seen from `node`.
    ///
    /// This is a pure query: it charges nothing and touches no protocol
    /// state.  Callers that want the paper's in-line check semantics (one
    /// check, one check cost) should go through the runtime layer, which
    /// charges the protocol-dependent cost on top.
    pub fn locality(&self, node: NodeId, page: PageId) -> Locality {
        self.store.with_frame(node, page, |f| {
            if f.is_home() {
                Locality::Local
            } else if f.is_present() && !f.is_protected() {
                Locality::CachedRemote
            } else {
                Locality::Remote
            }
        })
    }

    /// Bulk read of `out.len()` consecutive slots starting at `addr`: the
    /// per-*page* counterpart of [`DsmSystem::get`].
    ///
    /// Access detection is performed once per touched page instead of once
    /// per element: under `java_ic` a slice spanning `p` pages costs `p`
    /// in-line checks (against `out.len()` for the element-wise loop); under
    /// `java_pf` the behaviour is unchanged (faults were already per-page).
    /// Consistency is identical to the element-wise loop — both read the
    /// node's current copies and are only as fresh as the last acquire.
    pub fn read_slice(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
        addr: GlobalAddr,
        out: &mut [u64],
    ) {
        if out.is_empty() {
            return;
        }
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.bulk_reads);
        NodeStats::bump_by(&node_ref.stats.field_reads, out.len() as u64);
        let mut done = 0usize;
        while done < out.len() {
            let a = addr.offset(done as u64);
            let slot = a.slot();
            let run = (SLOTS_PER_PAGE - slot).min(out.len() - done);
            let frame = self.store.frame(node, a.page());
            // Pages this slice is still certain to touch, counting the
            // current one — the batching hint for `java_ad` fetches.
            let bulk_pages = 1 + (out.len() - done - run).div_ceil(SLOTS_PER_PAGE);
            let access = self.ensure_access(node, node_ref, clock, a.page(), &frame, bulk_pages);
            self.unwrap_rpc(access);
            for k in 0..run {
                out[done + k] = frame.load_slot(slot + k);
            }
            done += run;
        }
    }

    /// Bulk write of `values` to consecutive slots starting at `addr`: the
    /// per-*page* counterpart of [`DsmSystem::put`].
    ///
    /// Like [`DsmSystem::read_slice`], detection is paid once per touched
    /// page.  Writes are recorded in the ordinary dirty-slot bitmaps, so the
    /// next `updateMainMemory` flushes exactly the modified fields — bulk
    /// writes lose nothing of the field-granularity diffing.
    pub fn write_slice(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
        addr: GlobalAddr,
        values: &[u64],
    ) {
        if values.is_empty() {
            return;
        }
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.bulk_writes);
        NodeStats::bump_by(&node_ref.stats.field_writes, values.len() as u64);
        let mut done = 0usize;
        while done < values.len() {
            let a = addr.offset(done as u64);
            let slot = a.slot();
            let run = (SLOTS_PER_PAGE - slot).min(values.len() - done);
            let frame = self.store.frame(node, a.page());
            let bulk_pages = 1 + (values.len() - done - run).div_ceil(SLOTS_PER_PAGE);
            let access = self.ensure_access(node, node_ref, clock, a.page(), &frame, bulk_pages);
            self.unwrap_rpc(access);
            for k in 0..run {
                frame.store_slot(slot + k, values[done + k]);
            }
            done += run;
        }
    }

    /// Explicitly load a page into the local cache (the `loadIntoCache`
    /// primitive of Table 2).  A no-op for home pages and pages already
    /// cached.
    pub fn load_into_cache(&self, node: NodeId, clock: &mut ThreadClock, page: PageId) {
        let node_ref = self.cluster.node(node);
        let frame = self.store.frame(node, page);
        if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
            return;
        }
        // An explicit prefetch is not an access: it leaves the page's epoch
        // statistics alone.  The mprotect that opens the page is only due if
        // the page was protection-detected.
        let unprotect = self.policies.detection.unprotect_on_install(&frame);
        let fetched = if self.policies.detection.fetch_batching().is_some() {
            self.fetch_page_adaptive(node, node_ref, clock, page, &frame, unprotect, 1, false)
        } else {
            self.fetch_page(node, node_ref, clock, page, &frame, unprotect, false)
        };
        self.unwrap_rpc(fetched);
    }

    /// Prefetch every absent page of the `pages` consecutive pages starting
    /// at `first`: the span form of [`DsmSystem::load_into_cache`].
    ///
    /// The whole span is *certain* to be touched (the caller said so), so
    /// under `java_ad` the remaining span rides along in batched fetches on
    /// certainty alone — history speculation is suppressed, because piling
    /// speculative riders onto an explicit prefetch would compound two
    /// guesses and inflate page traffic the program never asked for.
    pub fn prefetch_span(&self, node: NodeId, clock: &mut ThreadClock, first: PageId, pages: u64) {
        let node_ref = self.cluster.node(node);
        for k in 0..pages {
            let page = PageId(first.0 + k);
            let frame = self.store.frame(node, page);
            if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
                continue;
            }
            let unprotect = self.policies.detection.unprotect_on_install(&frame);
            let fetched = if self.policies.detection.fetch_batching().is_some() {
                self.fetch_page_adaptive_inner(
                    node,
                    node_ref,
                    clock,
                    page,
                    &frame,
                    unprotect,
                    (pages - k) as usize,
                    false,
                    false,
                )
            } else {
                self.fetch_page(node, node_ref, clock, page, &frame, unprotect, false)
            };
            self.unwrap_rpc(fetched);
        }
    }

    /// Invalidate all cached (non-home) pages on `node`: the
    /// `invalidateCache` primitive of Table 2, executed on monitor entry.
    ///
    /// Pages holding unflushed modifications are flushed first so that no
    /// update can be lost by an acquire that precedes the matching release.
    /// Under `java_pf` the cached region is re-protected, which costs one
    /// `mprotect` call (§3.3).
    pub fn invalidate_cache(&self, node: NodeId, clock: &mut ThreadClock) {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.cache_invalidations);

        let detection = &self.policies.detection;
        let mut cached: Vec<(PageId, Arc<PageFrame>)> = Vec::new();
        let mut switches = 0u64;
        let mut wasted = 0u64;
        self.store.for_each_frame(node, |page, frame| {
            if frame.is_home() {
                return;
            }
            let outcome = detection.on_epoch_close(node, frame);
            if outcome.switched {
                switches += 1;
            }
            if outcome.wasted_prefetch {
                wasted += 1;
            }
            if frame.is_present() {
                cached.push((page, self.store.frame(node, page)));
            }
        });

        let machine = self.cluster.machine();
        if switches > 0 {
            NodeStats::bump_by(&node_ref.stats.protocol_switches, switches);
            clock.advance(machine.protocol_switch().times(switches));
        }
        if wasted > 0 {
            NodeStats::bump_by(&node_ref.stats.pages_prefetch_wasted, wasted);
        }
        detection.after_invalidate(node, &node_ref.stats);
        if cached.is_empty() {
            return;
        }

        // Flush any pending modifications before dropping the copies
        // (batched like `updateMainMemory`'s flush).
        let dirty: Vec<(PageId, Arc<PageFrame>)> = cached
            .iter()
            .filter(|(_, frame)| frame.has_dirty_slots())
            .map(|(page, frame)| (*page, Arc::clone(frame)))
            .collect();
        let flushed = self.flush_frames(node, node_ref, clock, &dirty);
        self.unwrap_rpc(flushed);
        // A migration grant may have promoted one of these frames to home
        // mid-invalidation; re-filter so the new main-memory copy survives.
        cached.retain(|(_, frame)| !frame.is_home());
        if cached.is_empty() {
            return;
        }

        let mut reprotected = false;
        let mut hint_waste = 0u64;
        let mut abandoned: Vec<PageId> = Vec::new();
        for (page, frame) in &cached {
            let reprotect = detection.reprotect_on_invalidate(frame);
            reprotected |= reprotect;
            // A hinted ticket still pending here means the predicted demand
            // miss never came: the hint was wasted.  The counter feeds the
            // requester-side throttle in `issue_hint_fetches`, and the page
            // is remembered so the ticket can be re-armed below.
            if frame.inflight_is_hinted() {
                hint_waste += 1;
                abandoned.push(*page);
            }
            frame.invalidate(reprotect);
        }
        if hint_waste > 0 {
            NodeStats::bump_by(&node_ref.stats.hinted_fetches_wasted, hint_waste);
        }

        let n = cached.len() as u64;
        NodeStats::bump_by(&node_ref.stats.pages_invalidated, n);
        clock.advance(
            machine
                .cpu
                .cycles(machine.dsm.invalidate_cycles_per_page * n as f64),
        );
        if reprotected {
            // One mprotect call covers the (iso-address, hence contiguous-ish)
            // cached region that is being re-protected.
            NodeStats::bump(&node_ref.stats.mprotect_calls);
            clock.advance(machine.dsm.mprotect_call);
        }

        // Re-arm abandoned hint tickets: the directory predicted these pages
        // would be demanded and the node *was* holding overlapped fetches for
        // them, so the next epoch very likely misses on them again.  Re-issue
        // the split transactions now, at the acquire, so those misses complete
        // in-flight RPCs.  The accuracy throttle inside `issue_hint_fetches`
        // sees the waste recorded above and suppresses re-issue on nodes
        // whose hints are not earning their keep.
        if !abandoned.is_empty()
            && self.policies.predictor.converts_hints()
            && self.transport.overlapped_fetches
        {
            abandoned.sort_unstable_by_key(|p| p.0);
            abandoned.dedup();
            let mut runs: Vec<HintRun> = Vec::new();
            for page in abandoned {
                match runs.last_mut() {
                    Some((first, len)) if first.0 + *len as u64 == page.0 && *len < u16::MAX => {
                        *len += 1;
                    }
                    _ => runs.push((page, 1)),
                }
            }
            let reissued = self.issue_hint_fetches(node, node_ref, clock, &runs);
            if reissued > 0 {
                NodeStats::bump_by(&node_ref.stats.hinted_fetches_reissued, reissued);
            }
        }
    }

    /// Flush all locally recorded modifications to the corresponding home
    /// nodes: the `updateMainMemory` primitive of Table 2, executed on
    /// monitor exit.
    pub fn update_main_memory(&self, node: NodeId, clock: &mut ThreadClock) {
        let node_ref = self.cluster.node(node);
        let dirty = self.collect_dirty(node);
        let flushed = self.flush_frames(node, node_ref, clock, &dirty);
        self.unwrap_rpc(flushed);
    }

    /// All non-home frames of `node` holding unflushed modifications, in
    /// page-id order (the shape `flush_frames` batches over).
    fn collect_dirty(&self, node: NodeId) -> Vec<(PageId, Arc<PageFrame>)> {
        let mut dirty: Vec<(PageId, Arc<PageFrame>)> = Vec::new();
        self.store.for_each_frame(node, |page, frame| {
            if !frame.is_home() && frame.has_dirty_slots() {
                dirty.push((page, self.store.frame(node, page)));
            }
        });
        dirty
    }

    /// Deferred-release form of [`DsmSystem::update_main_memory`]: the diff
    /// batches are issued as split transactions, the caller is charged only
    /// the issue path, and the returned [`DeferredFlush`] names the virtual
    /// instant the last flush RPC completes.  The caller (the monitor layer)
    /// must make the *next acquire of the same monitor* merge that instant —
    /// that is exactly the happens-before edge the JMM requires of a
    /// release, so deferring to the hand-off is semantics-preserving.
    ///
    /// With a non-deferring [`crate::policy::FlushPolicy`] (or nothing
    /// dirty) this falls back to the blocking flush and returns `None`.
    pub fn update_main_memory_deferred(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
    ) -> Option<DeferredFlush> {
        if !self.policies.flush.defers_release() {
            self.update_main_memory(node, clock);
            return None;
        }
        let node_ref = self.cluster.node(node);
        let dirty = self.collect_dirty(node);
        let flushed = self.flush_frames_inner(node, node_ref, clock, &dirty, true);
        self.unwrap_rpc(flushed)
    }

    /// True if `node` currently holds an accessible copy of `page`.
    pub fn is_cached(&self, node: NodeId, page: PageId) -> bool {
        self.store.with_frame(node, page, |f| {
            f.is_home() || (f.is_present() && !f.is_protected())
        })
    }

    /// Number of non-home pages currently cached (present) on `node`.
    pub fn pages_cached_on(&self, node: NodeId) -> usize {
        let mut n = 0;
        self.store.for_each_frame(node, |_, f| {
            if !f.is_home() && f.is_present() {
                n += 1;
            }
        });
        n
    }

    // ----- internal helpers ------------------------------------------------

    /// Apply the protocol's access-detection policy for one access.
    ///
    /// `bulk_pages` is the number of consecutive pages (including this one)
    /// the caller is certain to touch — 1 for scalar `get`/`put`, the
    /// remaining page span for bulk slice transfers.  Only batching
    /// detection policies consult it, to size batched fetches.
    pub(crate) fn ensure_access(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        bulk_pages: usize,
    ) -> Result<(), crate::recover::RpcFailure> {
        // First real use of an overlapped fetch completes the transaction:
        // merge the completion timestamp (the residual latency) before the
        // access proceeds.
        self.complete_inflight(node_ref, clock, frame);
        match self
            .policies
            .detection
            .on_access(&node_ref.stats, clock, frame)
        {
            AccessAction::Granted => Ok(()),
            AccessAction::Fetch { unprotect } => {
                if self.policies.detection.fetch_batching().is_some() {
                    self.fetch_page_adaptive(
                        node, node_ref, clock, page, frame, unprotect, bulk_pages, true,
                    )
                } else {
                    self.fetch_page(node, node_ref, clock, page, frame, unprotect, true)
                }
            }
        }
    }

    /// Flush the dirty slots of `dirty` (page-id ordered) to their home
    /// nodes, coalescing runs of contiguous same-home pages into one diff
    /// RPC (up to [`crate::policy::FlushPolicy::max_batch_pages`]) exactly
    /// like batched page fetches coalesce the opposite direction.
    pub(crate) fn flush_frames(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        dirty: &[(PageId, Arc<PageFrame>)],
    ) -> Result<(), crate::recover::RpcFailure> {
        self.flush_frames_inner(node, node_ref, clock, dirty, false)
            .map(|_| ())
    }

    /// [`DsmSystem::flush_frames`] with an explicit completion mode: with
    /// `deferred` set, each diff RPC is issued as a split transaction (only
    /// the issue path is charged to `clock`) and the per-home completion
    /// watermarks are returned as a [`DeferredFlush`]; blocking mode merges
    /// each completion on the spot and returns `None`.
    fn flush_frames_inner(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        dirty: &[(PageId, Arc<PageFrame>)],
        deferred: bool,
    ) -> Result<Option<DeferredFlush>, crate::recover::RpcFailure> {
        let machine = self.cluster.machine();
        let max_batch = self.policies.flush.max_batch_pages().max(1);
        let mut marks: Vec<crate::config::HomeFlushMark> = Vec::new();
        let mut i = 0usize;
        while i < dirty.len() {
            let (first, _) = dirty[i];
            let home = self.store.home_of(first);
            let mut j = i + 1;
            while j < dirty.len()
                && j - i < max_batch
                && dirty[j].0 .0 == first.0 + (j - i) as u64
                && self.store.home_of(dirty[j].0) == home
            {
                j += 1;
            }
            let per_page: Vec<Vec<DiffEntry>> =
                dirty[i..j].iter().map(|(_, f)| f.take_dirty()).collect();
            let slots: usize = per_page.iter().map(Vec::len).sum();
            if slots == 0 {
                // Every page in the run was flushed by someone else already.
                i = j;
                continue;
            }
            let pages = per_page.len();
            NodeStats::bump(&node_ref.stats.diff_messages);
            NodeStats::bump_by(&node_ref.stats.diff_slots_flushed, slots as u64);
            clock.advance(
                machine
                    .cpu
                    .cycles(machine.dsm.diff_record_cycles_per_slot * slots as f64),
            );
            let payload = if pages == 1 {
                encode_diff(first, &per_page[0])
            } else {
                NodeStats::bump(&node_ref.stats.batched_flushes);
                clock.advance(machine.batch_flush_overhead((pages - 1) as u64));
                encode_diff_batch(first, &per_page)
            };
            NodeStats::bump_by(&node_ref.stats.diff_bytes, payload.len() as u64);
            // Anchor re-routing on the first page of the run: the diff-apply
            // handler resolves each page's home itself, so after a recovery
            // the identical payload is valid against the re-elected home.
            let (reply, completion) =
                self.rpc_to_home(clock, node, node_ref, first, self.diff_apply, &payload)?;
            if deferred {
                // Hand the transaction to the deferred queue: the caller
                // stores the completion watermark on the releasing monitor
                // and the next acquire of that monitor merges it.  Marks
                // are kept per home so one slow home's completion does not
                // park every other home's flush behind it.
                NodeStats::bump(&node_ref.stats.deferred_flushes);
                let issue = clock.now();
                match marks.iter_mut().find(|m| m.home == home) {
                    Some(m) => {
                        m.issue = m.issue.max(issue);
                        m.completion = m.completion.max(completion);
                    }
                    None => marks.push(crate::config::HomeFlushMark {
                        home,
                        issue,
                        completion,
                    }),
                }
            } else {
                clock.merge(completion);
            }
            if decode_migration_grant(&reply).is_some() {
                // The home handler promoted this node's frame already; the
                // grant reply is the accounting record of the hand-over.
                NodeStats::bump(&node_ref.stats.pages_migrated);
            }
            i = j;
        }
        if marks.is_empty() {
            return Ok(None);
        }
        let completion = marks
            .iter()
            .map(|m| m.completion)
            .max()
            .expect("non-empty marks");
        Ok(Some(DeferredFlush {
            issue: clock.now(),
            completion,
            homes: marks,
        }))
    }
}

impl std::fmt::Debug for DsmSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmSystem")
            .field("protocol", &self.kind.name())
            .field("nodes", &self.cluster.num_nodes())
            .field("pages", &self.store.allocator().num_pages())
            .finish()
    }
}
