//! The consistency-protocol engine: `java_ic` and `java_pf`.
//!
//! Both protocols implement the Java Memory Model the same way (home-based
//! caching, invalidate on monitor entry, flush field-granularity diffs on
//! monitor exit — §3.1) and differ *only* in how accesses to remote objects
//! are detected (§3.2, §3.3):
//!
//! * **`java_ic`** — every `get`/`put` performs an explicit in-line locality
//!   check; a miss triggers a page fetch.  No page protection, no faults, no
//!   `mprotect`.
//! * **`java_pf`** — `get`/`put` on a present, unprotected page cost nothing
//!   beyond the raw access.  Pages of remote objects are access-protected,
//!   so the first access after initialisation or after a cache invalidation
//!   takes a (simulated) page fault, fetches the page, and pays an `mprotect`
//!   to open it; monitor-entry invalidation pays an `mprotect` to re-protect
//!   the cached region.
//!
//! The engine exposes exactly the primitives of the paper's Table 2:
//! [`DsmSystem::load_into_cache`], [`DsmSystem::invalidate_cache`],
//! [`DsmSystem::update_main_memory`], [`DsmSystem::get`] and
//! [`DsmSystem::put`].

use std::sync::Arc;

use hyperion_model::{CpuModel, DsmCostModel, NodeStats, ThreadClock};
use hyperion_pm2::{
    Cluster, GlobalAddr, Node, NodeId, PageId, RpcHandler, RpcReply, ServiceId, SLOTS_PER_PAGE,
};

use crate::diff::{decode_diff, decode_page_request, encode_diff, encode_page_request};
use crate::page::PageFrame;
use crate::table::DsmStore;

/// Which access-detection technique a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Explicit in-line locality checks on every access (§3.2).
    JavaIc,
    /// Page-fault-based detection with page protection (§3.3).
    JavaPf,
}

impl ProtocolKind {
    /// The name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::JavaIc => "java_ic",
            ProtocolKind::JavaPf => "java_pf",
        }
    }

    /// Both protocols, in the order the paper lists them.
    pub fn all() -> [ProtocolKind; 2] {
        [ProtocolKind::JavaIc, ProtocolKind::JavaPf]
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where the page behind an address currently lives, relative to an
/// observing node.
///
/// This is the distinction the paper's two protocols *detect* on every
/// access; promoting it into the API lets programs ask once and then take a
/// fast path (bulk transfers, pinned views) that elides the per-access
/// detection entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Locality {
    /// The observing node is the page's home: every access is local.
    Local,
    /// A remote page with a valid, unprotected cached copy on the node:
    /// accesses are served locally until the next cache invalidation.
    CachedRemote,
    /// A remote page with no usable local copy: the next access pays the
    /// full detection-plus-fetch path.
    Remote,
}

impl Locality {
    /// True if an access right now would be served without DSM traffic
    /// (home page or valid cached copy).
    pub fn is_resident(self) -> bool {
        !matches!(self, Locality::Remote)
    }

    /// Short lower-case name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Locality::Local => "local",
            Locality::CachedRemote => "cached-remote",
            Locality::Remote => "remote",
        }
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// RPC service: ship a copy of a home page to a requesting node.
struct PageFetchService {
    store: Arc<DsmStore>,
    cpu: CpuModel,
    dsm: DsmCostModel,
}

impl RpcHandler for PageFetchService {
    fn handle(&self, target: &Node, _caller: NodeId, payload: &[u8]) -> RpcReply {
        let page = decode_page_request(payload);
        debug_assert_eq!(
            self.store.home_of(page),
            target.id(),
            "page fetch sent to a node that is not the page's home"
        );
        let bytes = self
            .store
            .with_frame(target.id(), page, |f| f.data().snapshot_bytes());
        let service = self
            .cpu
            .cycles(self.dsm.page_copy_cycles_per_slot * SLOTS_PER_PAGE as f64);
        RpcReply::with_data(bytes, service)
    }

    fn name(&self) -> &'static str {
        "dsm.page_fetch"
    }
}

/// RPC service: apply a field-granularity diff to a home page.
struct DiffApplyService {
    store: Arc<DsmStore>,
    cpu: CpuModel,
    dsm: DsmCostModel,
}

impl RpcHandler for DiffApplyService {
    fn handle(&self, target: &Node, _caller: NodeId, payload: &[u8]) -> RpcReply {
        let (page, entries) = decode_diff(payload);
        debug_assert_eq!(
            self.store.home_of(page),
            target.id(),
            "diff sent to a node that is not the page's home"
        );
        self.store.with_frame(target.id(), page, |f| {
            debug_assert!(f.is_home());
            for &(slot, value) in &entries {
                f.store_slot(slot as usize, value);
            }
        });
        let service = self
            .cpu
            .cycles(self.dsm.diff_apply_cycles_per_slot * entries.len() as f64);
        RpcReply::ack(service)
    }

    fn name(&self) -> &'static str {
        "dsm.diff_apply"
    }
}

/// The DSM system of one cluster run: the protocol engine plus its services.
pub struct DsmSystem {
    cluster: Arc<Cluster>,
    store: Arc<DsmStore>,
    kind: ProtocolKind,
    page_fetch: ServiceId,
    diff_apply: ServiceId,
}

impl DsmSystem {
    /// Build a DSM system over an existing cluster and store, registering the
    /// page-fetch and diff-apply services with the communication subsystem.
    pub fn new(cluster: Arc<Cluster>, store: Arc<DsmStore>, kind: ProtocolKind) -> Arc<Self> {
        let cpu = cluster.machine().cpu.clone();
        let dsm = cluster.machine().dsm.clone();
        let page_fetch = cluster.register_service(Arc::new(PageFetchService {
            store: Arc::clone(&store),
            cpu: cpu.clone(),
            dsm: dsm.clone(),
        }));
        let diff_apply = cluster.register_service(Arc::new(DiffApplyService {
            store: Arc::clone(&store),
            cpu,
            dsm,
        }));
        Arc::new(DsmSystem {
            cluster,
            store,
            kind,
            page_fetch,
            diff_apply,
        })
    }

    /// The protocol this system runs.
    #[inline]
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The cluster this system runs on.
    #[inline]
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The shared page store.
    #[inline]
    pub fn store(&self) -> &Arc<DsmStore> {
        &self.store
    }

    /// Retrieve a field (an 8-byte slot): the `get` primitive of Table 2.
    ///
    /// Charges the protocol-dependent access-detection cost to `clock` and
    /// fetches the containing page if it is not available locally.
    pub fn get(&self, node: NodeId, clock: &mut ThreadClock, addr: GlobalAddr) -> u64 {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.field_reads);
        let page = addr.page();
        let frame = self.store.frame(node, page);
        self.ensure_access(node, node_ref, clock, page, &frame);
        frame.load_slot(addr.slot())
    }

    /// Modify a field: the `put` primitive of Table 2.
    ///
    /// The modification is recorded with field granularity (dirty-slot
    /// bitmap) so `updateMainMemory` can flush exactly the modified fields.
    pub fn put(&self, node: NodeId, clock: &mut ThreadClock, addr: GlobalAddr, value: u64) {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.field_writes);
        let page = addr.page();
        let frame = self.store.frame(node, page);
        self.ensure_access(node, node_ref, clock, page, &frame);
        frame.store_slot(addr.slot(), value);
    }

    /// Classify the current locality of `page` as seen from `node`.
    ///
    /// This is a pure query: it charges nothing and touches no protocol
    /// state.  Callers that want the paper's in-line check semantics (one
    /// check, one check cost) should go through the runtime layer, which
    /// charges the protocol-dependent cost on top.
    pub fn locality(&self, node: NodeId, page: PageId) -> Locality {
        self.store.with_frame(node, page, |f| {
            if f.is_home() {
                Locality::Local
            } else if f.is_present() && !f.is_protected() {
                Locality::CachedRemote
            } else {
                Locality::Remote
            }
        })
    }

    /// Bulk read of `out.len()` consecutive slots starting at `addr`: the
    /// per-*page* counterpart of [`DsmSystem::get`].
    ///
    /// Access detection is performed once per touched page instead of once
    /// per element: under `java_ic` a slice spanning `p` pages costs `p`
    /// in-line checks (against `out.len()` for the element-wise loop); under
    /// `java_pf` the behaviour is unchanged (faults were already per-page).
    /// Consistency is identical to the element-wise loop — both read the
    /// node's current copies and are only as fresh as the last acquire.
    pub fn read_slice(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
        addr: GlobalAddr,
        out: &mut [u64],
    ) {
        if out.is_empty() {
            return;
        }
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.bulk_reads);
        NodeStats::bump_by(&node_ref.stats.field_reads, out.len() as u64);
        let mut done = 0usize;
        while done < out.len() {
            let a = addr.offset(done as u64);
            let slot = a.slot();
            let run = (SLOTS_PER_PAGE - slot).min(out.len() - done);
            let frame = self.store.frame(node, a.page());
            self.ensure_access(node, node_ref, clock, a.page(), &frame);
            for k in 0..run {
                out[done + k] = frame.load_slot(slot + k);
            }
            done += run;
        }
    }

    /// Bulk write of `values` to consecutive slots starting at `addr`: the
    /// per-*page* counterpart of [`DsmSystem::put`].
    ///
    /// Like [`DsmSystem::read_slice`], detection is paid once per touched
    /// page.  Writes are recorded in the ordinary dirty-slot bitmaps, so the
    /// next `updateMainMemory` flushes exactly the modified fields — bulk
    /// writes lose nothing of the field-granularity diffing.
    pub fn write_slice(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
        addr: GlobalAddr,
        values: &[u64],
    ) {
        if values.is_empty() {
            return;
        }
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.bulk_writes);
        NodeStats::bump_by(&node_ref.stats.field_writes, values.len() as u64);
        let mut done = 0usize;
        while done < values.len() {
            let a = addr.offset(done as u64);
            let slot = a.slot();
            let run = (SLOTS_PER_PAGE - slot).min(values.len() - done);
            let frame = self.store.frame(node, a.page());
            self.ensure_access(node, node_ref, clock, a.page(), &frame);
            for k in 0..run {
                frame.store_slot(slot + k, values[done + k]);
            }
            done += run;
        }
    }

    /// Explicitly load a page into the local cache (the `loadIntoCache`
    /// primitive of Table 2).  A no-op for home pages and pages already
    /// cached.
    pub fn load_into_cache(&self, node: NodeId, clock: &mut ThreadClock, page: PageId) {
        let node_ref = self.cluster.node(node);
        let frame = self.store.frame(node, page);
        if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
            return;
        }
        self.fetch_page(
            node,
            node_ref,
            clock,
            page,
            &frame,
            self.kind == ProtocolKind::JavaPf,
        );
    }

    /// Invalidate all cached (non-home) pages on `node`: the
    /// `invalidateCache` primitive of Table 2, executed on monitor entry.
    ///
    /// Pages holding unflushed modifications are flushed first so that no
    /// update can be lost by an acquire that precedes the matching release.
    /// Under `java_pf` the cached region is re-protected, which costs one
    /// `mprotect` call (§3.3).
    pub fn invalidate_cache(&self, node: NodeId, clock: &mut ThreadClock) {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.cache_invalidations);

        let mut cached: Vec<(PageId, Arc<PageFrame>)> = Vec::new();
        self.store.for_each_frame(node, |page, frame| {
            if !frame.is_home() && frame.is_present() {
                cached.push((page, self.store.frame(node, page)));
            }
        });
        if cached.is_empty() {
            return;
        }

        // Flush any pending modifications before dropping the copies.
        for (page, frame) in &cached {
            if frame.has_dirty_slots() {
                self.flush_frame(node, node_ref, clock, *page, frame);
            }
        }

        let reprotect = self.kind == ProtocolKind::JavaPf;
        for (_, frame) in &cached {
            frame.invalidate(reprotect);
        }

        let machine = self.cluster.machine();
        let n = cached.len() as u64;
        NodeStats::bump_by(&node_ref.stats.pages_invalidated, n);
        clock.advance(
            machine
                .cpu
                .cycles(machine.dsm.invalidate_cycles_per_page * n as f64),
        );
        if reprotect {
            // One mprotect call covers the (iso-address, hence contiguous-ish)
            // cached region that is being re-protected.
            NodeStats::bump(&node_ref.stats.mprotect_calls);
            clock.advance(machine.dsm.mprotect_call);
        }
    }

    /// Flush all locally recorded modifications to the corresponding home
    /// nodes: the `updateMainMemory` primitive of Table 2, executed on
    /// monitor exit.
    pub fn update_main_memory(&self, node: NodeId, clock: &mut ThreadClock) {
        let node_ref = self.cluster.node(node);
        let mut dirty: Vec<(PageId, Arc<PageFrame>)> = Vec::new();
        self.store.for_each_frame(node, |page, frame| {
            if !frame.is_home() && frame.has_dirty_slots() {
                dirty.push((page, self.store.frame(node, page)));
            }
        });
        for (page, frame) in dirty {
            self.flush_frame(node, node_ref, clock, page, &frame);
        }
    }

    /// True if `node` currently holds an accessible copy of `page`.
    pub fn is_cached(&self, node: NodeId, page: PageId) -> bool {
        self.store.with_frame(node, page, |f| {
            f.is_home() || (f.is_present() && !f.is_protected())
        })
    }

    /// Number of non-home pages currently cached (present) on `node`.
    pub fn pages_cached_on(&self, node: NodeId) -> usize {
        let mut n = 0;
        self.store.for_each_frame(node, |_, f| {
            if !f.is_home() && f.is_present() {
                n += 1;
            }
        });
        n
    }

    // ----- internal helpers ------------------------------------------------

    /// Apply the protocol's access-detection policy for one access.
    fn ensure_access(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
    ) {
        match self.kind {
            ProtocolKind::JavaIc => {
                // Every access pays the in-line locality check, local or not.
                NodeStats::bump(&node_ref.stats.locality_checks);
                clock.advance(self.cluster.machine().cpu.locality_check());
                if !frame.is_home() && !frame.is_present() {
                    self.fetch_page(node, node_ref, clock, page, frame, false);
                }
            }
            ProtocolKind::JavaPf => {
                if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
                    // Raw memory access: zero protocol overhead.
                    return;
                }
                // Simulated SIGSEGV: fault cost, fetch, then mprotect to open
                // the page for subsequent accesses.
                NodeStats::bump(&node_ref.stats.page_faults);
                clock.advance(self.cluster.machine().dsm.page_fault);
                self.fetch_page(node, node_ref, clock, page, frame, true);
            }
        }
    }

    /// Bring a page into the local cache from its home node.
    fn fetch_page(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        unprotect_after: bool,
    ) {
        let guard = frame.fetch_lock().lock();
        if frame.is_present() && !frame.is_protected() {
            // Another thread on this node completed the load while we were
            // waiting on the fetch lock.
            drop(guard);
            return;
        }
        NodeStats::bump(&node_ref.stats.page_loads);
        let home = self.store.home_of(page);
        let payload = encode_page_request(page);
        let bytes = self
            .cluster
            .rpc(clock, node, home, self.page_fetch, &payload);
        frame.install_copy(&bytes);
        drop(guard);

        if unprotect_after {
            NodeStats::bump(&node_ref.stats.mprotect_calls);
            clock.advance(self.cluster.machine().dsm.mprotect_call);
        }
    }

    /// Send one page's dirty slots to its home node and clear the bitmap.
    fn flush_frame(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
    ) {
        let entries = frame.take_dirty();
        if entries.is_empty() {
            return;
        }
        let machine = self.cluster.machine();
        NodeStats::bump(&node_ref.stats.diff_messages);
        NodeStats::bump_by(&node_ref.stats.diff_slots_flushed, entries.len() as u64);
        clock.advance(
            machine
                .cpu
                .cycles(machine.dsm.diff_record_cycles_per_slot * entries.len() as f64),
        );
        let home = self.store.home_of(page);
        let payload = encode_diff(page, &entries);
        let _ = self
            .cluster
            .rpc(clock, node, home, self.diff_apply, &payload);
    }
}

impl std::fmt::Debug for DsmSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmSystem")
            .field("protocol", &self.kind.name())
            .field("nodes", &self.cluster.num_nodes())
            .field("pages", &self.store.allocator().num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperion_model::{myrinet_200, VTime};
    use hyperion_pm2::IsoAllocator;

    struct Fixture {
        cluster: Arc<Cluster>,
        alloc: Arc<IsoAllocator>,
        dsm: Arc<DsmSystem>,
    }

    fn fixture(nodes: usize, kind: ProtocolKind) -> Fixture {
        let cluster = Cluster::new(myrinet_200().machine, nodes);
        let alloc = Arc::new(IsoAllocator::new(nodes));
        let store = DsmStore::new(Arc::clone(&alloc), nodes);
        let dsm = DsmSystem::new(Arc::clone(&cluster), store, kind);
        Fixture {
            cluster,
            alloc,
            dsm,
        }
    }

    #[test]
    fn protocol_kind_names_match_paper() {
        assert_eq!(ProtocolKind::JavaIc.name(), "java_ic");
        assert_eq!(ProtocolKind::JavaPf.name(), "java_pf");
        assert_eq!(ProtocolKind::all().len(), 2);
        assert_eq!(format!("{}", ProtocolKind::JavaPf), "java_pf");
    }

    #[test]
    fn home_access_round_trips_values() {
        for kind in ProtocolKind::all() {
            let f = fixture(1, kind);
            let addr = f.alloc.alloc(8, NodeId(0));
            let mut clock = ThreadClock::new();
            f.dsm.put(NodeId(0), &mut clock, addr.offset(3), 42);
            assert_eq!(f.dsm.get(NodeId(0), &mut clock, addr.offset(3)), 42);
            assert_eq!(f.dsm.get(NodeId(0), &mut clock, addr.offset(4)), 0);
        }
    }

    #[test]
    fn ic_charges_checks_even_on_home_pages_pf_does_not() {
        let ic = fixture(1, ProtocolKind::JavaIc);
        let pf = fixture(1, ProtocolKind::JavaPf);
        let a_ic = ic.alloc.alloc(4, NodeId(0));
        let a_pf = pf.alloc.alloc(4, NodeId(0));

        let mut c_ic = ThreadClock::new();
        let mut c_pf = ThreadClock::new();
        for i in 0..100 {
            ic.dsm.put(NodeId(0), &mut c_ic, a_ic, i);
            pf.dsm.put(NodeId(0), &mut c_pf, a_pf, i);
        }
        assert_eq!(ic.cluster.node_stats(NodeId(0)).locality_checks, 100);
        assert_eq!(pf.cluster.node_stats(NodeId(0)).locality_checks, 0);
        assert_eq!(pf.cluster.node_stats(NodeId(0)).page_faults, 0);
        // The in-line check protocol is strictly slower on an all-local run.
        assert!(c_ic.now() > c_pf.now());
        assert_eq!(c_pf.now(), VTime::ZERO);
    }

    #[test]
    fn remote_read_fetches_page_and_sees_home_values() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            // The home node writes a value directly.
            let mut home_clock = ThreadClock::new();
            f.dsm.put(NodeId(1), &mut home_clock, addr, 1234);

            // Node 0 reads it remotely.
            let mut clock = ThreadClock::new();
            let v = f.dsm.get(NodeId(0), &mut clock, addr);
            assert_eq!(v, 1234, "{kind:?}");

            let s0 = f.cluster.node_stats(NodeId(0));
            assert_eq!(s0.page_loads, 1);
            match kind {
                ProtocolKind::JavaIc => {
                    assert_eq!(s0.page_faults, 0);
                    assert_eq!(s0.mprotect_calls, 0);
                    assert_eq!(s0.locality_checks, 1);
                }
                ProtocolKind::JavaPf => {
                    assert_eq!(s0.page_faults, 1);
                    assert_eq!(s0.mprotect_calls, 1);
                    assert_eq!(s0.locality_checks, 0);
                }
            }
            // Second read hits the cache: no further page loads.
            let before = clock.now();
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
            match kind {
                ProtocolKind::JavaIc => assert!(clock.now() > before),
                ProtocolKind::JavaPf => assert_eq!(clock.now(), before),
            }
        }
    }

    #[test]
    fn remote_miss_is_more_expensive_under_pf_but_hits_are_free() {
        let ic = fixture(2, ProtocolKind::JavaIc);
        let pf = fixture(2, ProtocolKind::JavaPf);
        let a_ic = ic.alloc.alloc(4, NodeId(1));
        let a_pf = pf.alloc.alloc(4, NodeId(1));

        let mut c_ic = ThreadClock::new();
        let mut c_pf = ThreadClock::new();
        let _ = ic.dsm.get(NodeId(0), &mut c_ic, a_ic);
        let _ = pf.dsm.get(NodeId(0), &mut c_pf, a_pf);
        // The pf miss pays the fault and the mprotect on top of the fetch.
        assert!(c_pf.now() > c_ic.now());
        let machine = pf.cluster.machine();
        assert!(c_pf.now() >= c_ic.now() + machine.dsm.page_fault);
    }

    #[test]
    fn prefetch_effect_neighbouring_object_on_same_page_is_free() {
        let f = fixture(2, ProtocolKind::JavaIc);
        // Two small objects allocated back to back share a page.
        let a = f.alloc.alloc(4, NodeId(1));
        let b = f.alloc.alloc(4, NodeId(1));
        assert_eq!(a.page(), b.page());
        let mut clock = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut clock, a);
        let _ = f.dsm.get(NodeId(0), &mut clock, b);
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
    }

    #[test]
    fn diff_flush_propagates_writes_to_home() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut w = ThreadClock::new();
            f.dsm.put(NodeId(0), &mut w, addr.offset(2), 99);
            // Before the flush the home still sees the old value.
            let mut h = ThreadClock::new();
            assert_eq!(f.dsm.get(NodeId(1), &mut h, addr.offset(2)), 0);
            // Flush.
            f.dsm.update_main_memory(NodeId(0), &mut w);
            assert_eq!(f.dsm.get(NodeId(1), &mut h, addr.offset(2)), 99);
            let s0 = f.cluster.node_stats(NodeId(0));
            assert_eq!(s0.diff_messages, 1);
            assert_eq!(s0.diff_slots_flushed, 1);
            // A second flush with nothing dirty sends nothing.
            f.dsm.update_main_memory(NodeId(0), &mut w);
            assert_eq!(f.cluster.node_stats(NodeId(0)).diff_messages, 1);
        }
    }

    #[test]
    fn invalidate_forces_refetch_and_charges_mprotect_only_under_pf() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut clock = ThreadClock::new();
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            assert!(f.dsm.is_cached(NodeId(0), addr.page()));
            assert_eq!(f.dsm.pages_cached_on(NodeId(0)), 1);

            let mprotect_before = f.cluster.node_stats(NodeId(0)).mprotect_calls;
            f.dsm.invalidate_cache(NodeId(0), &mut clock);
            assert!(!f.dsm.is_cached(NodeId(0), addr.page()));
            assert_eq!(f.dsm.pages_cached_on(NodeId(0)), 0);
            let s = f.cluster.node_stats(NodeId(0));
            assert_eq!(s.cache_invalidations, 1);
            assert_eq!(s.pages_invalidated, 1);
            match kind {
                ProtocolKind::JavaIc => assert_eq!(s.mprotect_calls, mprotect_before),
                ProtocolKind::JavaPf => assert_eq!(s.mprotect_calls, mprotect_before + 1),
            }

            // The next access loads the page again.
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 2);
        }
    }

    #[test]
    fn invalidate_flushes_pending_writes_first() {
        let f = fixture(2, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut clock, addr, 7);
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        // The home must have received the value even though the cache copy
        // was dropped.
        let mut h = ThreadClock::new();
        assert_eq!(f.dsm.get(NodeId(1), &mut h, addr), 7);
    }

    #[test]
    fn invalidate_on_clean_cacheless_node_is_cheap() {
        let f = fixture(2, ProtocolKind::JavaPf);
        let _ = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        assert_eq!(clock.now(), VTime::ZERO);
        assert_eq!(f.cluster.node_stats(NodeId(0)).mprotect_calls, 0);
    }

    #[test]
    fn explicit_load_into_cache_prefetches() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut clock = ThreadClock::new();
            f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
            assert!(f.dsm.is_cached(NodeId(0), addr.page()));
            let loads_before = f.cluster.node_stats(NodeId(0)).page_loads;
            let faults_before = f.cluster.node_stats(NodeId(0)).page_faults;
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            let s = f.cluster.node_stats(NodeId(0));
            assert_eq!(
                s.page_loads, loads_before,
                "{kind:?}: access after prefetch reloaded"
            );
            assert_eq!(s.page_faults, faults_before);
            // Loading an already-cached or home page is a no-op.
            f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
            f.dsm.load_into_cache(NodeId(1), &mut clock, addr.page());
            assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, loads_before);
            assert_eq!(f.cluster.node_stats(NodeId(1)).page_loads, 0);
        }
    }

    #[test]
    fn concurrent_threads_on_one_node_fetch_a_page_once() {
        let f = fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc(8, NodeId(1));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let dsm = &f.dsm;
                s.spawn(move || {
                    let mut clock = ThreadClock::new();
                    assert_eq!(dsm.get(NodeId(0), &mut clock, addr), 0);
                });
            }
        });
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
    }

    #[test]
    fn locality_classification_tracks_protocol_state() {
        let f = fixture(2, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc(8, NodeId(1));
        let page = addr.page();
        assert_eq!(f.dsm.locality(NodeId(1), page), Locality::Local);
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Remote);

        let mut clock = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::CachedRemote);

        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Remote);
        // The query itself never charges anything.
        let before = clock.now();
        let _ = f.dsm.locality(NodeId(0), page);
        assert_eq!(clock.now(), before);
        assert!(Locality::Local.is_resident());
        assert!(Locality::CachedRemote.is_resident());
        assert!(!Locality::Remote.is_resident());
        assert_eq!(format!("{}", Locality::CachedRemote), "cached-remote");
    }

    #[test]
    fn bulk_read_checks_once_per_page_under_ic() {
        let f = fixture(2, ProtocolKind::JavaIc);
        let slots = SLOTS_PER_PAGE * 2 + 10; // spans three pages
        let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
        let mut clock = ThreadClock::new();
        let mut out = vec![0u64; slots];
        f.dsm.read_slice(NodeId(0), &mut clock, addr, &mut out);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.locality_checks, 3, "one in-line check per touched page");
        assert_eq!(s.page_loads, 3);
        assert_eq!(s.field_reads, slots as u64);
        assert_eq!(s.bulk_reads, 1);

        // The element-wise loop pays one check per element on a fresh system.
        let g = fixture(2, ProtocolKind::JavaIc);
        let addr2 = g.alloc.alloc_page_aligned(slots, NodeId(1));
        let mut clock2 = ThreadClock::new();
        for i in 0..slots {
            let _ = g.dsm.get(NodeId(0), &mut clock2, addr2.offset(i as u64));
        }
        let t = g.cluster.node_stats(NodeId(0));
        assert_eq!(t.locality_checks, slots as u64);
        assert_eq!(t.page_loads, 3, "page traffic is identical either way");
        assert!(clock.now() < clock2.now(), "bulk must be cheaper under ic");
    }

    #[test]
    fn bulk_write_round_trips_and_flushes_field_granularity_diffs() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE + 4, NodeId(1));
            let values: Vec<u64> = (0..SLOTS_PER_PAGE as u64 + 4).map(|v| v * 3 + 1).collect();
            let mut clock = ThreadClock::new();
            f.dsm.write_slice(NodeId(0), &mut clock, addr, &values);
            let mut out = vec![0u64; values.len()];
            f.dsm.read_slice(NodeId(0), &mut clock, addr, &mut out);
            assert_eq!(out, values, "{kind:?}");

            // Flush and verify the home sees every slot.
            f.dsm.update_main_memory(NodeId(0), &mut clock);
            let s = f.cluster.node_stats(NodeId(0));
            assert_eq!(s.diff_slots_flushed, values.len() as u64);
            assert_eq!(s.bulk_writes, 1);
            let mut home_clock = ThreadClock::new();
            let mut home = vec![0u64; values.len()];
            f.dsm
                .read_slice(NodeId(1), &mut home_clock, addr, &mut home);
            assert_eq!(home, values);
        }
    }

    #[test]
    fn bulk_ops_match_elementwise_results_exactly() {
        for kind in ProtocolKind::all() {
            let bulk = fixture(2, kind);
            let elem = fixture(2, kind);
            let n = 100usize;
            let ab = bulk.alloc.alloc(n, NodeId(1));
            let ae = elem.alloc.alloc(n, NodeId(1));
            let values: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(0x9E3779B9)).collect();

            let mut cb = ThreadClock::new();
            bulk.dsm.write_slice(NodeId(0), &mut cb, ab, &values);
            let mut out_b = vec![0u64; n];
            bulk.dsm.read_slice(NodeId(0), &mut cb, ab, &mut out_b);

            let mut ce = ThreadClock::new();
            for (i, v) in values.iter().enumerate() {
                elem.dsm.put(NodeId(0), &mut ce, ae.offset(i as u64), *v);
            }
            let out_e: Vec<u64> = (0..n)
                .map(|i| elem.dsm.get(NodeId(0), &mut ce, ae.offset(i as u64)))
                .collect();

            assert_eq!(out_b, out_e, "{kind:?}");
            let sb = bulk.cluster.node_stats(NodeId(0));
            let se = elem.cluster.node_stats(NodeId(0));
            assert_eq!(sb.field_reads, se.field_reads);
            assert_eq!(sb.field_writes, se.field_writes);
            assert_eq!(sb.page_loads, se.page_loads);
            assert!(sb.locality_checks <= se.locality_checks);
        }
    }

    #[test]
    fn field_granularity_flush_does_not_clobber_concurrent_home_writes() {
        // Node 0 writes slot 0, the home writes slot 1; after node 0 flushes,
        // both values must survive at the home (no false sharing).
        let f = fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut c0 = ThreadClock::new();
        let mut c1 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut c0, addr); // cache the page
        f.dsm.put(NodeId(1), &mut c1, addr.offset(1), 111); // home writes slot 1
        f.dsm.put(NodeId(0), &mut c0, addr.offset(0), 222); // cached write slot 0
        f.dsm.update_main_memory(NodeId(0), &mut c0);
        assert_eq!(f.dsm.get(NodeId(1), &mut c1, addr.offset(0)), 222);
        assert_eq!(f.dsm.get(NodeId(1), &mut c1, addr.offset(1)), 111);
    }
}
