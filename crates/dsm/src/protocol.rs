//! The consistency-protocol engine: `java_ic`, `java_pf` and `java_ad`.
//!
//! All protocols implement the Java Memory Model the same way (home-based
//! caching, invalidate on monitor entry, flush field-granularity diffs on
//! monitor exit — §3.1) and differ *only* in how accesses to remote objects
//! are detected (§3.2, §3.3):
//!
//! * **`java_ic`** — every `get`/`put` performs an explicit in-line locality
//!   check; a miss triggers a page fetch.  No page protection, no faults, no
//!   `mprotect`.
//! * **`java_pf`** — `get`/`put` on a present, unprotected page cost nothing
//!   beyond the raw access.  Pages of remote objects are access-protected,
//!   so the first access after initialisation or after a cache invalidation
//!   takes a (simulated) page fault, fetches the page, and pays an `mprotect`
//!   to open it; monitor-entry invalidation pays an `mprotect` to re-protect
//!   the cached region.
//! * **`java_ad`** — an adaptive extension beyond the paper: every cached
//!   page runs its own state machine between the two techniques above.  A
//!   page tracks how often it is re-accessed after each invalidation and is
//!   flipped — at invalidation time, when its copy is dropped anyway — to
//!   the technique that would have been cheaper, with hysteresis around the
//!   cost-model break-even `n* = ⌈(t_fault + t_mprotect) / t_check⌉` (see
//!   [`hyperion_model::MachineModel::adaptive_break_even`]).  `java_ad` also
//!   batches page fetches: one RPC may carry a run of contiguous same-home
//!   pages, either because an in-flight bulk access is certain to touch them
//!   or because their epoch history shows stable re-access.
//!
//! The engine exposes exactly the primitives of the paper's Table 2:
//! [`DsmSystem::load_into_cache`], [`DsmSystem::invalidate_cache`],
//! [`DsmSystem::update_main_memory`], [`DsmSystem::get`] and
//! [`DsmSystem::put`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hyperion_model::{CpuModel, DsmCostModel, NodeStats, ThreadClock, VTime};
use hyperion_pm2::{
    Cluster, GlobalAddr, Node, NodeId, PageId, RpcHandler, RpcReply, ServiceId, TransportBackend,
    SLOTS_PER_PAGE,
};

use crate::diff::{
    decode_diff_message, decode_migration_grant, decode_page_fetch_request, encode_diff,
    encode_diff_batch, encode_migration_grant, encode_page_batch_request, encode_page_request,
    encode_page_request_nohint, split_fetch_reply, DiffEntry, HintRun,
};
use crate::page::{AdMode, PageFrame};
use crate::table::DsmStore;

/// Bytes of one page on the wire.
const PAGE_BYTES: usize = SLOTS_PER_PAGE * 8;

/// Which access-detection technique a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Explicit in-line locality checks on every access (§3.2).
    JavaIc,
    /// Page-fault-based detection with page protection (§3.3).
    JavaPf,
    /// Adaptive per-page selection between the two techniques, with batched
    /// page fetches (extension beyond the paper).
    JavaAd,
}

impl ProtocolKind {
    /// The name used in the paper's figures (and `java_ad` for the adaptive
    /// extension).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::JavaIc => "java_ic",
            ProtocolKind::JavaPf => "java_pf",
            ProtocolKind::JavaAd => "java_ad",
        }
    }

    /// The paper's two protocols, in the order the paper lists them.
    pub fn all() -> [ProtocolKind; 2] {
        [ProtocolKind::JavaIc, ProtocolKind::JavaPf]
    }

    /// The paper's two protocols plus the adaptive extension.
    pub fn all_extended() -> [ProtocolKind; 3] {
        [
            ProtocolKind::JavaIc,
            ProtocolKind::JavaPf,
            ProtocolKind::JavaAd,
        ]
    }
}

/// Tunable policy knobs of the adaptive protocol (`java_ad`).
///
/// The switching thresholds are expressed as multiples of the machine
/// model's break-even access count `n*` so one parameterisation is
/// meaningful on both modelled clusters; the ablation benchmarks sweep
/// `hi_multiple` to show the policy is robust around 1.0.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveParams {
    /// A check-mode page switches to protection when its *smoothed*
    /// accesses-per-epoch (EWMA over invalidation epochs) reach
    /// `hi_multiple · n*`.
    pub hi_multiple: f64,
    /// A protect-mode page falls back to checks when its smoothed
    /// accesses-per-epoch drop to `lo_multiple · n*` or below.  Kept
    /// strictly below `hi_multiple` (hysteresis) so borderline pages do not
    /// flap.
    pub lo_multiple: f64,
    /// Largest number of pages one fetch RPC may carry; 1 disables batching.
    pub max_batch_pages: usize,
    /// Consecutive re-accessed epochs a page needs before history-driven
    /// prefetching may pull it into a neighbour's batch.
    pub min_prefetch_streak: u64,
    /// Adapt the `hi`/`lo` thresholds online, per node, from the measured
    /// switch and waste counters: a node whose pages flap between the two
    /// techniques widens its own hysteresis band (up to 8× the configured
    /// multiples), and a node that has stopped mispredicting relaxes back
    /// towards them.  Off by default — the static thresholds are what the
    /// ablation benchmarks sweep.
    pub online_thresholds: bool,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            hi_multiple: 1.0,
            lo_multiple: 0.5,
            max_batch_pages: 8,
            min_prefetch_streak: 3,
            online_thresholds: false,
        }
    }
}

/// Configuration of the split-transaction transport layer: how the wire
/// path overlaps with compute and how write-shared pages are re-homed.
///
/// All three mechanisms are semantics-preserving — they change when latency
/// is charged and how many RPCs carry the same bytes, never what a program
/// computes — so they apply to every protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportConfig {
    /// Overlapped page fetches: an explicit prefetch (`loadIntoCache`) and
    /// every speculative batch rider issue their RPC immediately but record
    /// an in-flight ticket; the requester keeps computing and pays only the
    /// *residual* latency when the page is first really used.  Off by
    /// default (the paper's transport blocks on every fetch).
    pub overlapped_fetches: bool,
    /// Largest number of contiguous same-home dirty pages one diff-flush
    /// RPC may carry at `updateMainMemory`; 1 disables batched flushing.
    pub max_flush_batch_pages: usize,
    /// Migrate a page's home to the writer that dominates its release-time
    /// diff traffic, turning that writer's per-release diff RPC into plain
    /// local stores.  Off by default.
    pub home_migration: bool,
    /// Majority count (Boyer–Moore vote over incoming diffs) a non-home
    /// writer must reach before the home migrates to it.  Doubled per page
    /// after each migration, so ping-ponging homes back off geometrically.
    pub migration_streak: u32,
    /// Cluster-wide prefetch directory: each home keeps a small per-page
    /// fetch history and piggybacks "a neighbour also fetched p..p+k" hints
    /// on fetch replies; requesters convert hints into split-transaction
    /// tickets, so a later demand miss on a hinted page completes an
    /// already in-flight RPC instead of issuing one.  Requires
    /// [`TransportConfig::overlapped_fetches`]; off by default.
    pub prefetch_hints: bool,
    /// Largest number of contiguous pages one reply's hint run may name.
    pub hint_window: usize,
    /// Deferred release flushing: `updateMainMemory` at a monitor exit
    /// hands its coalesced diff batches to a per-monitor deferred-flush
    /// queue as split transactions; the flush only has to complete before
    /// the *next acquire of the same monitor*, which is where the residual
    /// latency is charged (the JMM's release/acquire edge is exactly
    /// per-monitor, so deferring to the hand-off preserves happens-before).
    /// Release points with thread-level edges (`Thread.start`, `join`,
    /// migration, program exit) always flush blocking.  Off by default.
    pub deferred_flush: bool,
    /// Which [`hyperion_pm2::Transport`] implementation carries the RPCs:
    /// the in-process cost model (default) or a real Unix-domain/TCP
    /// socket per node.  Semantics-preserving by construction — the wire
    /// payloads and the virtual-time charging are identical across
    /// backends, only the physical carrier differs.
    pub backend: TransportBackend,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            overlapped_fetches: false,
            max_flush_batch_pages: 8,
            home_migration: false,
            migration_streak: 3,
            prefetch_hints: false,
            hint_window: 4,
            deferred_flush: false,
            backend: TransportBackend::Sim,
        }
    }
}

impl TransportConfig {
    /// The paper's blocking transport: no overlap, no flush batching, no
    /// home migration, no prefetch directory, no deferred flushing.
    pub fn blocking() -> Self {
        TransportConfig {
            overlapped_fetches: false,
            max_flush_batch_pages: 1,
            ..TransportConfig::default()
        }
    }

    /// The latency-hiding transport of the split-transaction PR: overlapped
    /// fetches, batched flushing and home migration (the prefetch directory
    /// and deferred flushing stay off — see [`TransportConfig::directory`]).
    pub fn latency_hiding() -> Self {
        TransportConfig {
            overlapped_fetches: true,
            home_migration: true,
            ..TransportConfig::default()
        }
    }

    /// The prefetch-directory transport: overlapped fetches plus
    /// cluster-wide hints and deferred release flushing (home migration is
    /// left off so directory effects are measured in isolation).
    pub fn directory() -> Self {
        TransportConfig {
            overlapped_fetches: true,
            prefetch_hints: true,
            deferred_flush: true,
            ..TransportConfig::default()
        }
    }
}

/// The record a deferred release flush leaves behind: the virtual instant
/// the flush RPCs were issued and the instant the last of them completes.
/// The monitor that performed the release stores it and merges `completion`
/// into the next acquirer's clock (see [`TransportConfig::deferred_flush`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeferredFlush {
    /// Virtual time at which the releasing thread finished issuing the
    /// flush RPCs (everything before this was charged at the release).
    pub issue: VTime,
    /// Virtual time at which the last flush RPC completes; the next acquire
    /// of the same monitor can not happen before this.
    pub completion: VTime,
}

/// The thresholds of [`AdaptiveParams`] resolved against a concrete machine
/// model (absolute access counts instead of break-even multiples).
#[derive(Clone, Copy, Debug)]
struct AdaptiveTuning {
    /// Check → Protect when a closed epoch saw at least this many accesses.
    hi: u64,
    /// Protect → Check when a closed epoch saw at most this many accesses.
    lo: u64,
    /// Largest batched-fetch size in pages (≥ 1).
    max_batch: usize,
    /// Minimum epoch streak for history-driven prefetch eligibility.
    min_streak: u64,
}

impl AdaptiveTuning {
    fn resolve(params: &AdaptiveParams, break_even: u64) -> AdaptiveTuning {
        let hi = ((break_even as f64) * params.hi_multiple).ceil().max(1.0) as u64;
        let lo = (((break_even as f64) * params.lo_multiple).floor() as u64).min(hi - 1);
        AdaptiveTuning {
            hi,
            lo,
            max_batch: params.max_batch_pages.max(1),
            min_streak: params.min_prefetch_streak,
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where the page behind an address currently lives, relative to an
/// observing node.
///
/// This is the distinction the paper's two protocols *detect* on every
/// access; promoting it into the API lets programs ask once and then take a
/// fast path (bulk transfers, pinned views) that elides the per-access
/// detection entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Locality {
    /// The observing node is the page's home: every access is local.
    Local,
    /// A remote page with a valid, unprotected cached copy on the node:
    /// accesses are served locally until the next cache invalidation.
    CachedRemote,
    /// A remote page with no usable local copy: the next access pays the
    /// full detection-plus-fetch path.
    Remote,
}

impl Locality {
    /// True if an access right now would be served without DSM traffic
    /// (home page or valid cached copy).
    pub fn is_resident(self) -> bool {
        !matches!(self, Locality::Remote)
    }

    /// Short lower-case name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Locality::Local => "local",
            Locality::CachedRemote => "cached-remote",
            Locality::Remote => "remote",
        }
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How many home-fetch events back a directory observation still counts as
/// "recent" for the neighbour-also-fetched predicate.  Small enough that an
/// observation from several invalidation epochs ago (whose prediction the
/// next acquire would kill anyway) no longer generates hints.
const HINT_RECENT_WINDOW: u64 = 6;

/// RPC service: ship a copy of a home page to a requesting node and, when
/// the prefetch directory is enabled, piggyback "a neighbour also fetched
/// p..p+k" hints derived from the home's per-page fetch history.
struct PageFetchService {
    store: Arc<DsmStore>,
    cpu: CpuModel,
    dsm: DsmCostModel,
    transport: TransportConfig,
}

impl PageFetchService {
    /// Consult the directory for a hint run following the served span
    /// `[first, first + count)`: contiguous same-home pages that the
    /// requester is predicted to touch soon, because either
    ///
    /// * the request extended the requester's own stride run (`stride`:
    ///   the page before `first` was the previous page this home served
    ///   the caller — scans keep scanning), or
    /// * a *neighbour co-fetched* the run: some other node recently
    ///   fetched both the demanded span and the candidate page, so a node
    ///   that is now where the neighbour was is predicted to follow it.
    ///
    /// Requiring the *same* neighbour on both sides is what keeps the
    /// directory from hinting pages that merely happen to be busy (e.g.
    /// another node's private boundary row that the requester never reads).
    fn hint_run(
        &self,
        home: NodeId,
        caller: NodeId,
        first: PageId,
        count: u32,
        stride: bool,
        seq: u64,
    ) -> u16 {
        let num_pages = self.store.allocator().num_pages();
        let caller_tag = caller.0 as u64 + 1;
        // Neighbours that recently fetched the tail of the demanded span.
        let last = PageId(first.0 + count as u64 - 1);
        let neighbours: Vec<u64> = self
            .store
            .with_frame(home, last, |f| {
                f.dir_recent_fetchers(seq, HINT_RECENT_WINDOW)
            })
            .into_iter()
            .filter(|&t| t != 0 && t != caller_tag)
            .collect();
        if !stride && neighbours.is_empty() {
            return 0;
        }
        let next = first.0 + count as u64;
        let mut run = 0u16;
        for k in 0..self.transport.hint_window as u64 {
            let q = PageId(next + k);
            if q.index() >= num_pages || self.store.home_of(q) != home {
                break;
            }
            let co_fetched = !neighbours.is_empty()
                && self.store.with_frame(home, q, |f| {
                    f.dir_recent_fetchers(seq, HINT_RECENT_WINDOW)
                        .iter()
                        .any(|t| neighbours.contains(t))
                });
            if !stride && !co_fetched {
                break;
            }
            run += 1;
        }
        run
    }
}

impl RpcHandler for PageFetchService {
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        let (first, count, hints_ok) = decode_page_fetch_request(payload);
        let mut bytes = Vec::with_capacity(PAGE_BYTES * count as usize);
        let home = target.id();
        let last = PageId(first.0 + count as u64 - 1);
        // Directory bookkeeping exists only for the hint path: with hints
        // off, the fetch handler does exactly what the plain split-
        // transaction transport did (no stamps, no history writes).
        let hints = self.transport.prefetch_hints;
        let mut stride = false;
        let mut seq = 0u64;
        if hints {
            // One directory stamp per request: the pages of a batch arrive
            // together, so they share one "fetch event".
            seq = self.store.next_fetch_seq(home);
            let prev = self.store.swap_last_fetch(home, caller, last);
            stride = prev != 0 && prev == first.0; // prev stores page id + 1
            if prev != 0 && prev - 1 != first.0 && prev - 1 != last.0 {
                // Learn the successor pair: the caller followed its previous
                // page from this home with this span.  This is what lets the
                // directory predict non-contiguous re-fetch sequences (e.g.
                // the two pages a boundary row spans) from the second epoch
                // on.
                self.store.with_frame(
                    self.store.home_of(PageId(prev - 1)),
                    PageId(prev - 1),
                    |f| f.dir_record_next(first.0, seq),
                );
            }
        }
        for k in 0..count as u64 {
            let page = PageId(first.0 + k);
            // Serve the *current* home's copy: normally that is `target`,
            // but a concurrent home migration may have moved the page after
            // the caller looked its home up, in which case the old home
            // forwards the authoritative frame (the shared store gives the
            // modelled handler direct access to it).
            let home_now = self.store.home_of(page);
            debug_assert!(
                home_now == target.id() || self.store.page_migrated(page),
                "page fetch sent to a node that is not the page's home"
            );
            bytes.extend_from_slice(&self.store.with_frame(home_now, page, |f| {
                if hints {
                    f.dir_record_fetch(caller.0 as u64, seq);
                }
                f.data().snapshot_bytes()
            }));
        }
        let mut hint_entries = 0u16;
        if self.transport.prefetch_hints && hints_ok {
            let run = self.hint_run(home, caller, first, count, stride, seq);
            if run > 0 {
                crate::diff::append_fetch_hints(
                    &mut bytes,
                    &[(PageId(first.0 + count as u64), run)],
                );
                hint_entries = 1;
                NodeStats::bump_by(&target.stats.hints_sent, run as u64);
            } else if let Some(next) = self
                .store
                .with_frame(home, last, |f| f.dir_recent_next(seq, HINT_RECENT_WINDOW))
                .filter(|&n| n != first.0 && n != last.0)
            {
                // No contiguous run, but the directory has seen a requester
                // follow this page with another one (a learned successor
                // pair): hint that single page.
                crate::diff::append_fetch_hints(&mut bytes, &[(PageId(next), 1)]);
                hint_entries = 1;
                NodeStats::bump(&target.stats.hints_sent);
            }
        }
        let service = self.cpu.cycles(
            self.dsm.page_copy_cycles_per_slot * (SLOTS_PER_PAGE * count as usize) as f64
                + self.dsm.batch_page_cycles * (count - 1) as f64
                + self.dsm.hint_entry_cycles * hint_entries as f64,
        );
        RpcReply::with_data(bytes, service)
    }

    fn name(&self) -> &'static str {
        "dsm.page_fetch"
    }
}

/// RPC service: apply one or more field-granularity diffs to home pages,
/// and — when home migration is enabled — hand the home of a write-shared
/// page over to the writer that dominates its diff traffic.
struct DiffApplyService {
    store: Arc<DsmStore>,
    cpu: CpuModel,
    dsm: DsmCostModel,
    transport: TransportConfig,
}

impl RpcHandler for DiffApplyService {
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        let diffs = decode_diff_message(payload);
        let mut slots = 0usize;
        let mut grant: Option<(PageId, Vec<u8>)> = None;
        for (page, entries) in &diffs {
            slots += entries.len();
            // Apply to the *current* home frame (see `PageFetchService` on
            // why this may differ from `target` under concurrent migration).
            let home_now = self.store.home_of(*page);
            debug_assert!(
                home_now == target.id() || self.store.page_migrated(*page),
                "diff sent to a node that is not the page's home"
            );
            let migrate = self.store.with_frame(home_now, *page, |f| {
                debug_assert!(f.is_home() || self.store.page_migrated(*page));
                for &(slot, value) in entries {
                    f.apply_diff_slot(slot as usize, value);
                }
                // Migration decision: one grant per message at most, only
                // for genuinely remote writers, and only when the writer
                // dominates the page's recent diff stream.
                self.transport.home_migration
                    && grant.is_none()
                    && caller != home_now
                    && f.mig_observe_writer(caller.0 as u64, self.transport.migration_streak as u64)
            });
            if migrate {
                // Execute the hand-over while still inside the handler so no
                // fetch can observe a half-migrated page: promote the
                // writer's frame from the authoritative snapshot (keeping
                // any newer local writes it has pending), then re-route the
                // home and demote the old home to an ordinary cached copy.
                let (snapshot, back_off) = self.store.with_frame(home_now, *page, |f| {
                    (f.data().snapshot_bytes(), f.mig_required())
                });
                self.store.with_frame(caller, *page, |f| {
                    f.promote_to_home(&snapshot);
                    f.mig_inherit_required(back_off);
                });
                self.store.set_home(*page, caller);
                self.store
                    .with_frame(home_now, *page, |f| f.demote_from_home());
                grant = Some((*page, snapshot));
            }
        }
        let service = self.cpu.cycles(
            self.dsm.diff_apply_cycles_per_slot * slots as f64
                + self.dsm.batch_flush_cycles * (diffs.len() - 1) as f64,
        );
        match grant {
            // The grant reply carries the page snapshot so shipping the
            // authoritative copy to the new home is charged on the wire.
            Some((page, snapshot)) => {
                RpcReply::with_data(encode_migration_grant(page, &snapshot), service)
            }
            None => RpcReply::ack(service),
        }
    }

    fn name(&self) -> &'static str {
        "dsm.diff_apply"
    }
}

/// Per-node online-adaptive threshold state (see
/// [`AdaptiveParams::online_thresholds`]): the node's current `hi`/`lo`
/// marks plus the counter snapshots of the current observation window.
#[derive(Debug, Default)]
struct NodeTuning {
    hi: AtomicU64,
    lo: AtomicU64,
    window_epochs: AtomicU64,
    switches_base: AtomicU64,
    waste_base: AtomicU64,
}

/// Invalidation episodes per online-threshold observation window.
const TUNING_WINDOW: u64 = 8;

/// The widest the online tuner may stretch the hysteresis band, as a
/// multiple of the configured thresholds.
const TUNING_SPAN: u64 = 8;

/// The DSM system of one cluster run: the protocol engine plus its services.
pub struct DsmSystem {
    cluster: Arc<Cluster>,
    store: Arc<DsmStore>,
    kind: ProtocolKind,
    ad: AdaptiveTuning,
    online: bool,
    tuning: Vec<NodeTuning>,
    transport: TransportConfig,
    page_fetch: ServiceId,
    diff_apply: ServiceId,
}

impl DsmSystem {
    /// Build a DSM system over an existing cluster and store, registering the
    /// page-fetch and diff-apply services with the communication subsystem.
    /// `java_ad` runs with the default [`AdaptiveParams`]; use
    /// [`DsmSystem::with_params`] to tune it.
    pub fn new(cluster: Arc<Cluster>, store: Arc<DsmStore>, kind: ProtocolKind) -> Arc<Self> {
        Self::with_params(cluster, store, kind, &AdaptiveParams::default())
    }

    /// Build a DSM system with explicit adaptive-protocol parameters (they
    /// are resolved against the cluster's machine model and ignored by
    /// `java_ic` / `java_pf`) and the default transport.
    pub fn with_params(
        cluster: Arc<Cluster>,
        store: Arc<DsmStore>,
        kind: ProtocolKind,
        params: &AdaptiveParams,
    ) -> Arc<Self> {
        Self::with_config(cluster, store, kind, params, &TransportConfig::default())
    }

    /// Build a DSM system with explicit adaptive-protocol parameters and an
    /// explicit transport configuration.
    pub fn with_config(
        cluster: Arc<Cluster>,
        store: Arc<DsmStore>,
        kind: ProtocolKind,
        params: &AdaptiveParams,
        transport: &TransportConfig,
    ) -> Arc<Self> {
        let cpu = cluster.machine().cpu.clone();
        let dsm = cluster.machine().dsm.clone();
        let ad = AdaptiveTuning::resolve(params, cluster.machine().adaptive_break_even());
        let tuning = (0..cluster.num_nodes())
            .map(|_| {
                let t = NodeTuning::default();
                t.hi.store(ad.hi, Ordering::Relaxed);
                t.lo.store(ad.lo, Ordering::Relaxed);
                t
            })
            .collect();
        let page_fetch = cluster.register_service(Arc::new(PageFetchService {
            store: Arc::clone(&store),
            cpu: cpu.clone(),
            dsm: dsm.clone(),
            transport: transport.clone(),
        }));
        let diff_apply = cluster.register_service(Arc::new(DiffApplyService {
            store: Arc::clone(&store),
            cpu,
            dsm,
            transport: transport.clone(),
        }));
        Arc::new(DsmSystem {
            cluster,
            store,
            kind,
            ad,
            online: params.online_thresholds,
            tuning,
            transport: transport.clone(),
            page_fetch,
            diff_apply,
        })
    }

    /// The protocol this system runs.
    #[inline]
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The resolved `java_ad` switching thresholds `(hi, lo)` in absolute
    /// accesses-per-epoch (for tests, tools and the ablation benchmarks).
    /// These are the *configured* marks; with online tuning a node's current
    /// marks may differ — see [`DsmSystem::adaptive_thresholds_on`].
    pub fn adaptive_thresholds(&self) -> (u64, u64) {
        (self.ad.hi, self.ad.lo)
    }

    /// The `hi`/`lo` marks node `node` currently switches on (equal to
    /// [`DsmSystem::adaptive_thresholds`] unless online tuning has moved
    /// them).
    pub fn adaptive_thresholds_on(&self, node: NodeId) -> (u64, u64) {
        let t = &self.tuning[node.index()];
        (t.hi.load(Ordering::Relaxed), t.lo.load(Ordering::Relaxed))
    }

    /// The transport configuration of this system.
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// The cluster this system runs on.
    #[inline]
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The shared page store.
    #[inline]
    pub fn store(&self) -> &Arc<DsmStore> {
        &self.store
    }

    /// Issue a split-transaction RPC, treating transport failure as fatal.
    /// The protocol cannot make progress without its home nodes — a lost
    /// peer on a socket backend leaves the page table inconsistent — so a
    /// failed round trip aborts the run instead of limping on.
    fn rpc_split_or_die(
        &self,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> (Vec<u8>, VTime) {
        self.cluster
            .rpc_split(clock, from, to, service, payload)
            .unwrap_or_else(|e| {
                panic!(
                    "DSM '{}' RPC from node {} to node {} failed: {e}",
                    self.cluster.service_name(service),
                    from.0,
                    to.0
                )
            })
    }

    /// Retrieve a field (an 8-byte slot): the `get` primitive of Table 2.
    ///
    /// Charges the protocol-dependent access-detection cost to `clock` and
    /// fetches the containing page if it is not available locally.
    pub fn get(&self, node: NodeId, clock: &mut ThreadClock, addr: GlobalAddr) -> u64 {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.field_reads);
        let page = addr.page();
        let frame = self.store.frame(node, page);
        self.ensure_access(node, node_ref, clock, page, &frame, 1);
        frame.load_slot(addr.slot())
    }

    /// Modify a field: the `put` primitive of Table 2.
    ///
    /// The modification is recorded with field granularity (dirty-slot
    /// bitmap) so `updateMainMemory` can flush exactly the modified fields.
    pub fn put(&self, node: NodeId, clock: &mut ThreadClock, addr: GlobalAddr, value: u64) {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.field_writes);
        let page = addr.page();
        let frame = self.store.frame(node, page);
        self.ensure_access(node, node_ref, clock, page, &frame, 1);
        frame.store_slot(addr.slot(), value);
    }

    /// Classify the current locality of `page` as seen from `node`.
    ///
    /// This is a pure query: it charges nothing and touches no protocol
    /// state.  Callers that want the paper's in-line check semantics (one
    /// check, one check cost) should go through the runtime layer, which
    /// charges the protocol-dependent cost on top.
    pub fn locality(&self, node: NodeId, page: PageId) -> Locality {
        self.store.with_frame(node, page, |f| {
            if f.is_home() {
                Locality::Local
            } else if f.is_present() && !f.is_protected() {
                Locality::CachedRemote
            } else {
                Locality::Remote
            }
        })
    }

    /// Bulk read of `out.len()` consecutive slots starting at `addr`: the
    /// per-*page* counterpart of [`DsmSystem::get`].
    ///
    /// Access detection is performed once per touched page instead of once
    /// per element: under `java_ic` a slice spanning `p` pages costs `p`
    /// in-line checks (against `out.len()` for the element-wise loop); under
    /// `java_pf` the behaviour is unchanged (faults were already per-page).
    /// Consistency is identical to the element-wise loop — both read the
    /// node's current copies and are only as fresh as the last acquire.
    pub fn read_slice(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
        addr: GlobalAddr,
        out: &mut [u64],
    ) {
        if out.is_empty() {
            return;
        }
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.bulk_reads);
        NodeStats::bump_by(&node_ref.stats.field_reads, out.len() as u64);
        let mut done = 0usize;
        while done < out.len() {
            let a = addr.offset(done as u64);
            let slot = a.slot();
            let run = (SLOTS_PER_PAGE - slot).min(out.len() - done);
            let frame = self.store.frame(node, a.page());
            // Pages this slice is still certain to touch, counting the
            // current one — the batching hint for `java_ad` fetches.
            let bulk_pages = 1 + (out.len() - done - run).div_ceil(SLOTS_PER_PAGE);
            self.ensure_access(node, node_ref, clock, a.page(), &frame, bulk_pages);
            for k in 0..run {
                out[done + k] = frame.load_slot(slot + k);
            }
            done += run;
        }
    }

    /// Bulk write of `values` to consecutive slots starting at `addr`: the
    /// per-*page* counterpart of [`DsmSystem::put`].
    ///
    /// Like [`DsmSystem::read_slice`], detection is paid once per touched
    /// page.  Writes are recorded in the ordinary dirty-slot bitmaps, so the
    /// next `updateMainMemory` flushes exactly the modified fields — bulk
    /// writes lose nothing of the field-granularity diffing.
    pub fn write_slice(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
        addr: GlobalAddr,
        values: &[u64],
    ) {
        if values.is_empty() {
            return;
        }
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.bulk_writes);
        NodeStats::bump_by(&node_ref.stats.field_writes, values.len() as u64);
        let mut done = 0usize;
        while done < values.len() {
            let a = addr.offset(done as u64);
            let slot = a.slot();
            let run = (SLOTS_PER_PAGE - slot).min(values.len() - done);
            let frame = self.store.frame(node, a.page());
            let bulk_pages = 1 + (values.len() - done - run).div_ceil(SLOTS_PER_PAGE);
            self.ensure_access(node, node_ref, clock, a.page(), &frame, bulk_pages);
            for k in 0..run {
                frame.store_slot(slot + k, values[done + k]);
            }
            done += run;
        }
    }

    /// Explicitly load a page into the local cache (the `loadIntoCache`
    /// primitive of Table 2).  A no-op for home pages and pages already
    /// cached.
    pub fn load_into_cache(&self, node: NodeId, clock: &mut ThreadClock, page: PageId) {
        let node_ref = self.cluster.node(node);
        let frame = self.store.frame(node, page);
        if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
            return;
        }
        match self.kind {
            ProtocolKind::JavaAd => {
                // An explicit prefetch is not an access: it leaves the
                // page's epoch statistics alone.  The mprotect that opens
                // the page is only due if the page was protection-detected.
                let unprotect = frame.ad_mode() == AdMode::Protect;
                self.fetch_page_adaptive(node, node_ref, clock, page, &frame, unprotect, 1, false);
            }
            _ => self.fetch_page(
                node,
                node_ref,
                clock,
                page,
                &frame,
                self.kind == ProtocolKind::JavaPf,
                false,
            ),
        }
    }

    /// Prefetch every absent page of the `pages` consecutive pages starting
    /// at `first`: the span form of [`DsmSystem::load_into_cache`].
    ///
    /// The whole span is *certain* to be touched (the caller said so), so
    /// under `java_ad` the remaining span rides along in batched fetches on
    /// certainty alone — history speculation is suppressed, because piling
    /// speculative riders onto an explicit prefetch would compound two
    /// guesses and inflate page traffic the program never asked for.
    pub fn prefetch_span(&self, node: NodeId, clock: &mut ThreadClock, first: PageId, pages: u64) {
        let node_ref = self.cluster.node(node);
        for k in 0..pages {
            let page = PageId(first.0 + k);
            let frame = self.store.frame(node, page);
            if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
                continue;
            }
            match self.kind {
                ProtocolKind::JavaAd => {
                    let unprotect = frame.ad_mode() == AdMode::Protect;
                    self.fetch_page_adaptive_inner(
                        node,
                        node_ref,
                        clock,
                        page,
                        &frame,
                        unprotect,
                        (pages - k) as usize,
                        false,
                        false,
                    );
                }
                _ => self.fetch_page(
                    node,
                    node_ref,
                    clock,
                    page,
                    &frame,
                    self.kind == ProtocolKind::JavaPf,
                    false,
                ),
            }
        }
    }

    /// Invalidate all cached (non-home) pages on `node`: the
    /// `invalidateCache` primitive of Table 2, executed on monitor entry.
    ///
    /// Pages holding unflushed modifications are flushed first so that no
    /// update can be lost by an acquire that precedes the matching release.
    /// Under `java_pf` the cached region is re-protected, which costs one
    /// `mprotect` call (§3.3).
    pub fn invalidate_cache(&self, node: NodeId, clock: &mut ThreadClock) {
        let node_ref = self.cluster.node(node);
        NodeStats::bump(&node_ref.stats.cache_invalidations);

        let adaptive = self.kind == ProtocolKind::JavaAd;
        // With online tuning the node switches on its own current marks;
        // otherwise on the configured ones.
        let (hi, lo) = if adaptive && self.online {
            self.adaptive_thresholds_on(node)
        } else {
            (self.ad.hi, self.ad.lo)
        };
        let mut cached: Vec<(PageId, Arc<PageFrame>)> = Vec::new();
        let mut switches = 0u64;
        let mut wasted = 0u64;
        self.store.for_each_frame(node, |page, frame| {
            if frame.is_home() {
                return;
            }
            if adaptive {
                // The invalidation boundary is the one place a page may
                // change detection technique: its copy is dropped here, so
                // no access can observe a half-switched page.  Every
                // materialised frame closes its epoch (absent frames record
                // a zero epoch, which resets their prefetch streak).  The
                // decision runs on the smoothed accesses-per-epoch so one
                // spiky epoch cannot flip the page.
                let avg = frame.ad_rotate_epoch();
                if frame.ad_take_wasted_prefetch() {
                    wasted += 1;
                }
                match frame.ad_mode() {
                    AdMode::Check if avg >= hi => {
                        frame.ad_set_mode(AdMode::Protect);
                        switches += 1;
                    }
                    AdMode::Protect if avg <= lo => {
                        frame.ad_set_mode(AdMode::Check);
                        switches += 1;
                    }
                    _ => {}
                }
            }
            if frame.is_present() {
                cached.push((page, self.store.frame(node, page)));
            }
        });

        let machine = self.cluster.machine();
        if switches > 0 {
            NodeStats::bump_by(&node_ref.stats.protocol_switches, switches);
            clock.advance(machine.protocol_switch().times(switches));
        }
        if wasted > 0 {
            NodeStats::bump_by(&node_ref.stats.pages_prefetch_wasted, wasted);
        }
        if adaptive && self.online {
            self.tune_thresholds(node, node_ref);
        }
        if cached.is_empty() {
            return;
        }

        // Flush any pending modifications before dropping the copies
        // (batched like `updateMainMemory`'s flush).
        let dirty: Vec<(PageId, Arc<PageFrame>)> = cached
            .iter()
            .filter(|(_, frame)| frame.has_dirty_slots())
            .map(|(page, frame)| (*page, Arc::clone(frame)))
            .collect();
        self.flush_frames(node, node_ref, clock, &dirty);
        // A migration grant may have promoted one of these frames to home
        // mid-invalidation; re-filter so the new main-memory copy survives.
        cached.retain(|(_, frame)| !frame.is_home());
        if cached.is_empty() {
            return;
        }

        let mut reprotected = false;
        let mut hint_waste = 0u64;
        let mut abandoned: Vec<PageId> = Vec::new();
        for (page, frame) in &cached {
            let reprotect = match self.kind {
                ProtocolKind::JavaIc => false,
                ProtocolKind::JavaPf => true,
                // Only protection-detected pages need their access rights
                // revoked; check-mode pages are re-detected in software.
                ProtocolKind::JavaAd => frame.ad_mode() == AdMode::Protect,
            };
            reprotected |= reprotect;
            // A hinted ticket still pending here means the predicted demand
            // miss never came: the hint was wasted.  The counter feeds the
            // requester-side throttle in `issue_hint_fetches`, and the page
            // is remembered so the ticket can be re-armed below.
            if frame.inflight_is_hinted() {
                hint_waste += 1;
                abandoned.push(*page);
            }
            frame.invalidate(reprotect);
        }
        if hint_waste > 0 {
            NodeStats::bump_by(&node_ref.stats.hinted_fetches_wasted, hint_waste);
        }

        let n = cached.len() as u64;
        NodeStats::bump_by(&node_ref.stats.pages_invalidated, n);
        clock.advance(
            machine
                .cpu
                .cycles(machine.dsm.invalidate_cycles_per_page * n as f64),
        );
        if reprotected {
            // One mprotect call covers the (iso-address, hence contiguous-ish)
            // cached region that is being re-protected.
            NodeStats::bump(&node_ref.stats.mprotect_calls);
            clock.advance(machine.dsm.mprotect_call);
        }

        // Re-arm abandoned hint tickets: the directory predicted these pages
        // would be demanded and the node *was* holding overlapped fetches for
        // them, so the next epoch very likely misses on them again.  Re-issue
        // the split transactions now, at the acquire, so those misses complete
        // in-flight RPCs.  The accuracy throttle inside `issue_hint_fetches`
        // sees the waste recorded above and suppresses re-issue on nodes
        // whose hints are not earning their keep.
        if !abandoned.is_empty()
            && self.transport.prefetch_hints
            && self.transport.overlapped_fetches
        {
            abandoned.sort_unstable_by_key(|p| p.0);
            abandoned.dedup();
            let mut runs: Vec<HintRun> = Vec::new();
            for page in abandoned {
                match runs.last_mut() {
                    Some((first, len)) if first.0 + *len as u64 == page.0 && *len < u16::MAX => {
                        *len += 1;
                    }
                    _ => runs.push((page, 1)),
                }
            }
            let reissued = self.issue_hint_fetches(node, node_ref, clock, &runs);
            if reissued > 0 {
                NodeStats::bump_by(&node_ref.stats.hinted_fetches_reissued, reissued);
            }
        }
    }

    /// Flush all locally recorded modifications to the corresponding home
    /// nodes: the `updateMainMemory` primitive of Table 2, executed on
    /// monitor exit.
    pub fn update_main_memory(&self, node: NodeId, clock: &mut ThreadClock) {
        let node_ref = self.cluster.node(node);
        let dirty = self.collect_dirty(node);
        self.flush_frames(node, node_ref, clock, &dirty);
    }

    /// All non-home frames of `node` holding unflushed modifications, in
    /// page-id order (the shape `flush_frames` batches over).
    fn collect_dirty(&self, node: NodeId) -> Vec<(PageId, Arc<PageFrame>)> {
        let mut dirty: Vec<(PageId, Arc<PageFrame>)> = Vec::new();
        self.store.for_each_frame(node, |page, frame| {
            if !frame.is_home() && frame.has_dirty_slots() {
                dirty.push((page, self.store.frame(node, page)));
            }
        });
        dirty
    }

    /// Deferred-release form of [`DsmSystem::update_main_memory`]: the diff
    /// batches are issued as split transactions, the caller is charged only
    /// the issue path, and the returned [`DeferredFlush`] names the virtual
    /// instant the last flush RPC completes.  The caller (the monitor layer)
    /// must make the *next acquire of the same monitor* merge that instant —
    /// that is exactly the happens-before edge the JMM requires of a
    /// release, so deferring to the hand-off is semantics-preserving.
    ///
    /// With [`TransportConfig::deferred_flush`] disabled (or nothing dirty)
    /// this falls back to the blocking flush and returns `None`.
    pub fn update_main_memory_deferred(
        &self,
        node: NodeId,
        clock: &mut ThreadClock,
    ) -> Option<DeferredFlush> {
        if !self.transport.deferred_flush {
            self.update_main_memory(node, clock);
            return None;
        }
        let node_ref = self.cluster.node(node);
        let dirty = self.collect_dirty(node);
        let completion = self.flush_frames_inner(node, node_ref, clock, &dirty, true)?;
        Some(DeferredFlush {
            issue: clock.now(),
            completion,
        })
    }

    /// True if `node` currently holds an accessible copy of `page`.
    pub fn is_cached(&self, node: NodeId, page: PageId) -> bool {
        self.store.with_frame(node, page, |f| {
            f.is_home() || (f.is_present() && !f.is_protected())
        })
    }

    /// Number of non-home pages currently cached (present) on `node`.
    pub fn pages_cached_on(&self, node: NodeId) -> usize {
        let mut n = 0;
        self.store.for_each_frame(node, |_, f| {
            if !f.is_home() && f.is_present() {
                n += 1;
            }
        });
        n
    }

    // ----- internal helpers ------------------------------------------------

    /// Apply the protocol's access-detection policy for one access.
    ///
    /// `bulk_pages` is the number of consecutive pages (including this one)
    /// the caller is certain to touch — 1 for scalar `get`/`put`, the
    /// remaining page span for bulk slice transfers.  Only `java_ad`
    /// consults it, to size batched fetches.
    fn ensure_access(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        bulk_pages: usize,
    ) {
        // First real use of an overlapped fetch completes the transaction:
        // merge the completion timestamp (the residual latency) before the
        // access proceeds.
        self.complete_inflight(node_ref, clock, frame);
        match self.kind {
            ProtocolKind::JavaIc => {
                // Every access pays the in-line locality check, local or not.
                NodeStats::bump(&node_ref.stats.locality_checks);
                clock.advance(self.cluster.machine().cpu.locality_check());
                if !frame.is_home() && !frame.is_present() {
                    self.fetch_page(node, node_ref, clock, page, frame, false, true);
                }
            }
            ProtocolKind::JavaPf => {
                if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
                    // Raw memory access: zero protocol overhead.
                    return;
                }
                // Simulated SIGSEGV: fault cost, fetch, then mprotect to open
                // the page for subsequent accesses.
                NodeStats::bump(&node_ref.stats.page_faults);
                clock.advance(self.cluster.machine().dsm.page_fault);
                self.fetch_page(node, node_ref, clock, page, frame, true, true);
            }
            ProtocolKind::JavaAd => {
                if frame.is_home() {
                    // Home pages are never protected and need no detection —
                    // the pf mechanics `java_ad` builds on give them raw
                    // access for free.
                    return;
                }
                frame.ad_record_access();
                match frame.ad_mode() {
                    AdMode::Check => {
                        // `java_ic` mechanics for this page.
                        NodeStats::bump(&node_ref.stats.locality_checks);
                        clock.advance(self.cluster.machine().cpu.locality_check());
                        if !frame.is_present() {
                            self.fetch_page_adaptive(
                                node, node_ref, clock, page, frame, false, bulk_pages, true,
                            );
                        }
                    }
                    AdMode::Protect => {
                        // `java_pf` mechanics for this page.
                        if frame.is_present() && !frame.is_protected() {
                            return;
                        }
                        NodeStats::bump(&node_ref.stats.page_faults);
                        clock.advance(self.cluster.machine().dsm.page_fault);
                        self.fetch_page_adaptive(
                            node, node_ref, clock, page, frame, true, bulk_pages, true,
                        );
                    }
                }
            }
        }
    }

    /// Bring a page into the local cache from its home node.
    ///
    /// `demand` distinguishes a fetch triggered by an access (the access is
    /// the first use, so the transaction completes on the spot and the full
    /// round trip is charged, exactly as the blocking transport does) from
    /// an explicit prefetch, which under the overlapped transport records an
    /// in-flight ticket and lets the caller keep computing.
    #[allow(clippy::too_many_arguments)]
    fn fetch_page(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        unprotect_after: bool,
        demand: bool,
    ) {
        let guard = frame.fetch_lock().lock();
        if frame.is_present() && !frame.is_protected() {
            // Another thread on this node completed the load while we were
            // waiting on the fetch lock.
            drop(guard);
            return;
        }
        NodeStats::bump(&node_ref.stats.page_loads);
        let home = self.store.home_of(page);
        let payload = encode_page_request(page);
        let machine = self.cluster.machine();
        let (bytes, mut completion) =
            self.rpc_split_or_die(clock, node, home, self.page_fetch, &payload);
        // Hidden latency is measured from the end of the issue path: that is
        // the instant a blocking transport would have started stalling.
        let issue = clock.now();
        let (data, hints) = split_fetch_reply(&bytes, 1);
        if frame.is_home() {
            // A concurrent migration grant promoted this frame to home while
            // the fetch was in flight: the frame already holds the
            // authoritative copy, so installing the (pre-migration) snapshot
            // would erase newer home writes.  Keep the round trip charged —
            // it really happened — and drop the stale bytes.
            drop(guard);
            clock.merge(completion);
            return;
        }
        frame.install_copy(data);

        if unprotect_after {
            NodeStats::bump(&node_ref.stats.mprotect_calls);
        }
        if demand || !self.transport.overlapped_fetches {
            drop(guard);
            clock.merge(completion);
            if unprotect_after {
                clock.advance(machine.dsm.mprotect_call);
            }
        } else {
            // The mprotect that opens the page happens when the copy lands,
            // so it extends the transaction rather than the issue path.
            if unprotect_after {
                completion += machine.dsm.mprotect_call;
            }
            frame.begin_inflight(issue.as_ps(), completion.as_ps());
            drop(guard);
        }
        self.issue_hint_fetches(node, node_ref, clock, &hints);
    }

    /// Convert prefetch-directory hints carried on a fetch reply into
    /// split-transaction tickets: issue one overlapped single-page fetch per
    /// absent hinted page, so the later demand miss completes an RPC that is
    /// already in flight instead of paying a fresh round trip.
    ///
    /// Hint conversion is throttled by its own measured accuracy — once more
    /// than 1/16 of the node's hint-driven fetches turn out wasted
    /// (invalidated untouched), further hints are ignored until the accuracy
    /// recovers — and hint-issued requests are tagged so their replies never
    /// carry further hints (no cascades).
    ///
    /// Returns the number of overlapped fetches actually issued (pages that
    /// were present, home, contended or throttled issue nothing).
    fn issue_hint_fetches(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        hints: &[HintRun],
    ) -> u64 {
        let mut issued_now = 0u64;
        if hints.is_empty() || !self.transport.overlapped_fetches || !self.transport.prefetch_hints
        {
            return issued_now;
        }
        let machine = self.cluster.machine();
        let num_pages = self.store.allocator().num_pages();
        for &(first, run) in hints {
            for k in 0..run as u64 {
                let page = PageId(first.0 + k);
                if page.index() >= num_pages {
                    break;
                }
                let issued = node_ref.stats.hinted_fetches_issued.load(Ordering::Relaxed);
                let wasted = node_ref.stats.hinted_fetches_wasted.load(Ordering::Relaxed);
                // The low floor makes the throttle bite after a single early
                // waste: a node must prove hint accuracy on a healthy issued
                // count before any further misprediction is tolerated.
                if wasted.saturating_mul(16) > issued.max(8) {
                    return issued_now;
                }
                let frame = self.store.frame(node, page);
                if frame.is_home() || frame.is_present() {
                    continue;
                }
                // A contended fetch lock means another thread is already
                // loading the page; the hint has nothing left to add.
                let Some(guard) = frame.fetch_lock().try_lock() else {
                    continue;
                };
                if frame.is_present() {
                    drop(guard);
                    continue;
                }
                let unprotect = match self.kind {
                    ProtocolKind::JavaIc => false,
                    ProtocolKind::JavaPf => true,
                    ProtocolKind::JavaAd => frame.ad_mode() == AdMode::Protect,
                };
                NodeStats::bump(&node_ref.stats.page_loads);
                NodeStats::bump(&node_ref.stats.hinted_fetches_issued);
                issued_now += 1;
                let home = self.store.home_of(page);
                let payload = encode_page_request_nohint(page);
                let (bytes, mut completion) =
                    self.rpc_split_or_die(clock, node, home, self.page_fetch, &payload);
                let issue = clock.now();
                if frame.is_home() {
                    // Concurrent migration promoted the frame (see
                    // `fetch_page`): charge the round trip, drop the bytes.
                    drop(guard);
                    clock.merge(completion);
                    continue;
                }
                let (data, _) = split_fetch_reply(&bytes, 1);
                frame.install_copy(data);
                if unprotect {
                    NodeStats::bump(&node_ref.stats.mprotect_calls);
                    completion += machine.dsm.mprotect_call;
                }
                frame.begin_inflight_hinted(issue.as_ps(), completion.as_ps());
                drop(guard);
            }
        }
        issued_now
    }

    /// `java_ad` fetch path: bring `page` into the cache and opportunistically
    /// batch a run of contiguous successor pages into the same RPC.
    ///
    /// A successor page joins the batch only when it shares the demanded
    /// page's home, is currently absent, and is either *certain* to be
    /// touched (it lies inside the bulk access that triggered the miss) or
    /// *predicted* to be touched (its epoch history shows at least
    /// `min_prefetch_streak` consecutive re-accessed epochs).  The second
    /// condition is what keeps batched fetches from inflating page loads:
    /// only pages with demonstrated per-epoch re-access are speculated on.
    #[allow(clippy::too_many_arguments)]
    fn fetch_page_adaptive(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        unprotect_after: bool,
        bulk_pages: usize,
        demand: bool,
    ) {
        self.fetch_page_adaptive_inner(
            node,
            node_ref,
            clock,
            page,
            frame,
            unprotect_after,
            bulk_pages,
            demand,
            true,
        );
    }

    /// [`DsmSystem::fetch_page_adaptive`] with explicit control over
    /// history-driven speculation (suppressed by span prefetches).
    #[allow(clippy::too_many_arguments)]
    fn fetch_page_adaptive_inner(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        unprotect_after: bool,
        bulk_pages: usize,
        demand: bool,
        speculate: bool,
    ) {
        let guard = frame.fetch_lock().lock();
        if frame.is_present() && !frame.is_protected() {
            // Another thread on this node completed the load while we were
            // waiting on the fetch lock.
            drop(guard);
            return;
        }
        let home = self.store.home_of(page);

        // Speculation is throttled by its own measured accuracy: once more
        // than 1/16 of the node's *speculative* prefetches turn out wasted
        // (invalidated untouched), only pages certain to be accessed may
        // ride along.  Certain (bulk-covered) riders are deliberately not in
        // the denominator — they can never be wasted and would otherwise
        // dilute the bound.  This keeps a mispredicting workload (e.g.
        // dynamic work reassignment) from inflating page traffic noticeably.
        let speculated = node_ref
            .stats
            .pages_prefetch_speculative
            .load(Ordering::Relaxed);
        let waste = node_ref.stats.pages_prefetch_wasted.load(Ordering::Relaxed);
        let may_speculate = speculate && waste.saturating_mul(16) <= speculated.max(16);

        // Candidate phase: grow the contiguous window page by page.
        let num_pages = self.store.allocator().num_pages();
        let mut candidates: Vec<(Arc<PageFrame>, bool)> = Vec::new();
        for k in 1..self.ad.max_batch as u64 {
            let q = PageId(page.0 + k);
            if q.index() >= num_pages || self.store.home_of(q) != home {
                break;
            }
            let qf = self.store.frame(node, q);
            if qf.is_home() || qf.is_present() {
                break;
            }
            let certain = (k as usize) < bulk_pages;
            let predicted = may_speculate
                && qf.ad_epoch_streak() >= self.ad.min_streak
                && qf.ad_last_epoch_accesses() > 0;
            if !certain && !predicted {
                break;
            }
            candidates.push((qf, !certain));
        }
        // Lock phase: keep the prefix whose fetch locks are free right now;
        // a contended or concurrently-installed page ends the run (the batch
        // must stay contiguous).
        let mut guards = Vec::with_capacity(candidates.len());
        for (qf, _) in &candidates {
            let Some(g) = qf.fetch_lock().try_lock() else {
                break;
            };
            if qf.is_present() {
                break;
            }
            guards.push(g);
        }
        let batch = guards.len();
        let count = 1 + batch;

        let machine = self.cluster.machine();
        NodeStats::bump_by(&node_ref.stats.page_loads, count as u64);
        let payload = if count == 1 {
            encode_page_request(page)
        } else {
            NodeStats::bump(&node_ref.stats.batched_fetches);
            NodeStats::bump_by(&node_ref.stats.pages_prefetched, (count - 1) as u64);
            clock.advance(machine.batch_request_overhead((count - 1) as u64));
            encode_page_batch_request(page, count as u32)
        };
        let (bytes, wire_completion) =
            self.rpc_split_or_die(clock, node, home, self.page_fetch, &payload);
        let issue = clock.now();
        let (data, hints) = split_fetch_reply(&bytes, count);
        // A concurrent migration grant may have promoted any frame of the
        // run to home while the fetch was in flight; such a frame already
        // holds the authoritative copy and must not be overwritten with the
        // pre-migration snapshot (see `fetch_page`).
        let promoted = frame.is_home();
        if !promoted {
            frame.install_copy(&data[0..PAGE_BYTES]);
        }
        // Installing a rider that was protection-detected clears its access
        // protection, which costs an mprotect just as the demanded page's
        // fault path does — without it java_ad's modeled cost would be
        // understated for exactly the pages the prefetcher targets.
        let mut riders_protected = false;
        let mut speculative_riders = 0u64;
        for (i, (qf, speculative)) in candidates.iter().take(batch).enumerate() {
            if qf.is_home() {
                continue;
            }
            riders_protected |= qf.ad_mode() == AdMode::Protect;
            qf.install_copy(&data[(i + 1) * PAGE_BYTES..(i + 2) * PAGE_BYTES]);
            if *speculative {
                qf.ad_mark_prefetched();
                speculative_riders += 1;
            }
        }
        if speculative_riders > 0 {
            NodeStats::bump_by(
                &node_ref.stats.pages_prefetch_speculative,
                speculative_riders,
            );
        }

        let needs_mprotect = unprotect_after || riders_protected;
        if needs_mprotect {
            // One mprotect call opens the whole contiguous run.
            NodeStats::bump(&node_ref.stats.mprotect_calls);
        }
        let overlapped = self.transport.overlapped_fetches;
        if demand || !overlapped {
            clock.merge(wire_completion);
            if needs_mprotect {
                clock.advance(machine.dsm.mprotect_call);
            }
            if overlapped {
                // The demanded page completed here, but its riders are live
                // split transactions finishing with this batch.  The thread
                // stalled for the whole round trip on the demanded page, so
                // the riders hid nothing — their tickets carry `done` as
                // both issue and completion (zero residual, zero hidden),
                // and only make a slower thread that touches a rider first
                // wait until the batch had actually arrived.
                let done = clock.now();
                for (qf, _) in candidates.iter().take(batch) {
                    if !qf.is_home() {
                        qf.begin_inflight(done.as_ps(), done.as_ps());
                    }
                }
            }
        } else {
            let completion = if needs_mprotect {
                wire_completion + machine.dsm.mprotect_call
            } else {
                wire_completion
            };
            if !promoted {
                frame.begin_inflight(issue.as_ps(), completion.as_ps());
            }
            for (qf, _) in candidates.iter().take(batch) {
                if !qf.is_home() {
                    qf.begin_inflight(issue.as_ps(), completion.as_ps());
                }
            }
        }
        drop(guards);
        drop(guard);
        self.issue_hint_fetches(node, node_ref, clock, &hints);
    }

    /// Complete an in-flight split fetch transaction on its first real use:
    /// merge the completion timestamp (charging the residual latency) and
    /// account the part of the round trip that compute already covered.
    fn complete_inflight(&self, node_ref: &Node, clock: &mut ThreadClock, frame: &PageFrame) {
        let Some((issue_ps, completion_ps, hinted)) = frame.take_inflight() else {
            return;
        };
        if hinted {
            // This demand miss finished an RPC the prefetch directory had
            // already put in flight.
            NodeStats::bump(&node_ref.stats.hinted_fetches_completed);
        }
        let hidden_ps = clock
            .now()
            .as_ps()
            .min(completion_ps)
            .saturating_sub(issue_ps);
        if hidden_ps > 0 {
            let cycles = hidden_ps as f64 / self.cluster.machine().cpu.ps_per_cycle();
            NodeStats::bump_by(
                &node_ref.stats.fetch_overlap_cycles_hidden,
                (cycles as u64).max(1),
            );
        }
        clock.merge(VTime::from_ps(completion_ps));
    }

    /// Online threshold tuning (see [`AdaptiveParams::online_thresholds`]):
    /// every [`TUNING_WINDOW`] invalidation episodes, look at how many
    /// detection-mode switches and wasted prefetches the node accumulated.
    /// A flapping or mispredicting node doubles its `hi` mark and halves its
    /// `lo` mark — demanding much stronger evidence before the next switch —
    /// bounded to [`TUNING_SPAN`]× the configured band; a clean window
    /// relaxes the marks halfway back towards the configured ones.
    fn tune_thresholds(&self, node: NodeId, node_ref: &Node) {
        let t = &self.tuning[node.index()];
        let epochs = t.window_epochs.fetch_add(1, Ordering::Relaxed) + 1;
        if epochs < TUNING_WINDOW {
            return;
        }
        t.window_epochs.store(0, Ordering::Relaxed);
        let switches_now = node_ref.stats.protocol_switches.load(Ordering::Relaxed);
        let waste_now = node_ref.stats.pages_prefetch_wasted.load(Ordering::Relaxed);
        let d_switches =
            switches_now.saturating_sub(t.switches_base.swap(switches_now, Ordering::Relaxed));
        let d_waste = waste_now.saturating_sub(t.waste_base.swap(waste_now, Ordering::Relaxed));
        let (hi0, lo0) = (self.ad.hi, self.ad.lo);
        let hi = t.hi.load(Ordering::Relaxed);
        let lo = t.lo.load(Ordering::Relaxed);
        // The EWMA smoothing already caps how fast a single page can flap
        // (crossing both marks takes ≥ 4 epochs), so even two switches per
        // window is sustained mode churn rather than one-off adaptation.
        if d_switches >= TUNING_WINDOW / 4 || d_waste >= TUNING_WINDOW {
            let new_hi = (hi.saturating_mul(2)).min(hi0.saturating_mul(TUNING_SPAN));
            let new_lo = (lo / 2).max(lo0 / TUNING_SPAN);
            t.hi.store(new_hi, Ordering::Relaxed);
            t.lo.store(new_lo.min(new_hi - 1), Ordering::Relaxed);
        } else if d_switches == 0 && d_waste == 0 && (hi != hi0 || lo != lo0) {
            let new_hi = hi0 + (hi - hi0) / 2;
            let new_lo = lo + (lo0.saturating_sub(lo)).div_ceil(2);
            t.hi.store(new_hi, Ordering::Relaxed);
            t.lo.store(new_lo.min(new_hi - 1), Ordering::Relaxed);
        }
    }

    /// Flush the dirty slots of `dirty` (page-id ordered) to their home
    /// nodes, coalescing runs of contiguous same-home pages into one diff
    /// RPC (up to [`TransportConfig::max_flush_batch_pages`]) exactly like
    /// batched page fetches coalesce the opposite direction.
    fn flush_frames(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        dirty: &[(PageId, Arc<PageFrame>)],
    ) {
        self.flush_frames_inner(node, node_ref, clock, dirty, false);
    }

    /// [`DsmSystem::flush_frames`] with an explicit completion mode: with
    /// `deferred` set, each diff RPC is issued as a split transaction (only
    /// the issue path is charged to `clock`) and the watermark of the batch
    /// completion times is returned; blocking mode merges each completion on
    /// the spot and returns `None`.
    fn flush_frames_inner(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        dirty: &[(PageId, Arc<PageFrame>)],
        deferred: bool,
    ) -> Option<VTime> {
        let machine = self.cluster.machine();
        let max_batch = self.transport.max_flush_batch_pages.max(1);
        let mut watermark: Option<VTime> = None;
        let mut i = 0usize;
        while i < dirty.len() {
            let (first, _) = dirty[i];
            let home = self.store.home_of(first);
            let mut j = i + 1;
            while j < dirty.len()
                && j - i < max_batch
                && dirty[j].0 .0 == first.0 + (j - i) as u64
                && self.store.home_of(dirty[j].0) == home
            {
                j += 1;
            }
            let per_page: Vec<Vec<DiffEntry>> =
                dirty[i..j].iter().map(|(_, f)| f.take_dirty()).collect();
            let slots: usize = per_page.iter().map(Vec::len).sum();
            if slots == 0 {
                // Every page in the run was flushed by someone else already.
                i = j;
                continue;
            }
            let pages = per_page.len();
            NodeStats::bump(&node_ref.stats.diff_messages);
            NodeStats::bump_by(&node_ref.stats.diff_slots_flushed, slots as u64);
            clock.advance(
                machine
                    .cpu
                    .cycles(machine.dsm.diff_record_cycles_per_slot * slots as f64),
            );
            let payload = if pages == 1 {
                encode_diff(first, &per_page[0])
            } else {
                NodeStats::bump(&node_ref.stats.batched_flushes);
                clock.advance(machine.batch_flush_overhead((pages - 1) as u64));
                encode_diff_batch(first, &per_page)
            };
            NodeStats::bump_by(&node_ref.stats.diff_bytes, payload.len() as u64);
            let (reply, completion) =
                self.rpc_split_or_die(clock, node, home, self.diff_apply, &payload);
            if deferred {
                // Hand the transaction to the deferred queue: the caller
                // stores the completion watermark on the releasing monitor
                // and the next acquire of that monitor merges it.
                NodeStats::bump(&node_ref.stats.deferred_flushes);
                watermark = Some(watermark.map_or(completion, |w| w.max(completion)));
            } else {
                clock.merge(completion);
            }
            if decode_migration_grant(&reply).is_some() {
                // The home handler promoted this node's frame already; the
                // grant reply is the accounting record of the hand-over.
                NodeStats::bump(&node_ref.stats.pages_migrated);
            }
            i = j;
        }
        watermark
    }
}

impl std::fmt::Debug for DsmSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmSystem")
            .field("protocol", &self.kind.name())
            .field("nodes", &self.cluster.num_nodes())
            .field("pages", &self.store.allocator().num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperion_model::myrinet_200;
    use hyperion_pm2::IsoAllocator;

    struct Fixture {
        cluster: Arc<Cluster>,
        alloc: Arc<IsoAllocator>,
        dsm: Arc<DsmSystem>,
    }

    fn fixture(nodes: usize, kind: ProtocolKind) -> Fixture {
        fixture_with(
            nodes,
            kind,
            &AdaptiveParams::default(),
            &TransportConfig::default(),
        )
    }

    fn fixture_with(
        nodes: usize,
        kind: ProtocolKind,
        params: &AdaptiveParams,
        transport: &TransportConfig,
    ) -> Fixture {
        let cluster = Cluster::new(myrinet_200().machine, nodes);
        let alloc = Arc::new(IsoAllocator::new(nodes));
        let store = DsmStore::new(Arc::clone(&alloc), nodes);
        let dsm = DsmSystem::with_config(Arc::clone(&cluster), store, kind, params, transport);
        Fixture {
            cluster,
            alloc,
            dsm,
        }
    }

    #[test]
    fn protocol_kind_names_match_paper() {
        assert_eq!(ProtocolKind::JavaIc.name(), "java_ic");
        assert_eq!(ProtocolKind::JavaPf.name(), "java_pf");
        assert_eq!(ProtocolKind::JavaAd.name(), "java_ad");
        assert_eq!(ProtocolKind::all().len(), 2);
        assert_eq!(ProtocolKind::all_extended().len(), 3);
        assert_eq!(format!("{}", ProtocolKind::JavaPf), "java_pf");
        assert_eq!(format!("{}", ProtocolKind::JavaAd), "java_ad");
    }

    #[test]
    fn home_access_round_trips_values() {
        for kind in ProtocolKind::all() {
            let f = fixture(1, kind);
            let addr = f.alloc.alloc(8, NodeId(0));
            let mut clock = ThreadClock::new();
            f.dsm.put(NodeId(0), &mut clock, addr.offset(3), 42);
            assert_eq!(f.dsm.get(NodeId(0), &mut clock, addr.offset(3)), 42);
            assert_eq!(f.dsm.get(NodeId(0), &mut clock, addr.offset(4)), 0);
        }
    }

    #[test]
    fn ic_charges_checks_even_on_home_pages_pf_does_not() {
        let ic = fixture(1, ProtocolKind::JavaIc);
        let pf = fixture(1, ProtocolKind::JavaPf);
        let a_ic = ic.alloc.alloc(4, NodeId(0));
        let a_pf = pf.alloc.alloc(4, NodeId(0));

        let mut c_ic = ThreadClock::new();
        let mut c_pf = ThreadClock::new();
        for i in 0..100 {
            ic.dsm.put(NodeId(0), &mut c_ic, a_ic, i);
            pf.dsm.put(NodeId(0), &mut c_pf, a_pf, i);
        }
        assert_eq!(ic.cluster.node_stats(NodeId(0)).locality_checks, 100);
        assert_eq!(pf.cluster.node_stats(NodeId(0)).locality_checks, 0);
        assert_eq!(pf.cluster.node_stats(NodeId(0)).page_faults, 0);
        // The in-line check protocol is strictly slower on an all-local run.
        assert!(c_ic.now() > c_pf.now());
        assert_eq!(c_pf.now(), VTime::ZERO);
    }

    #[test]
    fn remote_read_fetches_page_and_sees_home_values() {
        for kind in ProtocolKind::all_extended() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            // The home node writes a value directly.
            let mut home_clock = ThreadClock::new();
            f.dsm.put(NodeId(1), &mut home_clock, addr, 1234);

            // Node 0 reads it remotely.
            let mut clock = ThreadClock::new();
            let v = f.dsm.get(NodeId(0), &mut clock, addr);
            assert_eq!(v, 1234, "{kind:?}");

            let s0 = f.cluster.node_stats(NodeId(0));
            assert_eq!(s0.page_loads, 1);
            match kind {
                ProtocolKind::JavaIc => {
                    assert_eq!(s0.page_faults, 0);
                    assert_eq!(s0.mprotect_calls, 0);
                    assert_eq!(s0.locality_checks, 1);
                }
                ProtocolKind::JavaPf => {
                    assert_eq!(s0.page_faults, 1);
                    assert_eq!(s0.mprotect_calls, 1);
                    assert_eq!(s0.locality_checks, 0);
                }
                // A fresh page starts in check mode: ic mechanics.
                ProtocolKind::JavaAd => {
                    assert_eq!(s0.page_faults, 0);
                    assert_eq!(s0.mprotect_calls, 0);
                    assert_eq!(s0.locality_checks, 1);
                }
            }
            // Second read hits the cache: no further page loads.
            let before = clock.now();
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
            match kind {
                ProtocolKind::JavaIc | ProtocolKind::JavaAd => assert!(clock.now() > before),
                ProtocolKind::JavaPf => assert_eq!(clock.now(), before),
            }
        }
    }

    #[test]
    fn remote_miss_is_more_expensive_under_pf_but_hits_are_free() {
        let ic = fixture(2, ProtocolKind::JavaIc);
        let pf = fixture(2, ProtocolKind::JavaPf);
        let a_ic = ic.alloc.alloc(4, NodeId(1));
        let a_pf = pf.alloc.alloc(4, NodeId(1));

        let mut c_ic = ThreadClock::new();
        let mut c_pf = ThreadClock::new();
        let _ = ic.dsm.get(NodeId(0), &mut c_ic, a_ic);
        let _ = pf.dsm.get(NodeId(0), &mut c_pf, a_pf);
        // The pf miss pays the fault and the mprotect on top of the fetch.
        assert!(c_pf.now() > c_ic.now());
        let machine = pf.cluster.machine();
        assert!(c_pf.now() >= c_ic.now() + machine.dsm.page_fault);
    }

    #[test]
    fn prefetch_effect_neighbouring_object_on_same_page_is_free() {
        let f = fixture(2, ProtocolKind::JavaIc);
        // Two small objects allocated back to back share a page.
        let a = f.alloc.alloc(4, NodeId(1));
        let b = f.alloc.alloc(4, NodeId(1));
        assert_eq!(a.page(), b.page());
        let mut clock = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut clock, a);
        let _ = f.dsm.get(NodeId(0), &mut clock, b);
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
    }

    #[test]
    fn diff_flush_propagates_writes_to_home() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut w = ThreadClock::new();
            f.dsm.put(NodeId(0), &mut w, addr.offset(2), 99);
            // Before the flush the home still sees the old value.
            let mut h = ThreadClock::new();
            assert_eq!(f.dsm.get(NodeId(1), &mut h, addr.offset(2)), 0);
            // Flush.
            f.dsm.update_main_memory(NodeId(0), &mut w);
            assert_eq!(f.dsm.get(NodeId(1), &mut h, addr.offset(2)), 99);
            let s0 = f.cluster.node_stats(NodeId(0));
            assert_eq!(s0.diff_messages, 1);
            assert_eq!(s0.diff_slots_flushed, 1);
            // A second flush with nothing dirty sends nothing.
            f.dsm.update_main_memory(NodeId(0), &mut w);
            assert_eq!(f.cluster.node_stats(NodeId(0)).diff_messages, 1);
        }
    }

    #[test]
    fn invalidate_forces_refetch_and_charges_mprotect_only_under_pf() {
        for kind in ProtocolKind::all_extended() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut clock = ThreadClock::new();
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            assert!(f.dsm.is_cached(NodeId(0), addr.page()));
            assert_eq!(f.dsm.pages_cached_on(NodeId(0)), 1);

            let mprotect_before = f.cluster.node_stats(NodeId(0)).mprotect_calls;
            f.dsm.invalidate_cache(NodeId(0), &mut clock);
            assert!(!f.dsm.is_cached(NodeId(0), addr.page()));
            assert_eq!(f.dsm.pages_cached_on(NodeId(0)), 0);
            let s = f.cluster.node_stats(NodeId(0));
            assert_eq!(s.cache_invalidations, 1);
            assert_eq!(s.pages_invalidated, 1);
            match kind {
                ProtocolKind::JavaIc => assert_eq!(s.mprotect_calls, mprotect_before),
                ProtocolKind::JavaPf => assert_eq!(s.mprotect_calls, mprotect_before + 1),
                // One sparse access leaves the page in check mode, so no
                // re-protection is due.
                ProtocolKind::JavaAd => assert_eq!(s.mprotect_calls, mprotect_before),
            }

            // The next access loads the page again.
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 2);
        }
    }

    #[test]
    fn invalidate_flushes_pending_writes_first() {
        let f = fixture(2, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut clock, addr, 7);
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        // The home must have received the value even though the cache copy
        // was dropped.
        let mut h = ThreadClock::new();
        assert_eq!(f.dsm.get(NodeId(1), &mut h, addr), 7);
    }

    #[test]
    fn invalidate_on_clean_cacheless_node_is_cheap() {
        let f = fixture(2, ProtocolKind::JavaPf);
        let _ = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        assert_eq!(clock.now(), VTime::ZERO);
        assert_eq!(f.cluster.node_stats(NodeId(0)).mprotect_calls, 0);
    }

    #[test]
    fn explicit_load_into_cache_prefetches() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut clock = ThreadClock::new();
            f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
            assert!(f.dsm.is_cached(NodeId(0), addr.page()));
            let loads_before = f.cluster.node_stats(NodeId(0)).page_loads;
            let faults_before = f.cluster.node_stats(NodeId(0)).page_faults;
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            let s = f.cluster.node_stats(NodeId(0));
            assert_eq!(
                s.page_loads, loads_before,
                "{kind:?}: access after prefetch reloaded"
            );
            assert_eq!(s.page_faults, faults_before);
            // Loading an already-cached or home page is a no-op.
            f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
            f.dsm.load_into_cache(NodeId(1), &mut clock, addr.page());
            assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, loads_before);
            assert_eq!(f.cluster.node_stats(NodeId(1)).page_loads, 0);
        }
    }

    #[test]
    fn concurrent_threads_on_one_node_fetch_a_page_once() {
        let f = fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc(8, NodeId(1));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let dsm = &f.dsm;
                s.spawn(move || {
                    let mut clock = ThreadClock::new();
                    assert_eq!(dsm.get(NodeId(0), &mut clock, addr), 0);
                });
            }
        });
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
    }

    #[test]
    fn locality_classification_tracks_protocol_state() {
        let f = fixture(2, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc(8, NodeId(1));
        let page = addr.page();
        assert_eq!(f.dsm.locality(NodeId(1), page), Locality::Local);
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Remote);

        let mut clock = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::CachedRemote);

        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Remote);
        // The query itself never charges anything.
        let before = clock.now();
        let _ = f.dsm.locality(NodeId(0), page);
        assert_eq!(clock.now(), before);
        assert!(Locality::Local.is_resident());
        assert!(Locality::CachedRemote.is_resident());
        assert!(!Locality::Remote.is_resident());
        assert_eq!(format!("{}", Locality::CachedRemote), "cached-remote");
    }

    #[test]
    fn bulk_read_checks_once_per_page_under_ic() {
        let f = fixture(2, ProtocolKind::JavaIc);
        let slots = SLOTS_PER_PAGE * 2 + 10; // spans three pages
        let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
        let mut clock = ThreadClock::new();
        let mut out = vec![0u64; slots];
        f.dsm.read_slice(NodeId(0), &mut clock, addr, &mut out);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.locality_checks, 3, "one in-line check per touched page");
        assert_eq!(s.page_loads, 3);
        assert_eq!(s.field_reads, slots as u64);
        assert_eq!(s.bulk_reads, 1);

        // The element-wise loop pays one check per element on a fresh system.
        let g = fixture(2, ProtocolKind::JavaIc);
        let addr2 = g.alloc.alloc_page_aligned(slots, NodeId(1));
        let mut clock2 = ThreadClock::new();
        for i in 0..slots {
            let _ = g.dsm.get(NodeId(0), &mut clock2, addr2.offset(i as u64));
        }
        let t = g.cluster.node_stats(NodeId(0));
        assert_eq!(t.locality_checks, slots as u64);
        assert_eq!(t.page_loads, 3, "page traffic is identical either way");
        assert!(clock.now() < clock2.now(), "bulk must be cheaper under ic");
    }

    #[test]
    fn bulk_write_round_trips_and_flushes_field_granularity_diffs() {
        for kind in ProtocolKind::all() {
            let f = fixture(2, kind);
            let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE + 4, NodeId(1));
            let values: Vec<u64> = (0..SLOTS_PER_PAGE as u64 + 4).map(|v| v * 3 + 1).collect();
            let mut clock = ThreadClock::new();
            f.dsm.write_slice(NodeId(0), &mut clock, addr, &values);
            let mut out = vec![0u64; values.len()];
            f.dsm.read_slice(NodeId(0), &mut clock, addr, &mut out);
            assert_eq!(out, values, "{kind:?}");

            // Flush and verify the home sees every slot.
            f.dsm.update_main_memory(NodeId(0), &mut clock);
            let s = f.cluster.node_stats(NodeId(0));
            assert_eq!(s.diff_slots_flushed, values.len() as u64);
            assert_eq!(s.bulk_writes, 1);
            let mut home_clock = ThreadClock::new();
            let mut home = vec![0u64; values.len()];
            f.dsm
                .read_slice(NodeId(1), &mut home_clock, addr, &mut home);
            assert_eq!(home, values);
        }
    }

    #[test]
    fn bulk_ops_match_elementwise_results_exactly() {
        for kind in ProtocolKind::all() {
            let bulk = fixture(2, kind);
            let elem = fixture(2, kind);
            let n = 100usize;
            let ab = bulk.alloc.alloc(n, NodeId(1));
            let ae = elem.alloc.alloc(n, NodeId(1));
            let values: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(0x9E3779B9)).collect();

            let mut cb = ThreadClock::new();
            bulk.dsm.write_slice(NodeId(0), &mut cb, ab, &values);
            let mut out_b = vec![0u64; n];
            bulk.dsm.read_slice(NodeId(0), &mut cb, ab, &mut out_b);

            let mut ce = ThreadClock::new();
            for (i, v) in values.iter().enumerate() {
                elem.dsm.put(NodeId(0), &mut ce, ae.offset(i as u64), *v);
            }
            let out_e: Vec<u64> = (0..n)
                .map(|i| elem.dsm.get(NodeId(0), &mut ce, ae.offset(i as u64)))
                .collect();

            assert_eq!(out_b, out_e, "{kind:?}");
            let sb = bulk.cluster.node_stats(NodeId(0));
            let se = elem.cluster.node_stats(NodeId(0));
            assert_eq!(sb.field_reads, se.field_reads);
            assert_eq!(sb.field_writes, se.field_writes);
            assert_eq!(sb.page_loads, se.page_loads);
            assert!(sb.locality_checks <= se.locality_checks);
        }
    }

    #[test]
    fn field_granularity_flush_does_not_clobber_concurrent_home_writes() {
        // Node 0 writes slot 0, the home writes slot 1; after node 0 flushes,
        // both values must survive at the home (no false sharing).
        let f = fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut c0 = ThreadClock::new();
        let mut c1 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut c0, addr); // cache the page
        f.dsm.put(NodeId(1), &mut c1, addr.offset(1), 111); // home writes slot 1
        f.dsm.put(NodeId(0), &mut c0, addr.offset(0), 222); // cached write slot 0
        f.dsm.update_main_memory(NodeId(0), &mut c0);
        assert_eq!(f.dsm.get(NodeId(1), &mut c1, addr.offset(0)), 222);
        assert_eq!(f.dsm.get(NodeId(1), &mut c1, addr.offset(1)), 111);
    }

    // ----- java_ad -----------------------------------------------------------

    #[test]
    fn adaptive_home_accesses_are_free_like_pf() {
        let f = fixture(1, ProtocolKind::JavaAd);
        let addr = f.alloc.alloc(4, NodeId(0));
        let mut clock = ThreadClock::new();
        for i in 0..100 {
            f.dsm.put(NodeId(0), &mut clock, addr, i);
        }
        assert_eq!(clock.now(), VTime::ZERO);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.locality_checks, 0);
        assert_eq!(s.page_faults, 0);
    }

    #[test]
    fn adaptive_dense_page_switches_to_protection_and_back() {
        let f = fixture(2, ProtocolKind::JavaAd);
        let addr = f.alloc.alloc(8, NodeId(1));
        let (hi, lo) = f.dsm.adaptive_thresholds();
        assert!(hi > 1, "break-even must exceed one access");
        assert!(lo < hi);

        // Epoch 1: very dense re-access (checks all the way, ic mechanics).
        // 4·hi accesses push the smoothed average to exactly hi in a single
        // epoch (avg ← closed / 4 from a cold start).
        let mut clock = ThreadClock::new();
        for _ in 0..4 * hi {
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        }
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.locality_checks, 4 * hi);
        assert_eq!(s.page_faults, 0);
        assert_eq!(s.protocol_switches, 0);

        // The invalidation closes the epoch and flips the page: the cached
        // region is re-protected, which costs one mprotect like java_pf.
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.protocol_switches, 1);
        assert_eq!(s.mprotect_calls, 1);

        // Epoch 2: the page is protection-detected — one fault, then free.
        let checks_before = s.locality_checks;
        for _ in 0..hi {
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        }
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(
            s.locality_checks, checks_before,
            "no checks in protect mode"
        );
        assert_eq!(s.page_faults, 1);

        // Sparse epochs decay the smoothed average below the low-water mark
        // and flip the page back — the hysteresis means it takes a few.
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        for _ in 0..8 {
            if f.cluster.node_stats(NodeId(0)).protocol_switches == 2 {
                break;
            }
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            f.dsm.invalidate_cache(NodeId(0), &mut clock);
        }
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.protocol_switches, 2, "sparse access must flip it back");
        let faults_before = s.page_faults;
        let checks_before = s.locality_checks;
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.page_faults, faults_before, "back to ic mechanics");
        assert_eq!(s.locality_checks, checks_before + 1);
    }

    #[test]
    fn adaptive_bulk_read_batches_contiguous_pages_into_one_rpc() {
        let ad = fixture(2, ProtocolKind::JavaAd);
        let ic = fixture(2, ProtocolKind::JavaIc);
        let slots = SLOTS_PER_PAGE * 3; // three whole pages
        let a_ad = ad.alloc.alloc_page_aligned(slots, NodeId(1));
        let a_ic = ic.alloc.alloc_page_aligned(slots, NodeId(1));

        let mut c_ad = ThreadClock::new();
        let mut c_ic = ThreadClock::new();
        let mut out = vec![0u64; slots];
        ad.dsm.read_slice(NodeId(0), &mut c_ad, a_ad, &mut out);
        ic.dsm.read_slice(NodeId(0), &mut c_ic, a_ic, &mut out);

        let s_ad = ad.cluster.node_stats(NodeId(0));
        let s_ic = ic.cluster.node_stats(NodeId(0));
        // Identical page traffic, but one RPC instead of three.
        assert_eq!(s_ad.page_loads, 3);
        assert_eq!(s_ic.page_loads, 3);
        assert_eq!(s_ad.batched_fetches, 1);
        assert_eq!(s_ad.pages_prefetched, 2);
        assert_eq!(s_ad.rpc_requests, 1);
        assert_eq!(s_ic.rpc_requests, 3);
        assert!(
            c_ad.now() < c_ic.now(),
            "batching must beat three round trips: {} vs {}",
            c_ad.now(),
            c_ic.now()
        );
    }

    #[test]
    fn adaptive_history_prefetch_needs_a_stable_streak() {
        let f = fixture(2, ProtocolKind::JavaAd);
        let slots = SLOTS_PER_PAGE * 2;
        let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
        let second = addr.offset(SLOTS_PER_PAGE as u64);
        let mut clock = ThreadClock::new();

        // Three epochs of scalar access to both pages: no prefetch yet (the
        // streak is built from *completed* epochs), each page loads alone.
        for _ in 0..3 {
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            let _ = f.dsm.get(NodeId(0), &mut clock, second);
            f.dsm.invalidate_cache(NodeId(0), &mut clock);
        }
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.page_loads, 6);
        assert_eq!(s.batched_fetches, 0);

        // Fourth epoch: both pages now have a streak of 3, so the miss on
        // the first page pulls the second one into the same fetch.
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.batched_fetches, 1);
        assert_eq!(s.pages_prefetched, 1);
        assert_eq!(s.page_loads, 8);
        // The prefetched neighbour is served without any further load.
        let loads_before = s.page_loads;
        let _ = f.dsm.get(NodeId(0), &mut clock, second);
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, loads_before);
    }

    #[test]
    fn adaptive_batch_never_crosses_a_home_boundary() {
        let f = fixture(3, ProtocolKind::JavaAd);
        // Page on node 1 followed in the address space by a page on node 2.
        let a = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(1));
        let b = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(2));
        assert_eq!(b.page().index(), a.page().index() + 1);

        let mut clock = ThreadClock::new();
        // Build a streak on both pages.
        for _ in 0..3 {
            let _ = f.dsm.get(NodeId(0), &mut clock, a);
            let _ = f.dsm.get(NodeId(0), &mut clock, b);
            f.dsm.invalidate_cache(NodeId(0), &mut clock);
        }
        let _ = f.dsm.get(NodeId(0), &mut clock, a);
        // The neighbour is homed elsewhere: it must not ride along.
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.batched_fetches, 0);
        assert_eq!(s.pages_prefetched, 0);
    }

    #[test]
    fn adaptive_batch_pays_mprotect_for_protect_mode_riders() {
        let f = fixture(2, ProtocolKind::JavaAd);
        let slots = SLOTS_PER_PAGE * 2;
        let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
        let second = addr.offset(SLOTS_PER_PAGE as u64);
        let (hi, _) = f.dsm.adaptive_thresholds();
        let mut clock = ThreadClock::new();

        // Three epochs: the first page stays sparse (check mode), the second
        // is dense enough to flip to protection while building its streak.
        for _ in 0..3 {
            let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            for _ in 0..4 * hi {
                let _ = f.dsm.get(NodeId(0), &mut clock, second);
            }
            f.dsm.invalidate_cache(NodeId(0), &mut clock);
        }
        let before = f.cluster.node_stats(NodeId(0));
        assert!(before.protocol_switches >= 1);

        // Fourth epoch: the check-mode miss on the first page prefetches the
        // protection-detected neighbour — opening it costs one mprotect even
        // though the demanded page itself needs none.
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.batched_fetches, before.batched_fetches + 1);
        assert_eq!(
            s.pages_prefetch_speculative,
            before.pages_prefetch_speculative + 1
        );
        assert_eq!(s.mprotect_calls, before.mprotect_calls + 1);
        // The opened rider is then accessed for free, like any pf-resident
        // page.
        let t = clock.now();
        let _ = f.dsm.get(NodeId(0), &mut clock, second);
        assert_eq!(clock.now(), t);
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, s.page_loads);
    }

    #[test]
    fn adaptive_custom_params_shift_the_thresholds() {
        let cluster = Cluster::new(myrinet_200().machine, 2);
        let alloc = Arc::new(IsoAllocator::new(2));
        let store = DsmStore::new(Arc::clone(&alloc), 2);
        let tuned = AdaptiveParams {
            hi_multiple: 2.0,
            lo_multiple: 0.25,
            max_batch_pages: 1,
            min_prefetch_streak: 2,
            online_thresholds: false,
        };
        let dsm = DsmSystem::with_params(cluster, store, ProtocolKind::JavaAd, &tuned);
        let n_star = myrinet_200().machine.adaptive_break_even();
        let (hi, lo) = dsm.adaptive_thresholds();
        assert_eq!(hi, (n_star as f64 * 2.0).ceil() as u64);
        assert_eq!(lo, (n_star as f64 * 0.25).floor() as u64);
        assert!(lo < hi);
        // Default parameters sit at the break-even itself.
        let defaults = AdaptiveParams::default();
        assert_eq!(defaults.hi_multiple, 1.0);
        assert!(defaults.lo_multiple < defaults.hi_multiple);
    }

    // ----- split-transaction transport --------------------------------------

    #[test]
    fn overlapped_prefetch_hides_latency_behind_compute() {
        let overlapped = TransportConfig {
            overlapped_fetches: true,
            ..TransportConfig::default()
        };
        for kind in ProtocolKind::all_extended() {
            let blocking = fixture(2, kind);
            let split = fixture_with(2, kind, &AdaptiveParams::default(), &overlapped);
            let a_b = blocking.alloc.alloc(8, NodeId(1));
            let a_s = split.alloc.alloc(8, NodeId(1));
            blocking
                .dsm
                .put(NodeId(1), &mut ThreadClock::new(), a_b, 11);
            split.dsm.put(NodeId(1), &mut ThreadClock::new(), a_s, 11);

            // Prefetch, then compute for a while, then use the value.
            let compute = VTime::from_us(20);
            let mut c_b = ThreadClock::new();
            blocking
                .dsm
                .load_into_cache(NodeId(0), &mut c_b, a_b.page());
            c_b.advance(compute);
            assert_eq!(blocking.dsm.get(NodeId(0), &mut c_b, a_b), 11);

            let mut c_s = ThreadClock::new();
            split.dsm.load_into_cache(NodeId(0), &mut c_s, a_s.page());
            c_s.advance(compute);
            assert_eq!(split.dsm.get(NodeId(0), &mut c_s, a_s), 11, "{kind:?}");

            assert!(
                c_s.now() < c_b.now(),
                "{kind:?}: overlap must hide the compute window: {} vs {}",
                c_s.now(),
                c_b.now()
            );
            // The blocking run stalls at the prefetch; the split run hides
            // exactly the compute window inside the round trip.
            assert!(c_b.now() >= c_s.now() + compute - VTime::from_ns(1));
            let s = split.cluster.node_stats(NodeId(0));
            assert!(s.fetch_overlap_cycles_hidden > 0, "{kind:?}");
            assert_eq!(
                blocking
                    .cluster
                    .node_stats(NodeId(0))
                    .fetch_overlap_cycles_hidden,
                0
            );
            // Identical protocol traffic either way.
            assert_eq!(
                s.page_loads,
                blocking.cluster.node_stats(NodeId(0)).page_loads
            );
        }
    }

    #[test]
    fn overlapped_ticket_completes_exactly_once_and_clears_on_invalidate() {
        let overlapped = TransportConfig {
            overlapped_fetches: true,
            ..TransportConfig::default()
        };
        let f = fixture_with(
            2,
            ProtocolKind::JavaPf,
            &AdaptiveParams::default(),
            &overlapped,
        );
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();

        // Prefetch and never use: the invalidation abandons the ticket and
        // no hidden cycles are recorded.
        f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
        let frame = f.dsm.store().frame(NodeId(0), addr.page());
        assert!(frame.has_inflight());
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        assert!(!frame.has_inflight());
        assert_eq!(
            f.cluster.node_stats(NodeId(0)).fetch_overlap_cycles_hidden,
            0
        );

        // Prefetch and use twice: the ticket is consumed exactly once (the
        // second access is an ordinary cached hit).
        f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
        clock.advance(VTime::from_us(5));
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let hidden = f.cluster.node_stats(NodeId(0)).fetch_overlap_cycles_hidden;
        assert!(hidden > 0);
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        assert_eq!(
            f.cluster.node_stats(NodeId(0)).fetch_overlap_cycles_hidden,
            hidden
        );
    }

    #[test]
    fn batched_flush_coalesces_contiguous_same_home_dirty_pages() {
        let batched = fixture(2, ProtocolKind::JavaIc);
        let unbatched = fixture_with(
            2,
            ProtocolKind::JavaIc,
            &AdaptiveParams::default(),
            &TransportConfig::blocking(),
        );
        let slots = SLOTS_PER_PAGE * 3;
        let values: Vec<u64> = (0..slots as u64).map(|v| v * 7 + 1).collect();

        let run = |f: &Fixture| -> (VTime, u64, u64, u64, u64) {
            let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
            let mut clock = ThreadClock::new();
            f.dsm.write_slice(NodeId(0), &mut clock, addr, &values);
            f.dsm.update_main_memory(NodeId(0), &mut clock);
            // The home sees every slot either way.
            let mut out = vec![0u64; slots];
            f.dsm
                .read_slice(NodeId(1), &mut ThreadClock::new(), addr, &mut out);
            assert_eq!(out, values);
            let s = f.cluster.node_stats(NodeId(0));
            (
                clock.now(),
                s.diff_messages,
                s.batched_flushes,
                s.diff_slots_flushed,
                s.diff_bytes,
            )
        };

        let (t_b, msgs_b, batches_b, slots_b, bytes_b) = run(&batched);
        let (t_u, msgs_u, batches_u, slots_u, bytes_u) = run(&unbatched);
        assert_eq!(msgs_b, 1, "three contiguous pages share one diff RPC");
        assert_eq!(batches_b, 1);
        assert_eq!(msgs_u, 3);
        assert_eq!(batches_u, 0);
        assert_eq!(slots_b, slots_u);
        assert!(bytes_b > 0 && bytes_u > 0);
        assert!(
            t_b < t_u,
            "one RPC must beat three round trips: {t_b} vs {t_u}"
        );
    }

    #[test]
    fn flush_batches_never_cross_home_boundaries() {
        let f = fixture(3, ProtocolKind::JavaIc);
        let a = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(1));
        let b = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(2));
        assert_eq!(b.page().index(), a.page().index() + 1);
        let mut clock = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut clock, a, 1);
        f.dsm.put(NodeId(0), &mut clock, b, 2);
        f.dsm.update_main_memory(NodeId(0), &mut clock);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.diff_messages, 2, "different homes, different RPCs");
        assert_eq!(s.batched_flushes, 0);
    }

    // ----- home migration ----------------------------------------------------

    #[test]
    fn home_migrates_to_the_dominant_writer() {
        let transport = TransportConfig {
            home_migration: true,
            migration_streak: 3,
            ..TransportConfig::default()
        };
        let f = fixture_with(
            2,
            ProtocolKind::JavaPf,
            &AdaptiveParams::default(),
            &transport,
        );
        let addr = f.alloc.alloc(8, NodeId(0));
        let page = addr.page();
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Local);

        // Node 1 dominates the page's diff traffic: write + release, thrice.
        let mut w = ThreadClock::new();
        for i in 0..3u64 {
            f.dsm.put(NodeId(1), &mut w, addr, 100 + i);
            f.dsm.update_main_memory(NodeId(1), &mut w);
        }
        let s1 = f.cluster.node_stats(NodeId(1));
        assert_eq!(s1.diff_messages, 3);
        assert_eq!(s1.pages_migrated, 1, "third consecutive diff wins the home");
        assert_eq!(f.dsm.locality(NodeId(1), page), Locality::Local);
        assert_eq!(f.dsm.store().home_of(page), NodeId(1));
        assert_eq!(f.dsm.store().migrated_pages(), 1);

        // The new home's writes are plain local stores: no further diffs.
        f.dsm.put(NodeId(1), &mut w, addr, 999);
        f.dsm.update_main_memory(NodeId(1), &mut w);
        assert_eq!(f.cluster.node_stats(NodeId(1)).diff_messages, 3);

        // The old home still reads the value it held, and re-fetches the
        // authoritative copy from the new home after its next acquire.
        let mut r = ThreadClock::new();
        f.dsm.invalidate_cache(NodeId(0), &mut r);
        assert_eq!(f.dsm.get(NodeId(0), &mut r, addr), 999);
        assert_eq!(f.dsm.locality(NodeId(0), page), Locality::CachedRemote);

        // And the old home's writes now flush towards the new home.
        f.dsm.put(NodeId(0), &mut r, addr.offset(1), 7);
        f.dsm.update_main_memory(NodeId(0), &mut r);
        assert_eq!(f.dsm.get(NodeId(1), &mut w, addr.offset(1)), 7);
    }

    #[test]
    fn alternating_writers_never_migrate_the_home() {
        let transport = TransportConfig {
            home_migration: true,
            migration_streak: 3,
            ..TransportConfig::default()
        };
        let f = fixture_with(
            3,
            ProtocolKind::JavaIc,
            &AdaptiveParams::default(),
            &transport,
        );
        let addr = f.alloc.alloc(8, NodeId(0));
        let mut c1 = ThreadClock::new();
        let mut c2 = ThreadClock::new();
        for i in 0..10u64 {
            f.dsm.put(NodeId(1), &mut c1, addr, i);
            f.dsm.update_main_memory(NodeId(1), &mut c1);
            f.dsm.put(NodeId(2), &mut c2, addr.offset(1), i);
            f.dsm.update_main_memory(NodeId(2), &mut c2);
        }
        // The Boyer–Moore vote never settles on either writer.
        assert_eq!(f.dsm.store().home_of(addr.page()), NodeId(0));
        assert_eq!(f.dsm.store().migrated_pages(), 0);
        let total = f.cluster.total_stats();
        assert_eq!(total.pages_migrated, 0);
    }

    #[test]
    fn repeated_migrations_back_off_geometrically() {
        let transport = TransportConfig {
            home_migration: true,
            migration_streak: 2,
            ..TransportConfig::default()
        };
        let f = fixture_with(
            2,
            ProtocolKind::JavaIc,
            &AdaptiveParams::default(),
            &transport,
        );
        let addr = f.alloc.alloc(8, NodeId(0));
        let page = addr.page();
        let burst = |node: NodeId, n: u64| {
            let mut c = ThreadClock::new();
            for i in 0..n {
                f.dsm.put(node, &mut c, addr, i);
                f.dsm.update_main_memory(node, &mut c);
                f.dsm.invalidate_cache(node, &mut c);
            }
        };
        burst(NodeId(1), 2);
        assert_eq!(f.dsm.store().home_of(page), NodeId(1));
        // Moving it back now requires a doubled streak from node 0.
        burst(NodeId(0), 2);
        assert_eq!(f.dsm.store().home_of(page), NodeId(1), "bar doubled to 4");
        burst(NodeId(0), 2);
        assert_eq!(f.dsm.store().home_of(page), NodeId(0));
    }

    // ----- online-adaptive thresholds ---------------------------------------

    #[test]
    fn online_thresholds_widen_when_a_workload_flaps() {
        let params = AdaptiveParams {
            online_thresholds: true,
            ..AdaptiveParams::default()
        };
        let online = fixture_with(
            2,
            ProtocolKind::JavaAd,
            &params,
            &TransportConfig::default(),
        );
        let f_static = fixture(2, ProtocolKind::JavaAd);
        let (hi0, lo0) = online.dsm.adaptive_thresholds();
        assert_eq!(online.dsm.adaptive_thresholds_on(NodeId(0)), (hi0, lo0));

        // A mispredicting workload: one dense epoch followed by four idle
        // epochs, repeatedly.  Under the static thresholds every dense epoch
        // flips the page to protection and the idle decay flips it back —
        // sustained flapping that pays a switch plus an mprotect/fault pair
        // per cycle for re-access that never materialises.
        let run = |f: &Fixture| {
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut clock = ThreadClock::new();
            for cycle in 0..8 {
                for _ in 0..4 * hi0 {
                    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
                }
                f.dsm.invalidate_cache(NodeId(0), &mut clock);
                for _ in 0..4 {
                    f.dsm.invalidate_cache(NodeId(0), &mut clock);
                }
                let _ = cycle;
            }
            f.cluster.node_stats(NodeId(0)).protocol_switches
        };
        let switches_static = run(&f_static);
        let switches_online = run(&online);

        // The node tightened its own hysteresis: the band is wider than the
        // configured one...
        let (hi_now, lo_now) = online.dsm.adaptive_thresholds_on(NodeId(0));
        assert!(
            hi_now > hi0 && lo_now <= lo0,
            "band must widen: ({hi_now}, {lo_now}) vs ({hi0}, {lo0})"
        );
        // ...and the flapping stopped, while the static run kept switching.
        assert!(
            switches_online < switches_static,
            "online tuning must cut mode churn: {switches_online} vs {switches_static}"
        );
        // The configured thresholds are untouched.
        assert_eq!(online.dsm.adaptive_thresholds(), (hi0, lo0));
    }

    // ----- prefetch directory ------------------------------------------------

    fn directory_fixture(nodes: usize, kind: ProtocolKind) -> Fixture {
        fixture_with(
            nodes,
            kind,
            &AdaptiveParams::default(),
            &TransportConfig::directory(),
        )
    }

    #[test]
    fn neighbour_fetch_piggybacks_a_hint_that_becomes_a_ticket() {
        let f = directory_fixture(3, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
        let second = addr.offset(SLOTS_PER_PAGE as u64);
        f.dsm.put(NodeId(2), &mut ThreadClock::new(), second, 77);

        // Node 0 touches both pages: the home's directory now knows that a
        // fetch of the first page is followed by the second.
        let mut c0 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut c0, addr);
        let _ = f.dsm.get(NodeId(0), &mut c0, second);

        // Node 1 demand-misses the first page only: the reply carries the
        // "your neighbour also fetched the next page" hint, which node 1
        // converts into an in-flight split transaction.
        let mut c1 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(1), &mut c1, addr);
        let s1 = f.cluster.node_stats(NodeId(1));
        assert!(f.cluster.node_stats(NodeId(2)).hints_sent >= 1);
        assert_eq!(s1.hinted_fetches_issued, 1);
        assert_eq!(s1.page_loads, 2, "demand fetch + hinted fetch");
        let frame = f.dsm.store().frame(NodeId(1), second.page());
        assert!(frame.has_inflight());
        assert!(frame.inflight_is_hinted());

        // The later demand miss completes the in-flight RPC instead of
        // issuing one: no new page load, ticket consumed, value correct.
        assert_eq!(f.dsm.get(NodeId(1), &mut c1, second), 77);
        let s1 = f.cluster.node_stats(NodeId(1));
        assert_eq!(s1.page_loads, 2);
        assert_eq!(s1.hinted_fetches_completed, 1);
        assert!(!frame.has_inflight());
    }

    #[test]
    fn stride_run_extends_hints_across_the_window() {
        let f = directory_fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 4, NodeId(1));
        let page = |k: u64| addr.offset(SLOTS_PER_PAGE as u64 * k);

        let mut clock = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut clock, page(0));
        // The second fetch extends a stride run: the home hints the rest of
        // the same-home span and node 0 puts both remaining pages in flight.
        let _ = f.dsm.get(NodeId(0), &mut clock, page(1));
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.hinted_fetches_issued, 2);
        assert_eq!(s.page_loads, 4);
        assert_eq!(f.cluster.node_stats(NodeId(1)).hints_sent, 2);
        // Scanning on completes the tickets without further loads.
        let _ = f.dsm.get(NodeId(0), &mut clock, page(2));
        let _ = f.dsm.get(NodeId(0), &mut clock, page(3));
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.page_loads, 4);
        assert_eq!(s.hinted_fetches_completed, 2);
    }

    #[test]
    fn learned_successor_pairs_hint_non_contiguous_pages() {
        let f = directory_fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 3, NodeId(1));
        let third = addr.offset(SLOTS_PER_PAGE as u64 * 2);
        let mut clock = ThreadClock::new();

        // One epoch of the non-contiguous pattern (first page, then the
        // third — the middle page is never touched) teaches the home the
        // successor pair.
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let _ = f.dsm.get(NodeId(0), &mut clock, third);
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        let before = f.cluster.node_stats(NodeId(0));
        assert_eq!(before.hinted_fetches_issued, 0, "no hints while learning");

        // Second epoch: the miss on the first page is answered with a hint
        // for its learned (non-contiguous) successor, which the node puts
        // in flight; the later demand miss completes that RPC.
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.hinted_fetches_issued, before.hinted_fetches_issued + 1);
        let loads_before = s.page_loads;
        let _ = f.dsm.get(NodeId(0), &mut clock, third);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.page_loads, loads_before, "hinted page served in flight");
        assert_eq!(s.hinted_fetches_completed, 1);
        // The untouched middle page was never speculated on.
        assert!(!f
            .dsm
            .is_cached(NodeId(0), addr.offset(SLOTS_PER_PAGE as u64).page()));
    }

    #[test]
    fn unused_hints_are_counted_as_waste_at_invalidation() {
        let f = directory_fixture(3, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
        let second = addr.offset(SLOTS_PER_PAGE as u64);

        let mut c0 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut c0, addr);
        let _ = f.dsm.get(NodeId(0), &mut c0, second);
        let mut c1 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(1), &mut c1, addr);
        assert_eq!(f.cluster.node_stats(NodeId(1)).hinted_fetches_issued, 1);

        // Node 1 never touches the hinted page: the acquire-side
        // invalidation books the pending ticket as waste.
        f.dsm.invalidate_cache(NodeId(1), &mut c1);
        let s1 = f.cluster.node_stats(NodeId(1));
        assert_eq!(s1.hinted_fetches_wasted, 1);
        assert_eq!(s1.hinted_fetches_completed, 0);
        // With no accuracy history the first waste trips the throttle, so
        // the abandoned ticket is *not* re-armed.
        assert_eq!(s1.hinted_fetches_reissued, 0);
    }

    #[test]
    fn abandoned_hint_tickets_are_reissued_at_the_next_acquire() {
        let f = directory_fixture(3, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
        let second = addr.offset(SLOTS_PER_PAGE as u64);
        f.dsm.put(NodeId(2), &mut ThreadClock::new(), second, 77);

        // Teach the home's directory the two-page pattern.
        let mut c0 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut c0, addr);
        let _ = f.dsm.get(NodeId(0), &mut c0, second);

        // Give node 1 a healthy accuracy history so the single waste booked
        // below does not trip the conversion throttle.
        NodeStats::bump_by(&f.cluster.node(NodeId(1)).stats.hinted_fetches_issued, 64);

        // Node 1 demand-misses the first page and converts the piggybacked
        // hint into an in-flight ticket for the second.
        let mut c1 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(1), &mut c1, addr);
        let frame = f.dsm.store().frame(NodeId(1), second.page());
        assert!(frame.inflight_is_hinted());
        let loads_before = f.cluster.node_stats(NodeId(1)).page_loads;

        // The acquire invalidates before the predicted miss arrives: the
        // ticket is booked as waste *and* re-armed on the spot — the node was
        // holding an overlapped fetch for this page, so the next epoch very
        // likely misses on it again.
        f.dsm.invalidate_cache(NodeId(1), &mut c1);
        let s1 = f.cluster.node_stats(NodeId(1));
        assert_eq!(s1.hinted_fetches_wasted, 1);
        assert_eq!(s1.hinted_fetches_reissued, 1);
        assert_eq!(s1.page_loads, loads_before + 1, "one re-issued fetch");
        assert!(frame.inflight_is_hinted(), "ticket re-armed");

        // The demand miss that does come completes the re-issued RPC instead
        // of paying a fresh round trip, and observes the right value.
        assert_eq!(f.dsm.get(NodeId(1), &mut c1, second), 77);
        let s1 = f.cluster.node_stats(NodeId(1));
        assert_eq!(s1.page_loads, loads_before + 1);
        assert_eq!(s1.hinted_fetches_completed, 1);
        assert!(!frame.has_inflight());
    }

    #[test]
    fn hint_conversion_is_throttled_by_measured_waste() {
        let f = directory_fixture(3, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
        let second = addr.offset(SLOTS_PER_PAGE as u64);
        let mut c0 = ThreadClock::new();
        let mut c1 = ThreadClock::new();

        // Round after round, node 1 receives the hint, wastes it, and
        // invalidates.  The measured-waste throttle must stop the node from
        // converting hints long before the rounds run out.
        for _ in 0..12 {
            let _ = f.dsm.get(NodeId(0), &mut c0, addr);
            let _ = f.dsm.get(NodeId(0), &mut c0, second);
            f.dsm.invalidate_cache(NodeId(0), &mut c0);
            let _ = f.dsm.get(NodeId(1), &mut c1, addr);
            f.dsm.invalidate_cache(NodeId(1), &mut c1);
        }
        let s1 = f.cluster.node_stats(NodeId(1));
        assert!(
            s1.hinted_fetches_issued <= 2,
            "throttle must stop hint conversion: issued {}",
            s1.hinted_fetches_issued
        );
        assert_eq!(s1.hinted_fetches_wasted, s1.hinted_fetches_issued);
    }

    #[test]
    fn hints_require_the_directory_transport() {
        // Default transport: the same access pattern produces no hints.
        let f = fixture(3, ProtocolKind::JavaPf);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
        let second = addr.offset(SLOTS_PER_PAGE as u64);
        let mut c0 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut c0, addr);
        let _ = f.dsm.get(NodeId(0), &mut c0, second);
        let mut c1 = ThreadClock::new();
        let _ = f.dsm.get(NodeId(1), &mut c1, addr);
        let total = f.cluster.total_stats();
        assert_eq!(total.hints_sent, 0);
        assert_eq!(total.hinted_fetches_issued, 0);
        assert_eq!(f.cluster.node_stats(NodeId(1)).page_loads, 1);
    }

    #[test]
    fn hinted_fetches_never_change_observed_values() {
        // The same scan, with and without the directory: identical values.
        let run = |transport: &TransportConfig| -> Vec<u64> {
            let f = fixture_with(
                2,
                ProtocolKind::JavaIc,
                &AdaptiveParams::default(),
                transport,
            );
            let slots = SLOTS_PER_PAGE * 4;
            let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
            let mut home = ThreadClock::new();
            for k in 0..slots as u64 {
                f.dsm.put(NodeId(1), &mut home, addr.offset(k), k * 3 + 1);
            }
            let mut clock = ThreadClock::new();
            (0..slots as u64)
                .map(|k| f.dsm.get(NodeId(0), &mut clock, addr.offset(k)))
                .collect()
        };
        assert_eq!(
            run(&TransportConfig::default()),
            run(&TransportConfig::directory())
        );
    }

    // ----- deferred release flushing -----------------------------------------

    #[test]
    fn deferred_flush_returns_a_watermark_and_applies_the_diffs() {
        let f = directory_fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut w = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut w, addr, 41);

        let d = f
            .dsm
            .update_main_memory_deferred(NodeId(0), &mut w)
            .expect("dirty pages under a deferred transport");
        // Only the issue path was charged; the completion lies ahead.
        assert_eq!(d.issue, w.now());
        assert!(d.completion > w.now());
        let s0 = f.cluster.node_stats(NodeId(0));
        assert_eq!(s0.deferred_flushes, 1);
        assert_eq!(s0.diff_messages, 1);
        // The home already holds the value (the wire carried it; only the
        // latency accounting is deferred).
        let mut h = ThreadClock::new();
        assert_eq!(f.dsm.get(NodeId(1), &mut h, addr), 41);
        // Nothing dirty: a second deferred flush is a no-op.
        assert!(f
            .dsm
            .update_main_memory_deferred(NodeId(0), &mut w)
            .is_none());
    }

    #[test]
    fn deferred_flush_falls_back_to_blocking_without_the_transport() {
        let f = fixture(2, ProtocolKind::JavaIc);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut w = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut w, addr, 9);
        let before = w.now();
        assert!(f
            .dsm
            .update_main_memory_deferred(NodeId(0), &mut w)
            .is_none());
        assert!(w.now() > before, "blocking fallback charges the round trip");
        assert_eq!(f.cluster.node_stats(NodeId(0)).deferred_flushes, 0);
        let mut h = ThreadClock::new();
        assert_eq!(f.dsm.get(NodeId(1), &mut h, addr), 9);
    }

    #[test]
    fn deferred_flush_issue_path_is_cheaper_than_blocking() {
        let blocking = fixture(2, ProtocolKind::JavaIc);
        let deferred = directory_fixture(2, ProtocolKind::JavaIc);
        let run = |f: &Fixture, defer: bool| -> VTime {
            let addr = f.alloc.alloc(8, NodeId(1));
            let mut w = ThreadClock::new();
            f.dsm.put(NodeId(0), &mut w, addr, 1);
            if defer {
                let _ = f.dsm.update_main_memory_deferred(NodeId(0), &mut w);
            } else {
                f.dsm.update_main_memory(NodeId(0), &mut w);
            }
            w.now()
        };
        let t_blocking = run(&blocking, false);
        let t_deferred = run(&deferred, true);
        assert!(
            t_deferred < t_blocking,
            "deferred release must not stall: {t_deferred} vs {t_blocking}"
        );
    }
}
