//! The two-level home hierarchy's relay layer: group leaders coalesce
//! their members' cross-group page fetches and diff batches.
//!
//! Under a grouped [`crate::policy::TopologySpec`] the cluster is
//! partitioned into node groups of equal size and each group's
//! lowest-numbered node acts as its *leader*.  A member whose protocol RPC
//! targets a home *outside its own group* sends the request to its leader
//! instead, wrapped in a one-byte-kind relay envelope; the leader serves or
//! forwards it:
//!
//! * **Page fetches** — the leader keeps a per-page *version cache* (the
//!   page version at its last upstream fetch).  If the page has not changed
//!   since, the leader's copy is still byte-identical to the home's and the
//!   request is **combined**: served at leader-copy cost with no home RPC
//!   ([`combined_fetches`]).  Otherwise the relay opens a fresh upstream
//!   cycle: the full member→leader→home round trip is charged and the
//!   home's `rpc_served` arrival is recorded ([`group_relay_cycles`]).
//!   Served bytes ALWAYS come from the authoritative home frames, so
//!   combining is purely a cost-model statement — memory contents and
//!   digests are identical to the flat topology.
//!
//! * **Diff batches** — diffs mutate the home, so every relayed batch is
//!   applied immediately and exactly once (through the same shared helper
//!   the direct path uses).  What the leader coalesces is the *fan-in*:
//!   per (leader, home) stream, every `group_size`-th batch opens a fresh
//!   upstream cycle at full round-trip cost; the batches in between ride
//!   along at marginal apply cost ([`combined_diff_batches`]).
//!
//! **Modelling note.** The handler signature has no clock, so the upstream
//! leg cannot nest a real RPC; its cost is folded into the leader's
//! reported service time instead.  The member therefore waits for the full
//! relay chain, but the home's `ServerClock` is not occupied by relayed
//! arrivals — the leader pipeline is assumed to absorb that serialisation.
//! The home-side arrival *count* is still recorded (that is what the
//! scaling gate measures).
//!
//! **Degradation.** A leader's fail-stop death degrades its group
//! permanently: the first member whose relay RPC fails with `NodeDown`
//! marks the group degraded ([`crate::table::DsmStore::mark_group_degraded`]),
//! recovers the leader's pages like any dead node, and every later RPC from
//! that group goes directly to the home.
//!
//! [`combined_fetches`]: hyperion_model::StatsSnapshot::combined_fetches
//! [`combined_diff_batches`]: hyperion_model::StatsSnapshot::combined_diff_batches
//! [`group_relay_cycles`]: hyperion_model::StatsSnapshot::group_relay_cycles

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use hyperion_model::{CpuModel, DsmCostModel, NetworkModel, NodeStats, ThreadClock, VTime};
use hyperion_pm2::comm::MSG_HEADER_BYTES;
use hyperion_pm2::{
    Cluster, Node, NodeId, PageId, RpcHandler, RpcReply, ServiceId, SLOTS_PER_PAGE,
};
use parking_lot::Mutex;

use crate::diff::{decode_page_fetch_request, encode_migration_grant};
use crate::engine::DsmSystem;
use crate::policy::{MigrationPolicy, PolicySet, Predictor, ReplicationPolicy};
use crate::services::{apply_diff_message, copy_home_pages};
use crate::table::DsmStore;

/// Relay envelope kind: a wrapped page-fetch request.
pub(crate) const RELAY_FETCH: u8 = 0;
/// Relay envelope kind: a wrapped diff-apply message.
pub(crate) const RELAY_DIFF: u8 = 1;

/// Wrap an inner protocol payload in the relay envelope:
/// `[kind u8][home u32 le][inner...]`.
pub(crate) fn encode_relay(kind: u8, home: NodeId, inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + inner.len());
    out.push(kind);
    out.extend_from_slice(&home.0.to_le_bytes());
    out.extend_from_slice(inner);
    out
}

/// Split a relay envelope back into `(kind, home, inner)`.
fn decode_relay(payload: &[u8]) -> (u8, NodeId, &[u8]) {
    assert!(payload.len() >= 5, "malformed relay envelope");
    let home = u32::from_le_bytes(payload[1..5].try_into().expect("relay home id"));
    (payload[0], NodeId(home), &payload[5..])
}

/// The leader-side relay service.  One instance serves every group: state
/// is keyed by the leader the request arrived at, so the service table
/// stays a single flat registry.
pub(crate) struct GroupRelayService {
    pub(crate) store: Arc<DsmStore>,
    /// Back-reference for the manual home-arrival bump on fresh upstream
    /// cycles.  Weak because the cluster owns the service table that owns
    /// this service.
    pub(crate) cluster: Weak<Cluster>,
    pub(crate) cpu: CpuModel,
    pub(crate) dsm: DsmCostModel,
    pub(crate) net: NetworkModel,
    pub(crate) migration: Arc<dyn MigrationPolicy>,
    pub(crate) replication: Arc<dyn ReplicationPolicy>,
    pub(crate) predictor: Arc<dyn Predictor>,
    /// `(leader, page) -> page version at the last fresh upstream fetch`.
    fetch_cache: Mutex<HashMap<(u32, u64), u64>>,
    /// `(leader, home) -> relayed diff batches so far` — every
    /// `group_size`-th opens a fresh upstream cycle.
    diff_cycles: Mutex<HashMap<(u32, u32), u64>>,
}

impl GroupRelayService {
    /// Build the relay over the engine's store and policy objects.
    pub(crate) fn new(store: Arc<DsmStore>, cluster: &Arc<Cluster>, policies: &PolicySet) -> Self {
        let machine = cluster.machine();
        GroupRelayService {
            store,
            cluster: Arc::downgrade(cluster),
            cpu: machine.cpu.clone(),
            dsm: machine.dsm.clone(),
            net: machine.net.clone(),
            migration: Arc::clone(&policies.migration),
            replication: Arc::clone(&policies.replication),
            predictor: Arc::clone(&policies.predictor),
            fetch_cache: Mutex::new(HashMap::new()),
            diff_cycles: Mutex::new(HashMap::new()),
        }
    }

    /// The modelled cost of one fresh upstream cycle leader→home→leader,
    /// folded into the leader's service time (see the module docs):
    /// protocol software + relay bookkeeping cycles, NIC overheads, two
    /// wire legs, and the home-side service work.
    fn upstream_cost(&self, req_bytes: u64, reply_bytes: u64, home_service: VTime) -> VTime {
        self.cpu.cycles(
            self.dsm.protocol_request_cycles
                + self.dsm.protocol_server_cycles
                + self.dsm.group_relay_cycles,
        ) + self.net.send_overhead
            + self.net.latency.times(2)
            + self.net.transfer(req_bytes + MSG_HEADER_BYTES)
            + self.net.transfer(reply_bytes + MSG_HEADER_BYTES)
            + self.net.recv_overhead
            + home_service
    }

    /// Record one real arrival at the home for a fresh upstream cycle: the
    /// scaling gate counts home-side `rpc_served`, and combined relays are
    /// exactly the arrivals that never happen.
    fn bump_home_served(&self, home: NodeId) {
        if let Some(cluster) = self.cluster.upgrade() {
            NodeStats::bump(&cluster.node(home).stats.rpc_served);
        }
    }

    /// Serve a relayed page fetch (see the module docs for the pricing).
    fn relay_fetch(&self, leader: &Node, home: NodeId, caller: NodeId, inner: &[u8]) -> RpcReply {
        let (first, count, _hints_ok) = decode_page_fetch_request(inner);
        // Bytes and directory bookkeeping come from the authoritative home
        // frames exactly as on the direct path (hint runs are not relayed:
        // hints are advisory and the reply stays decodable without them).
        let (bytes, _obs) = copy_home_pages(
            &self.store,
            self.predictor.as_ref(),
            self.replication.as_ref(),
            home,
            caller,
            first,
            count,
        );
        let copy_cost = self.cpu.cycles(
            self.dsm.page_copy_cycles_per_slot * (SLOTS_PER_PAGE * count as usize) as f64
                + self.dsm.batch_page_cycles * (count - 1) as f64,
        );
        let combined = {
            let mut cache = self.fetch_cache.lock();
            let fresh_needed = (0..count as u64).any(|k| {
                let page = first.0 + k;
                cache.get(&(leader.id().0, page)).copied()
                    != Some(self.store.page_version(PageId(page)))
            });
            if fresh_needed {
                for k in 0..count as u64 {
                    let page = first.0 + k;
                    cache.insert((leader.id().0, page), self.store.page_version(PageId(page)));
                }
            }
            !fresh_needed
        };
        if combined {
            // The leader's copy is still current: no upstream traffic, the
            // member pays one member→leader round trip plus the copy.
            NodeStats::bump(&leader.stats.combined_fetches);
            return RpcReply::with_data(bytes, copy_cost);
        }
        NodeStats::bump(&leader.stats.group_relay_cycles);
        self.bump_home_served(home);
        let service =
            copy_cost + self.upstream_cost(inner.len() as u64, bytes.len() as u64, copy_cost);
        RpcReply::with_data(bytes, service)
    }

    /// Apply a relayed diff batch (see the module docs for the pricing).
    fn relay_diff(&self, leader: &Node, home: NodeId, caller: NodeId, inner: &[u8]) -> RpcReply {
        let group_size = self.store.topology().group_size().max(1) as u64;
        let fresh = {
            let mut cycles = self.diff_cycles.lock();
            let n = cycles.entry((leader.id().0, home.0)).or_insert(0);
            let fresh = *n % group_size == 0;
            *n += 1;
            fresh
        };
        // Diffs mutate the home: apply immediately and exactly once, through
        // the same helper as the direct path (migration grants, quorum
        // writes and version bumps included).  Combining never defers the
        // memory effect — it only re-prices the fan-in.
        let out = apply_diff_message(
            &self.store,
            self.migration.as_ref(),
            self.replication.as_ref(),
            home,
            caller,
            inner,
        );
        let apply_cost = self.cpu.cycles(
            self.dsm.diff_apply_cycles_per_slot * (out.slots + out.quorum_slots) as f64
                + self.dsm.batch_flush_cycles * (out.batches.max(1) - 1) as f64,
        );
        let reply_bytes = match &out.grant {
            Some((page, snapshot)) => encode_migration_grant(*page, snapshot),
            None => Vec::new(),
        };
        let service = if fresh {
            NodeStats::bump(&leader.stats.group_relay_cycles);
            self.bump_home_served(home);
            self.upstream_cost(inner.len() as u64, reply_bytes.len() as u64, apply_cost)
        } else {
            NodeStats::bump(&leader.stats.combined_diff_batches);
            apply_cost
        };
        if reply_bytes.is_empty() {
            RpcReply::ack(service)
        } else {
            RpcReply::with_data(reply_bytes, service)
        }
    }
}

impl RpcHandler for GroupRelayService {
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        let (kind, home, inner) = decode_relay(payload);
        match kind {
            RELAY_FETCH => self.relay_fetch(target, home, caller, inner),
            RELAY_DIFF => self.relay_diff(target, home, caller, inner),
            other => panic!("unknown relay kind {other}"),
        }
    }

    fn name(&self) -> &'static str {
        "dsm.group_relay"
    }
}

impl DsmSystem {
    /// Decide whether a home RPC from `node` should route through `node`'s
    /// group leader: `Some((leader, kind))` to relay, `None` to go direct.
    ///
    /// Direct routing applies when the topology is flat, the home is in the
    /// member's own group, the member *is* its group's leader, the group's
    /// combining has degraded (its leader died), the service is not one of
    /// the two relayable protocol RPCs, or the home itself is scheduled
    /// dead at the current virtual time (so the direct path surfaces the
    /// `NodeDown` that drives recovery instead of the relay silently
    /// serving a dead home's frames).
    pub(crate) fn relay_route(
        &self,
        clock: &ThreadClock,
        node: NodeId,
        home: NodeId,
        service: ServiceId,
    ) -> Option<(NodeId, u8)> {
        let topology = self.store.topology();
        if !topology.is_grouped() {
            return None;
        }
        let kind = if service == self.page_fetch {
            RELAY_FETCH
        } else if service == self.diff_apply {
            RELAY_DIFF
        } else {
            return None;
        };
        let group = topology.group_of(node);
        if topology.same_group(node, home)
            || topology.leader_of(group) == node
            || self.store.group_degraded(group)
        {
            return None;
        }
        if let Some(kill) = self.transport.fault.as_ref().and_then(|f| f.kill) {
            if kill.node == home.0 && clock.now() >= kill.at {
                return None;
            }
        }
        Some((topology.leader_of(group), kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_envelope_round_trips() {
        let inner = vec![1u8, 2, 3, 4, 5, 6];
        let wire = encode_relay(RELAY_DIFF, NodeId(300), &inner);
        let (kind, home, body) = decode_relay(&wire);
        assert_eq!(kind, RELAY_DIFF);
        assert_eq!(home, NodeId(300));
        assert_eq!(body, &inner[..]);
    }

    #[test]
    #[should_panic(expected = "malformed relay envelope")]
    fn truncated_relay_envelope_is_rejected() {
        let _ = decode_relay(&[RELAY_FETCH, 0, 0]);
    }
}
