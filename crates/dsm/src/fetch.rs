//! Requester-side page-fetch mechanics of the [`DsmSystem`] engine: the
//! single-page and batched fetch paths, hint-to-ticket conversion and
//! in-flight transaction completion.
//!
//! This is a second `impl DsmSystem` block (split out of `engine.rs` to
//! keep the engine readable): everything here is mechanism — RPC framing,
//! fetch-lock order, ticket bookkeeping — parameterised by the policy
//! decisions ([`crate::policy::DetectionPolicy::fetch_batching`],
//! [`crate::policy::DetectionPolicy::predicts_reaccess`],
//! [`crate::policy::Predictor::converts_hints`]) that the engine already
//! resolved.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hyperion_model::{NodeStats, ThreadClock, VTime};
use hyperion_pm2::{Node, NodeId, PageId};

use crate::diff::{
    encode_page_batch_request, encode_page_request, encode_page_request_nohint, split_fetch_reply,
    HintRun,
};
use crate::engine::DsmSystem;
use crate::page::PageFrame;
use crate::recover::RpcFailure;
use crate::services::PAGE_BYTES;

impl DsmSystem {
    /// Bring a page into the local cache from its home node.
    ///
    /// `demand` distinguishes a fetch triggered by an access (the access is
    /// the first use, so the transaction completes on the spot and the full
    /// round trip is charged, exactly as the blocking transport does) from
    /// an explicit prefetch, which under the overlapped transport records an
    /// in-flight ticket and lets the caller keep computing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fetch_page(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        unprotect_after: bool,
        demand: bool,
    ) -> Result<(), RpcFailure> {
        let guard = frame.fetch_lock().lock();
        if frame.is_present() && !frame.is_protected() {
            // Another thread on this node completed the load while we were
            // waiting on the fetch lock.
            drop(guard);
            return Ok(());
        }
        NodeStats::bump(&node_ref.stats.page_loads);
        let payload = encode_page_request(page);
        let machine = self.cluster.machine();
        let (bytes, mut completion) =
            self.rpc_to_home(clock, node, node_ref, page, self.page_fetch, &payload)?;
        // Hidden latency is measured from the end of the issue path: that is
        // the instant a blocking transport would have started stalling.
        let issue = clock.now();
        let (data, hints) = split_fetch_reply(&bytes, 1);
        if frame.is_home() {
            // A concurrent migration grant promoted this frame to home while
            // the fetch was in flight: the frame already holds the
            // authoritative copy, so installing the (pre-migration) snapshot
            // would erase newer home writes.  Keep the round trip charged —
            // it really happened — and drop the stale bytes.
            drop(guard);
            clock.merge(completion);
            return Ok(());
        }
        frame.install_copy(data);

        if unprotect_after {
            NodeStats::bump(&node_ref.stats.mprotect_calls);
        }
        if demand || !self.transport.overlapped_fetches {
            drop(guard);
            clock.merge(completion);
            if unprotect_after {
                clock.advance(machine.dsm.mprotect_call);
            }
        } else {
            // The mprotect that opens the page happens when the copy lands,
            // so it extends the transaction rather than the issue path.
            if unprotect_after {
                completion += machine.dsm.mprotect_call;
            }
            frame.begin_inflight(issue.as_ps(), completion.as_ps());
            drop(guard);
        }
        self.issue_hint_fetches(node, node_ref, clock, &hints);
        Ok(())
    }

    /// Convert prefetch-directory hints carried on a fetch reply into
    /// split-transaction tickets: issue one overlapped single-page fetch per
    /// absent hinted page, so the later demand miss completes an RPC that is
    /// already in flight instead of paying a fresh round trip.
    ///
    /// Hint conversion is throttled by its own measured accuracy — once more
    /// than 1/16 of the node's hint-driven fetches turn out wasted
    /// (invalidated untouched), further hints are ignored until the accuracy
    /// recovers — and hint-issued requests are tagged so their replies never
    /// carry further hints (no cascades).
    ///
    /// Returns the number of overlapped fetches actually issued (pages that
    /// were present, home, contended or throttled issue nothing).
    pub(crate) fn issue_hint_fetches(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        hints: &[HintRun],
    ) -> u64 {
        let mut issued_now = 0u64;
        if hints.is_empty()
            || !self.transport.overlapped_fetches
            || !self.policies.predictor.converts_hints()
        {
            return issued_now;
        }
        let machine = self.cluster.machine();
        let num_pages = self.store.allocator().num_pages();
        for &(first, run) in hints {
            for k in 0..run as u64 {
                let page = PageId(first.0 + k);
                if page.index() >= num_pages {
                    break;
                }
                let issued = node_ref.stats.hinted_fetches_issued.load(Ordering::Relaxed);
                let wasted = node_ref.stats.hinted_fetches_wasted.load(Ordering::Relaxed);
                // The low floor makes the throttle bite after a single early
                // waste: a node must prove hint accuracy on a healthy issued
                // count before any further misprediction is tolerated.
                if wasted.saturating_mul(16) > issued.max(8) {
                    return issued_now;
                }
                let frame = self.store.frame(node, page);
                if frame.is_home() || frame.is_present() {
                    continue;
                }
                // A contended fetch lock means another thread is already
                // loading the page; the hint has nothing left to add.
                let Some(guard) = frame.fetch_lock().try_lock() else {
                    continue;
                };
                if frame.is_present() {
                    drop(guard);
                    continue;
                }
                let unprotect = self.policies.detection.unprotect_on_install(&frame);
                let payload = encode_page_request_nohint(page);
                let Ok((bytes, mut completion)) =
                    self.rpc_to_home(clock, node, node_ref, page, self.page_fetch, &payload)
                else {
                    // Hint conversion is an optimisation, so it degrades
                    // gracefully: a hint the transport cannot serve is simply
                    // not issued, and the later demand miss takes the
                    // ordinary (retried, recovered) fetch path instead.
                    drop(guard);
                    return issued_now;
                };
                NodeStats::bump(&node_ref.stats.page_loads);
                NodeStats::bump(&node_ref.stats.hinted_fetches_issued);
                issued_now += 1;
                let issue = clock.now();
                if frame.is_home() {
                    // Concurrent migration promoted the frame (see
                    // `fetch_page`): charge the round trip, drop the bytes.
                    drop(guard);
                    clock.merge(completion);
                    continue;
                }
                let (data, _) = split_fetch_reply(&bytes, 1);
                frame.install_copy(data);
                if unprotect {
                    NodeStats::bump(&node_ref.stats.mprotect_calls);
                    completion += machine.dsm.mprotect_call;
                }
                frame.begin_inflight_hinted(issue.as_ps(), completion.as_ps());
                drop(guard);
            }
        }
        issued_now
    }

    /// Batching fetch path (`java_ad`): bring `page` into the cache and
    /// opportunistically batch a run of contiguous successor pages into the
    /// same RPC.
    ///
    /// A successor page joins the batch only when it shares the demanded
    /// page's home, is currently absent, and is either *certain* to be
    /// touched (it lies inside the bulk access that triggered the miss) or
    /// *predicted* to be touched (the detection policy's
    /// [`predicts_reaccess`](crate::policy::DetectionPolicy::predicts_reaccess)
    /// says its epoch history shows stable re-access).  The second
    /// condition is what keeps batched fetches from inflating page loads:
    /// only pages with demonstrated per-epoch re-access are speculated on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fetch_page_adaptive(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        unprotect_after: bool,
        bulk_pages: usize,
        demand: bool,
    ) -> Result<(), RpcFailure> {
        self.fetch_page_adaptive_inner(
            node,
            node_ref,
            clock,
            page,
            frame,
            unprotect_after,
            bulk_pages,
            demand,
            true,
        )
    }

    /// [`DsmSystem::fetch_page_adaptive`] with explicit control over
    /// history-driven speculation (suppressed by span prefetches).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fetch_page_adaptive_inner(
        &self,
        node: NodeId,
        node_ref: &Node,
        clock: &mut ThreadClock,
        page: PageId,
        frame: &PageFrame,
        unprotect_after: bool,
        bulk_pages: usize,
        demand: bool,
        speculate: bool,
    ) -> Result<(), RpcFailure> {
        let guard = frame.fetch_lock().lock();
        if frame.is_present() && !frame.is_protected() {
            // Another thread on this node completed the load while we were
            // waiting on the fetch lock.
            drop(guard);
            return Ok(());
        }
        let home = self.store.home_of(page);
        let max_batch = self.policies.detection.fetch_batching().unwrap_or(1);

        // Speculation is throttled by its own measured accuracy: once more
        // than 1/16 of the node's *speculative* prefetches turn out wasted
        // (invalidated untouched), only pages certain to be accessed may
        // ride along.  Certain (bulk-covered) riders are deliberately not in
        // the denominator — they can never be wasted and would otherwise
        // dilute the bound.  This keeps a mispredicting workload (e.g.
        // dynamic work reassignment) from inflating page traffic noticeably.
        let speculated = node_ref
            .stats
            .pages_prefetch_speculative
            .load(Ordering::Relaxed);
        let waste = node_ref.stats.pages_prefetch_wasted.load(Ordering::Relaxed);
        let may_speculate = speculate && waste.saturating_mul(16) <= speculated.max(16);

        // Candidate phase: grow the contiguous window page by page.
        let num_pages = self.store.allocator().num_pages();
        let mut candidates: Vec<(Arc<PageFrame>, bool)> = Vec::new();
        for k in 1..max_batch as u64 {
            let q = PageId(page.0 + k);
            if q.index() >= num_pages || self.store.home_of(q) != home {
                break;
            }
            let qf = self.store.frame(node, q);
            if qf.is_home() || qf.is_present() {
                break;
            }
            let certain = (k as usize) < bulk_pages;
            let predicted = may_speculate && self.policies.detection.predicts_reaccess(&qf);
            if !certain && !predicted {
                break;
            }
            candidates.push((qf, !certain));
        }
        // Lock phase: keep the prefix whose fetch locks are free right now;
        // a contended or concurrently-installed page ends the run (the batch
        // must stay contiguous).
        let mut guards = Vec::with_capacity(candidates.len());
        for (qf, _) in &candidates {
            let Some(g) = qf.fetch_lock().try_lock() else {
                break;
            };
            if qf.is_present() {
                break;
            }
            guards.push(g);
        }
        let batch = guards.len();
        let count = 1 + batch;

        let machine = self.cluster.machine();
        NodeStats::bump_by(&node_ref.stats.page_loads, count as u64);
        let payload = if count == 1 {
            encode_page_request(page)
        } else {
            NodeStats::bump(&node_ref.stats.batched_fetches);
            NodeStats::bump_by(&node_ref.stats.pages_prefetched, (count - 1) as u64);
            clock.advance(machine.batch_request_overhead((count - 1) as u64));
            encode_page_batch_request(page, count as u32)
        };
        let (bytes, wire_completion) =
            self.rpc_to_home(clock, node, node_ref, page, self.page_fetch, &payload)?;
        let issue = clock.now();
        let (data, hints) = split_fetch_reply(&bytes, count);
        // A concurrent migration grant may have promoted any frame of the
        // run to home while the fetch was in flight; such a frame already
        // holds the authoritative copy and must not be overwritten with the
        // pre-migration snapshot (see `fetch_page`).
        let promoted = frame.is_home();
        if !promoted {
            frame.install_copy(&data[0..PAGE_BYTES]);
        }
        // Installing a rider that was protection-detected clears its access
        // protection, which costs an mprotect just as the demanded page's
        // fault path does — without it java_ad's modeled cost would be
        // understated for exactly the pages the prefetcher targets.
        let mut riders_protected = false;
        let mut speculative_riders = 0u64;
        for (i, (qf, speculative)) in candidates.iter().take(batch).enumerate() {
            if qf.is_home() {
                continue;
            }
            riders_protected |= qf.ad_mode() == crate::page::AdMode::Protect;
            qf.install_copy(&data[(i + 1) * PAGE_BYTES..(i + 2) * PAGE_BYTES]);
            if *speculative {
                qf.ad_mark_prefetched();
                speculative_riders += 1;
            }
        }
        if speculative_riders > 0 {
            NodeStats::bump_by(
                &node_ref.stats.pages_prefetch_speculative,
                speculative_riders,
            );
        }

        let needs_mprotect = unprotect_after || riders_protected;
        if needs_mprotect {
            // One mprotect call opens the whole contiguous run.
            NodeStats::bump(&node_ref.stats.mprotect_calls);
        }
        let overlapped = self.transport.overlapped_fetches;
        if demand || !overlapped {
            clock.merge(wire_completion);
            if needs_mprotect {
                clock.advance(machine.dsm.mprotect_call);
            }
            if overlapped {
                // The demanded page completed here, but its riders are live
                // split transactions finishing with this batch.  The thread
                // stalled for the whole round trip on the demanded page, so
                // the riders hid nothing — their tickets carry `done` as
                // both issue and completion (zero residual, zero hidden),
                // and only make a slower thread that touches a rider first
                // wait until the batch had actually arrived.
                let done = clock.now();
                for (qf, _) in candidates.iter().take(batch) {
                    if !qf.is_home() {
                        qf.begin_inflight(done.as_ps(), done.as_ps());
                    }
                }
            }
        } else {
            let completion = if needs_mprotect {
                wire_completion + machine.dsm.mprotect_call
            } else {
                wire_completion
            };
            if !promoted {
                frame.begin_inflight(issue.as_ps(), completion.as_ps());
            }
            for (qf, _) in candidates.iter().take(batch) {
                if !qf.is_home() {
                    qf.begin_inflight(issue.as_ps(), completion.as_ps());
                }
            }
        }
        drop(guards);
        drop(guard);
        self.issue_hint_fetches(node, node_ref, clock, &hints);
        Ok(())
    }

    /// Complete an in-flight split fetch transaction on its first real use:
    /// merge the completion timestamp (charging the residual latency) and
    /// account the part of the round trip that compute already covered.
    pub(crate) fn complete_inflight(
        &self,
        node_ref: &Node,
        clock: &mut ThreadClock,
        frame: &PageFrame,
    ) {
        let Some((issue_ps, completion_ps, hinted)) = frame.take_inflight() else {
            return;
        };
        if hinted {
            // This demand miss finished an RPC the prefetch directory had
            // already put in flight.
            NodeStats::bump(&node_ref.stats.hinted_fetches_completed);
        }
        let hidden_ps = clock
            .now()
            .as_ps()
            .min(completion_ps)
            .saturating_sub(issue_ps);
        if hidden_ps > 0 {
            let cycles = hidden_ps as f64 / self.cluster.machine().cpu.ps_per_cycle();
            NodeStats::bump_by(
                &node_ref.stats.fetch_overlap_cycles_hidden,
                (cycles as u64).max(1),
            );
        }
        clock.merge(VTime::from_ps(completion_ps));
    }
}
