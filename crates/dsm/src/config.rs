//! Protocol, adaptive-parameter and transport configuration types.
//!
//! These are plain data: choosing a [`ProtocolKind`] and flipping
//! [`TransportConfig`] flags describes *what* a run wants, and the
//! [`crate::policy`] module turns that description into the policy objects
//! the engine actually consults (see [`crate::policy::PolicySpec`] for the
//! typed surface and [`TransportConfig::policy_spec`] for the bridge).

use hyperion_model::VTime;
use hyperion_pm2::{FaultSpec, NodeId, RetryPolicy, TransportBackend};

use crate::policy::{
    FlushSpec, MigrationSpec, PolicySpec, PredictorSpec, ReplicationSpec, TopologySpec,
};

/// Which access-detection technique a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Explicit in-line locality checks on every access (§3.2).
    JavaIc,
    /// Page-fault-based detection with page protection (§3.3).
    JavaPf,
    /// Adaptive per-page selection between the two techniques, with batched
    /// page fetches (extension beyond the paper).
    JavaAd,
}

impl ProtocolKind {
    /// The name used in the paper's figures (and `java_ad` for the adaptive
    /// extension).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::JavaIc => "java_ic",
            ProtocolKind::JavaPf => "java_pf",
            ProtocolKind::JavaAd => "java_ad",
        }
    }

    /// The paper's two protocols, in the order the paper lists them.
    pub fn all() -> [ProtocolKind; 2] {
        [ProtocolKind::JavaIc, ProtocolKind::JavaPf]
    }

    /// The paper's two protocols plus the adaptive extension.
    pub fn all_extended() -> [ProtocolKind; 3] {
        [
            ProtocolKind::JavaIc,
            ProtocolKind::JavaPf,
            ProtocolKind::JavaAd,
        ]
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable policy knobs of the adaptive protocol (`java_ad`).
///
/// The switching thresholds are expressed as multiples of the machine
/// model's break-even access count `n*` so one parameterisation is
/// meaningful on both modelled clusters; the ablation benchmarks sweep
/// `hi_multiple` to show the policy is robust around 1.0.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveParams {
    /// A check-mode page switches to protection when its *smoothed*
    /// accesses-per-epoch (EWMA over invalidation epochs) reach
    /// `hi_multiple · n*`.
    pub hi_multiple: f64,
    /// A protect-mode page falls back to checks when its smoothed
    /// accesses-per-epoch drop to `lo_multiple · n*` or below.  Kept
    /// strictly below `hi_multiple` (hysteresis) so borderline pages do not
    /// flap.
    pub lo_multiple: f64,
    /// Largest number of pages one fetch RPC may carry; 1 disables batching.
    pub max_batch_pages: usize,
    /// Consecutive re-accessed epochs a page needs before history-driven
    /// prefetching may pull it into a neighbour's batch.
    pub min_prefetch_streak: u64,
    /// Adapt the `hi`/`lo` thresholds online, per node, from the measured
    /// switch and waste counters: a node whose pages flap between the two
    /// techniques widens its own hysteresis band (up to 8× the configured
    /// multiples), and a node that has stopped mispredicting relaxes back
    /// towards them.  Off by default — the static thresholds are what the
    /// ablation benchmarks sweep.
    pub online_thresholds: bool,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            hi_multiple: 1.0,
            lo_multiple: 0.5,
            max_batch_pages: 8,
            min_prefetch_streak: 3,
            online_thresholds: false,
        }
    }
}

/// Configuration of the split-transaction transport layer: how the wire
/// path overlaps with compute and how write-shared pages are re-homed.
///
/// All three mechanisms are semantics-preserving — they change when latency
/// is charged and how many RPCs carry the same bytes, never what a program
/// computes — so they apply to every protocol.
///
/// The boolean mechanism flags (`home_migration`, `prefetch_hints`,
/// `deferred_flush`) are the **legacy data-level surface**: they predate the
/// policy layer and are kept working so apps, bench harness and committed
/// baselines do not churn.  New code should select policies through
/// [`crate::policy::PolicySpec`] (see [`TransportConfig::policy_spec`]); the
/// engine itself only ever sees policy objects, built from either surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportConfig {
    /// Overlapped page fetches: an explicit prefetch (`loadIntoCache`) and
    /// every speculative batch rider issue their RPC immediately but record
    /// an in-flight ticket; the requester keeps computing and pays only the
    /// *residual* latency when the page is first really used.  Off by
    /// default (the paper's transport blocks on every fetch).
    pub overlapped_fetches: bool,
    /// Largest number of contiguous same-home dirty pages one diff-flush
    /// RPC may carry at `updateMainMemory`; 1 disables batched flushing.
    pub max_flush_batch_pages: usize,
    /// Legacy flag form of [`crate::policy::MigrationSpec::MajorityVote`]:
    /// migrate a page's home to the writer that dominates its release-time
    /// diff traffic, turning that writer's per-release diff RPC into plain
    /// local stores.  Off by default.
    pub home_migration: bool,
    /// Majority count (Boyer–Moore vote over incoming diffs) a non-home
    /// writer must reach before the home migrates to it.  Doubled per page
    /// after each migration, so ping-ponging homes back off geometrically.
    pub migration_streak: u32,
    /// Legacy flag form of [`crate::policy::PredictorSpec::Directory`]:
    /// cluster-wide prefetch directory — each home keeps a small per-page
    /// fetch history and piggybacks "a neighbour also fetched p..p+k" hints
    /// on fetch replies; requesters convert hints into split-transaction
    /// tickets, so a later demand miss on a hinted page completes an
    /// already in-flight RPC instead of issuing one.  Requires
    /// [`TransportConfig::overlapped_fetches`]; off by default.
    pub prefetch_hints: bool,
    /// Largest number of contiguous pages one reply's hint run may name.
    pub hint_window: usize,
    /// Legacy flag form of [`crate::policy::FlushSpec::Deferred`]: deferred
    /// release flushing — `updateMainMemory` at a monitor exit hands its
    /// coalesced diff batches to a per-monitor deferred-flush queue as split
    /// transactions; the flush only has to complete before the *next acquire
    /// of the same monitor*, which is where the residual latency is charged
    /// (the JMM's release/acquire edge is exactly per-monitor, so deferring
    /// to the hand-off preserves happens-before).  Release points with
    /// thread-level edges (`Thread.start`, `join`, migration, program exit)
    /// always flush blocking.  Off by default.
    pub deferred_flush: bool,
    /// Which [`hyperion_pm2::Transport`] implementation carries the RPCs:
    /// the in-process cost model (default) or a real Unix-domain/TCP
    /// socket per node.  Semantics-preserving by construction — the wire
    /// payloads and the virtual-time charging are identical across
    /// backends, only the physical carrier differs.
    pub backend: TransportBackend,
    /// Retry schedule of the DSM's RPC path: bounded attempts with
    /// exponential backoff under a deadline, every retry charged to the
    /// calling thread's virtual clock (and counted in `rpc_retries` /
    /// `rpc_timeouts`).  On a fault-free run the first attempt always
    /// succeeds and the schedule charges nothing.
    pub retry: RetryPolicy,
    /// Deterministic fault schedule replayed by a
    /// [`hyperion_pm2::FaultyTransport`] wrapped around the chosen backend;
    /// `None` (default) leaves the transport untouched.
    pub fault: Option<FaultSpec>,
    /// Number of replicated read-homes kept per page and the write quorum a
    /// diff must reach, i.e. the legacy flag form of
    /// [`crate::policy::ReplicationSpec::Quorum`].  `None` (default) is the
    /// Noop policy: no replicas, byte-identical behaviour.
    pub replication: Option<(usize, usize)>,
    /// Nodes per group of the two-level home hierarchy, i.e. the legacy
    /// flag form of [`crate::policy::TopologySpec::Grouped`].  `1` (default)
    /// is the flat topology: every node is its own self-led group, no relay
    /// or combining ever happens, and behaviour is byte-identical to the
    /// pre-topology engine.  With `group_size >= 2` (must divide the node
    /// count) each group's leader coalesces its members' cross-group
    /// fetch/diff traffic into upstream relay RPCs (see `dsm::combine`).
    pub group_size: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            overlapped_fetches: false,
            max_flush_batch_pages: 8,
            home_migration: false,
            migration_streak: 3,
            prefetch_hints: false,
            hint_window: 4,
            deferred_flush: false,
            backend: TransportBackend::Sim,
            retry: RetryPolicy::default(),
            fault: None,
            replication: None,
            group_size: 1,
        }
    }
}

impl TransportConfig {
    /// The paper's blocking transport: no overlap, no flush batching, no
    /// home migration, no prefetch directory, no deferred flushing.
    pub fn blocking() -> Self {
        TransportConfig {
            overlapped_fetches: false,
            max_flush_batch_pages: 1,
            ..TransportConfig::default()
        }
    }

    /// The latency-hiding transport of the split-transaction PR: overlapped
    /// fetches, batched flushing and home migration (the prefetch directory
    /// and deferred flushing stay off — see [`TransportConfig::directory`]).
    pub fn latency_hiding() -> Self {
        TransportConfig {
            overlapped_fetches: true,
            home_migration: true,
            ..TransportConfig::default()
        }
    }

    /// The prefetch-directory transport: overlapped fetches plus
    /// cluster-wide hints and deferred release flushing (home migration is
    /// left off so directory effects are measured in isolation).
    pub fn directory() -> Self {
        TransportConfig {
            overlapped_fetches: true,
            prefetch_hints: true,
            deferred_flush: true,
            ..TransportConfig::default()
        }
    }

    /// The short label of the fetch-overlap mode (`"ov"` / `"block"`).
    ///
    /// Overlap is an engine mechanism, not a policy — in-flight tickets are
    /// maintained by the engine for whichever policies want them — so its
    /// label lives here rather than on a policy `name()`.
    pub fn overlap_name(&self) -> &'static str {
        if self.overlapped_fetches {
            "ov"
        } else {
            "block"
        }
    }

    /// The [`PredictorSpec`] these flags describe.
    pub fn predictor_spec(&self) -> PredictorSpec {
        if self.prefetch_hints {
            PredictorSpec::Directory {
                hint_window: self.hint_window,
            }
        } else {
            PredictorSpec::Noop
        }
    }

    /// The [`MigrationSpec`] these flags describe.
    pub fn migration_spec(&self) -> MigrationSpec {
        if self.home_migration {
            MigrationSpec::MajorityVote {
                streak: self.migration_streak,
            }
        } else {
            MigrationSpec::Noop
        }
    }

    /// The [`FlushSpec`] these flags describe.
    pub fn flush_spec(&self) -> FlushSpec {
        if self.deferred_flush {
            FlushSpec::Deferred {
                max_pages: self.max_flush_batch_pages,
            }
        } else {
            FlushSpec::Batched {
                max_pages: self.max_flush_batch_pages,
            }
        }
    }

    /// The [`TopologySpec`] these flags describe.
    pub fn topology_spec(&self) -> TopologySpec {
        if self.group_size > 1 {
            TopologySpec::Grouped {
                group_size: self.group_size,
            }
        } else {
            TopologySpec::Flat
        }
    }

    /// The [`ReplicationSpec`] these flags describe.
    pub fn replication_spec(&self) -> ReplicationSpec {
        match self.replication {
            Some((read_replicas, write_quorum)) => ReplicationSpec::Quorum {
                read_replicas,
                write_quorum,
            },
            None => ReplicationSpec::Noop,
        }
    }

    /// The full [`PolicySpec`] these flags (plus a protocol choice and its
    /// adaptive parameters) describe — the bridge from the legacy flag
    /// surface to the typed policy surface.
    pub fn policy_spec(&self, kind: ProtocolKind, params: &AdaptiveParams) -> PolicySpec {
        PolicySpec::from_config(kind, params, self)
    }
}

/// One home's contribution to a deferred release flush: when its flush RPC
/// was issued and when it completes.  Keeping the record *per home* is what
/// lets the monitor layer account hidden overlap per home instead of
/// parking every flush behind the single slowest completion (the per-home
/// watermark follow-on of the deferred-flush PR).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HomeFlushMark {
    /// The home node the diff batch was flushed to.
    pub home: NodeId,
    /// Virtual time at which this home's flush RPC left the releaser.
    pub issue: VTime,
    /// Virtual time at which this home's flush RPC completes.
    pub completion: VTime,
}

/// The record a deferred release flush leaves behind: the virtual instant
/// the flush RPCs were issued and the instant the last of them completes,
/// plus one [`HomeFlushMark`] per home flushed.  The monitor that performed
/// the release stores it and merges every home's `completion` into the next
/// acquirer's clock (see [`TransportConfig::deferred_flush`]) — merging all
/// homes equals merging the max, so the JMM edge is unchanged, but the
/// per-home issue stamps let hidden-overlap accounting credit each home's
/// flush window individually.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeferredFlush {
    /// Virtual time at which the releasing thread finished issuing the
    /// flush RPCs (everything before this was charged at the release).
    pub issue: VTime,
    /// Virtual time at which the last flush RPC completes; the next acquire
    /// of the same monitor can not happen before this.
    pub completion: VTime,
    /// Per-home issue/completion watermarks (empty only for legacy
    /// constructors; [`DeferredFlush::aggregate`] synthesises one mark).
    pub homes: Vec<HomeFlushMark>,
}

impl DeferredFlush {
    /// A single-watermark record (one synthetic mark covering every home) —
    /// the pre-per-home behaviour, kept for call sites that have no
    /// per-home breakdown.
    pub fn aggregate(issue: VTime, completion: VTime) -> DeferredFlush {
        DeferredFlush {
            issue,
            completion,
            homes: vec![HomeFlushMark {
                home: NodeId(0),
                issue,
                completion,
            }],
        }
    }
}

/// Where the page behind an address currently lives, relative to an
/// observing node.
///
/// This is the distinction the paper's two protocols *detect* on every
/// access; promoting it into the API lets programs ask once and then take a
/// fast path (bulk transfers, pinned views) that elides the per-access
/// detection entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Locality {
    /// The observing node is the page's home: every access is local.
    Local,
    /// A remote page with a valid, unprotected cached copy on the node:
    /// accesses are served locally until the next cache invalidation.
    CachedRemote,
    /// A remote page with no usable local copy: the next access pays the
    /// full detection-plus-fetch path.
    Remote,
}

impl Locality {
    /// True if an access right now would be served without DSM traffic
    /// (home page or valid cached copy).
    pub fn is_resident(self) -> bool {
        !matches!(self, Locality::Remote)
    }

    /// Short lower-case name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Locality::Local => "local",
            Locality::CachedRemote => "cached-remote",
            Locality::Remote => "remote",
        }
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
