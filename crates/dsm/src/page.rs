//! Page frames: the unit of replication and access detection.
//!
//! Objects are implemented on top of pages (§3.1): `loadIntoCache` always
//! retrieves the whole page an object lives on, so neighbouring objects are
//! pre-fetched for free.  Each node holds at most one copy of a page; the
//! copy is shared by every thread running on that node.
//!
//! A frame's 8-byte slots are `AtomicU64`s accessed with relaxed ordering —
//! on the modelled x86 machines these are plain loads and stores, and using
//! atomics keeps the reproduction free of undefined behaviour even when an
//! application contains a (Java-level) data race.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use hyperion_pm2::SLOTS_PER_PAGE;
use parking_lot::Mutex;

/// Number of 64-bit words in the per-page dirty bitmap.
pub const DIRTY_WORDS: usize = SLOTS_PER_PAGE / 64;

/// Which access-detection technique a `java_ad` frame currently uses.
///
/// The adaptive protocol runs a per-page state machine between the paper's
/// two techniques: a page in [`AdMode::Check`] is detected with `java_ic`
/// style in-line checks (cheap when the page is touched sparsely after each
/// invalidation), a page in [`AdMode::Protect`] is detected with `java_pf`
/// style page protection (free for dense re-access).  Transitions happen
/// only at cache invalidation, when the cached copy is dropped anyway, so a
/// switch can never expose stale data — this is what keeps the §3.1 JMM
/// semantics intact across mid-run protocol transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdMode {
    /// In-line locality check on every access (`java_ic` mechanics).
    Check,
    /// Page protection + fault on first access (`java_pf` mechanics).
    Protect,
}

impl AdMode {
    fn from_u8(v: u8) -> AdMode {
        if v == 0 {
            AdMode::Check
        } else {
            AdMode::Protect
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            AdMode::Check => 0,
            AdMode::Protect => 1,
        }
    }
}

/// The backing store of one page on one node: 512 atomic 8-byte slots.
#[derive(Debug)]
pub struct PageData {
    slots: Box<[AtomicU64]>,
}

impl PageData {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        PageData {
            slots: (0..SLOTS_PER_PAGE).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Read one slot.
    #[inline]
    pub fn load(&self, slot: usize) -> u64 {
        self.slots[slot].load(Ordering::Relaxed)
    }

    /// Write one slot.
    #[inline]
    pub fn store(&self, slot: usize, value: u64) {
        self.slots[slot].store(value, Ordering::Relaxed);
    }

    /// Copy the whole page into a plain byte vector (little-endian), used to
    /// ship pages over the communication subsystem.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SLOTS_PER_PAGE * 8);
        for s in self.slots.iter() {
            out.extend_from_slice(&s.load(Ordering::Relaxed).to_le_bytes());
        }
        out
    }

    /// Overwrite the whole page from a byte snapshot produced by
    /// [`PageData::snapshot_bytes`].
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly one page long.
    pub fn fill_from_bytes(&self, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            SLOTS_PER_PAGE * 8,
            "page snapshot has the wrong length"
        );
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let v = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.slots[i].store(v, Ordering::Relaxed);
        }
    }
}

/// The per-(node, page) replication state used by both protocols.
#[derive(Debug)]
pub struct PageFrame {
    /// True if this node is the page's home (the reference copy).  Atomic
    /// because home migration may promote/demote a frame mid-run.
    home: AtomicBool,
    /// True if the node currently holds a valid copy of the page.
    present: AtomicBool,
    /// True if the page is access-protected on this node (`java_pf` only:
    /// an access while protected takes a simulated page fault).
    protected: AtomicBool,
    /// Lazily allocated backing store.
    data: OnceLock<PageData>,
    /// Dirty bitmap: one bit per slot modified since the last flush.
    dirty: [AtomicU64; DIRTY_WORDS],
    /// Serialises page fetches for this frame so concurrent faulting threads
    /// on one node perform a single load.
    fetch_lock: Mutex<()>,
    /// `java_ad` detection mode of this frame (ignored by `java_ic`/`java_pf`).
    ad_mode: AtomicU8,
    /// `java_ad`: accesses observed since the last cache invalidation.
    ad_epoch_accesses: AtomicU64,
    /// `java_ad`: accesses observed during the previous invalidation epoch.
    ad_last_epoch_accesses: AtomicU64,
    /// `java_ad`: exponentially smoothed accesses-per-epoch
    /// (`avg ← (3·avg + closed) / 4` at each rotation).  The smoothing keeps
    /// one spiky epoch from flipping a page's detection technique.
    ad_avg_accesses: AtomicU64,
    /// `java_ad`: true if the current copy was installed speculatively by a
    /// batched fetch and has not been accessed yet.  Still set when the copy
    /// is invalidated ⇒ the prefetch was wasted.
    ad_prefetched: AtomicBool,
    /// `java_ad`: consecutive completed epochs (ending with the previous
    /// one) in which the page was accessed at least once.  Used to gate the
    /// prefetch window of batched fetches on re-access stability.
    ad_epoch_streak: AtomicU64,
    /// Split-transaction transport: virtual completion time (picoseconds) of
    /// an in-flight fetch whose data is installed but whose latency has not
    /// been charged yet.  Zero means no transaction is in flight.
    inflight_completion_ps: AtomicU64,
    /// Split-transaction transport: virtual issue time of the in-flight
    /// fetch (valid only while `inflight_completion_ps` is non-zero).
    inflight_issue_ps: AtomicU64,
    /// True if the current in-flight ticket was issued by converting a
    /// prefetch-directory hint (valid only while `inflight_completion_ps` is
    /// non-zero).  A hinted ticket still pending at invalidation time means
    /// the hint was wasted.
    inflight_hinted: AtomicBool,
    /// Prefetch directory (home frames only): home-node fetch sequence
    /// number at the most recent fetch of this page (0 = never fetched).
    dir_last_seq: AtomicU64,
    /// Prefetch directory: the node that performed that fetch, stored as
    /// `node + 1` (0 = none).
    dir_last_req: AtomicU64,
    /// Prefetch directory: sequence number of the fetch before that.
    dir_prev_seq: AtomicU64,
    /// Prefetch directory: the requester before the most recent one.
    dir_prev_req: AtomicU64,
    /// Prefetch directory: the page (id + 1, 0 = none) some requester
    /// fetched from this home *right after* fetching this page — a learned
    /// successor pair, not necessarily contiguous (e.g. the two pages a
    /// boundary row spans, re-fetched in order every epoch).
    dir_next_page: AtomicU64,
    /// Prefetch directory: sequence number at which that successor pair was
    /// last observed.
    dir_next_seq: AtomicU64,
    /// Prefetch directory: how many times in a row the *same* successor has
    /// been observed (reset to 1 when the candidate is replaced).
    dir_next_hits: AtomicU64,
    /// Prefetch directory: sequence number at which the successor slot was
    /// last *replaced* by a different non-empty pair (0 = never).  Random
    /// traffic (e.g. Zipf-skewed key lookups) overwrites the slot on almost
    /// every fetch, so a recent replacement marks the slot as churning —
    /// its candidate is indistinguishable from noise until the same pair
    /// repeats.  First-time learning and stable re-fetch sequences never
    /// trip this, so the strided apps keep hinting from their first epoch.
    dir_next_flip_seq: AtomicU64,
    /// Home migration (home frames only): Boyer–Moore majority candidate for
    /// the dominant diff writer, stored as `writer + 1` (0 = none).
    mig_candidate: AtomicU64,
    /// Home migration: the candidate's current majority count.
    mig_count: AtomicU64,
    /// Home migration: consecutive-dominance count required before the next
    /// grant; doubled after each migration of this page so a ping-ponging
    /// page migrates geometrically less often.
    mig_required: AtomicU64,
    /// Home migration (home frames only): the home node itself wrote this
    /// page since the migration vote last looked.  Home writes produce no
    /// diffs, so without this flag the vote would migrate pages away from
    /// homes that are in fact their busiest writers.
    home_wrote: AtomicBool,
}

impl PageFrame {
    fn new(home: bool, present: bool, protected: bool) -> Self {
        PageFrame {
            home: AtomicBool::new(home),
            present: AtomicBool::new(present),
            protected: AtomicBool::new(protected),
            data: OnceLock::new(),
            dirty: std::array::from_fn(|_| AtomicU64::new(0)),
            fetch_lock: Mutex::new(()),
            ad_mode: AtomicU8::new(AdMode::Check.as_u8()),
            ad_epoch_accesses: AtomicU64::new(0),
            ad_last_epoch_accesses: AtomicU64::new(0),
            ad_avg_accesses: AtomicU64::new(0),
            ad_prefetched: AtomicBool::new(false),
            ad_epoch_streak: AtomicU64::new(0),
            inflight_completion_ps: AtomicU64::new(0),
            inflight_issue_ps: AtomicU64::new(0),
            inflight_hinted: AtomicBool::new(false),
            dir_last_seq: AtomicU64::new(0),
            dir_last_req: AtomicU64::new(0),
            dir_prev_seq: AtomicU64::new(0),
            dir_prev_req: AtomicU64::new(0),
            dir_next_page: AtomicU64::new(0),
            dir_next_seq: AtomicU64::new(0),
            dir_next_hits: AtomicU64::new(0),
            dir_next_flip_seq: AtomicU64::new(0),
            mig_candidate: AtomicU64::new(0),
            mig_count: AtomicU64::new(0),
            mig_required: AtomicU64::new(0),
            home_wrote: AtomicBool::new(false),
        }
    }

    /// Create the frame for a page on its home node: present, unprotected.
    pub fn new_home() -> Self {
        Self::new(true, true, false)
    }

    /// Create the frame for a page on a non-home node: absent and (for
    /// `java_pf`) access-protected, exactly as §3.3 describes the initial
    /// state.  Under `java_ad` fresh remote frames start in [`AdMode::Check`]
    /// — the cheap technique for a page whose re-access density is unknown.
    pub fn new_remote() -> Self {
        Self::new(false, false, true)
    }

    /// True if this node is the page's home.
    #[inline]
    pub fn is_home(&self) -> bool {
        self.home.load(Ordering::Acquire)
    }

    /// Flip the home flag of this frame (home migration).  Only the
    /// migration path in the protocol engine may call this, and only while
    /// the `DsmStore`'s home overlay is updated in the same step.
    pub fn set_home(&self, home: bool) {
        self.home.store(home, Ordering::Release);
    }

    /// True if the node holds a valid copy.
    #[inline]
    pub fn is_present(&self) -> bool {
        self.present.load(Ordering::Acquire)
    }

    /// True if the page is access-protected on this node.
    #[inline]
    pub fn is_protected(&self) -> bool {
        self.protected.load(Ordering::Acquire)
    }

    /// Backing store (allocated on first use).
    #[inline]
    pub fn data(&self) -> &PageData {
        self.data.get_or_init(PageData::zeroed)
    }

    /// Lock guarding page fetches for this frame.
    pub fn fetch_lock(&self) -> &Mutex<()> {
        &self.fetch_lock
    }

    /// Install a fresh copy of the page (after a fetch from the home node)
    /// and mark it present and unprotected.
    pub fn install_copy(&self, bytes: &[u8]) {
        self.data().fill_from_bytes(bytes);
        self.protected.store(false, Ordering::Release);
        self.present.store(true, Ordering::Release);
    }

    /// Drop the cached copy: `invalidateCache` for this frame.  For the
    /// page-fault protocol the frame is also re-protected so the next access
    /// faults.  Home frames are never invalidated.
    pub fn invalidate(&self, reprotect: bool) {
        debug_assert!(!self.is_home(), "home frames are never invalidated");
        self.present.store(false, Ordering::Release);
        // A fetch still in flight for this copy is abandoned with it: the
        // issue costs were already charged, and nobody will use the data.
        self.inflight_completion_ps.store(0, Ordering::Release);
        self.inflight_hinted.store(false, Ordering::Relaxed);
        if reprotect {
            self.protected.store(true, Ordering::Release);
        }
    }

    /// Read a slot of this frame.
    #[inline]
    pub fn load_slot(&self, slot: usize) -> u64 {
        self.data().load(slot)
    }

    /// Write a slot of this frame and, on non-home frames, remember it in the
    /// dirty bitmap so `updateMainMemory` can flush it (object-field
    /// granularity, §3.1).
    #[inline]
    pub fn store_slot(&self, slot: usize, value: u64) {
        self.data().store(slot, value);
        if !self.is_home() {
            self.dirty[slot / 64].fetch_or(1u64 << (slot % 64), Ordering::Relaxed);
        } else {
            self.home_wrote.store(true, Ordering::Relaxed);
        }
    }

    /// Apply one slot of a *remote* node's diff to this (home) frame.
    /// Unlike [`PageFrame::store_slot`] this neither records a dirty bit
    /// nor counts as a home write for the migration vote — it is the remote
    /// writer's store, merely landing here.
    #[inline]
    pub fn apply_diff_slot(&self, slot: usize, value: u64) {
        self.data().store(slot, value);
    }

    /// True if any slot has been modified since the last flush.
    pub fn has_dirty_slots(&self) -> bool {
        self.dirty.iter().any(|w| w.load(Ordering::Relaxed) != 0)
    }

    // ----- java_ad per-page state machine -----------------------------------

    /// Current `java_ad` detection mode of this frame.
    #[inline]
    pub fn ad_mode(&self) -> AdMode {
        AdMode::from_u8(self.ad_mode.load(Ordering::Relaxed))
    }

    /// Flip the `java_ad` detection mode.  Only meaningful at invalidation
    /// time, when the frame holds no valid copy (see [`AdMode`]).
    pub fn ad_set_mode(&self, mode: AdMode) {
        self.ad_mode.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// Record one access of the current invalidation epoch (`java_ad` only).
    #[inline]
    pub fn ad_record_access(&self) {
        self.ad_epoch_accesses.fetch_add(1, Ordering::Relaxed);
        if self.ad_prefetched.load(Ordering::Relaxed) {
            // The speculative copy earned its keep.
            self.ad_prefetched.store(false, Ordering::Relaxed);
        }
    }

    /// Mark the current copy as speculatively installed (batched prefetch).
    pub fn ad_mark_prefetched(&self) {
        self.ad_prefetched.store(true, Ordering::Relaxed);
    }

    /// Clear and return the speculative marker; `true` at invalidation time
    /// means the prefetched copy was never accessed — a wasted prefetch.
    pub fn ad_take_wasted_prefetch(&self) -> bool {
        self.ad_prefetched.swap(false, Ordering::Relaxed)
    }

    /// Smoothed accesses-per-epoch as of the last rotation.
    pub fn ad_avg_accesses(&self) -> u64 {
        self.ad_avg_accesses.load(Ordering::Relaxed)
    }

    /// Accesses observed since the last invalidation.
    pub fn ad_epoch_accesses(&self) -> u64 {
        self.ad_epoch_accesses.load(Ordering::Relaxed)
    }

    /// Accesses observed during the previous (completed) epoch.
    pub fn ad_last_epoch_accesses(&self) -> u64 {
        self.ad_last_epoch_accesses.load(Ordering::Relaxed)
    }

    /// Consecutive completed epochs in which the page was accessed.
    pub fn ad_epoch_streak(&self) -> u64 {
        self.ad_epoch_streak.load(Ordering::Relaxed)
    }

    /// Close the current invalidation epoch: move the running access count
    /// into the previous-epoch slot, fold it into the smoothed average,
    /// update the re-access streak and return the new smoothed average.
    /// Called by `invalidateCache` under `java_ad`.  With several
    /// application threads per node concurrent invalidations may rotate
    /// twice; the statistics are heuristic inputs, so an occasionally
    /// shortened epoch only delays a mode switch.
    pub fn ad_rotate_epoch(&self) -> u64 {
        let closed = self.ad_epoch_accesses.swap(0, Ordering::Relaxed);
        self.ad_last_epoch_accesses.store(closed, Ordering::Relaxed);
        let avg = (3 * self.ad_avg_accesses.load(Ordering::Relaxed) + closed) / 4;
        self.ad_avg_accesses.store(avg, Ordering::Relaxed);
        if closed > 0 {
            self.ad_epoch_streak.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ad_epoch_streak.store(0, Ordering::Relaxed);
        }
        avg
    }

    // ----- split-transaction transport --------------------------------------

    /// Record an in-flight fetch transaction: the data is installed, the
    /// issue costs are charged, and the round-trip completes (in virtual
    /// time) at `completion_ps`.  The first real use of the page consumes
    /// the ticket via [`PageFrame::take_inflight`].
    pub fn begin_inflight(&self, issue_ps: u64, completion_ps: u64) {
        self.inflight_hinted.store(false, Ordering::Relaxed);
        self.inflight_issue_ps.store(issue_ps, Ordering::Relaxed);
        self.inflight_completion_ps
            .store(completion_ps.max(1), Ordering::Release);
    }

    /// [`PageFrame::begin_inflight`] for a ticket issued by converting a
    /// prefetch-directory hint, so its completion and waste are accounted
    /// separately.
    pub fn begin_inflight_hinted(&self, issue_ps: u64, completion_ps: u64) {
        self.inflight_hinted.store(true, Ordering::Relaxed);
        self.inflight_issue_ps.store(issue_ps, Ordering::Relaxed);
        self.inflight_completion_ps
            .store(completion_ps.max(1), Ordering::Release);
    }

    /// Consume the in-flight ticket, if any: returns
    /// `(issue_ps, completion_ps, hinted)` exactly once per transaction.
    pub fn take_inflight(&self) -> Option<(u64, u64, bool)> {
        // Fast path: nothing in flight (the common case on every access).
        if self.inflight_completion_ps.load(Ordering::Acquire) == 0 {
            return None;
        }
        let completion = self.inflight_completion_ps.swap(0, Ordering::AcqRel);
        if completion == 0 {
            return None; // another thread completed it first
        }
        Some((
            self.inflight_issue_ps.load(Ordering::Relaxed),
            completion,
            self.inflight_hinted.swap(false, Ordering::Relaxed),
        ))
    }

    /// True if a split fetch for this frame has been issued but not yet
    /// completed at a use site.
    pub fn has_inflight(&self) -> bool {
        self.inflight_completion_ps.load(Ordering::Acquire) != 0
    }

    /// True if the pending in-flight ticket (if any) was hint-issued.  Read
    /// at invalidation time, when a still-pending hinted ticket means the
    /// hint never paid off.
    pub fn inflight_is_hinted(&self) -> bool {
        self.has_inflight() && self.inflight_hinted.load(Ordering::Relaxed)
    }

    // ----- home-side prefetch directory --------------------------------------

    /// Record one fetch of this (home) page by `requester` at home-fetch
    /// sequence `seq`, shifting the previous observation into the
    /// second-most-recent slot.
    pub fn dir_record_fetch(&self, requester: u64, seq: u64) {
        let last_req = self.dir_last_req.load(Ordering::Relaxed);
        let last_seq = self.dir_last_seq.load(Ordering::Relaxed);
        self.dir_prev_req.store(last_req, Ordering::Relaxed);
        self.dir_prev_seq.store(last_seq, Ordering::Relaxed);
        self.dir_last_req.store(requester + 1, Ordering::Relaxed);
        self.dir_last_seq.store(seq, Ordering::Relaxed);
    }

    /// Record that a requester fetched page `next` from this home right
    /// after fetching this page (a successor pair learned at sequence
    /// `seq`).
    pub fn dir_record_next(&self, next: u64, seq: u64) {
        let tagged = next + 1;
        let prev = self.dir_next_page.swap(tagged, Ordering::Relaxed);
        if prev == tagged {
            self.dir_next_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dir_next_hits.store(1, Ordering::Relaxed);
            if prev != 0 {
                // Replacing one learned pair with a different one: the
                // churn signature of random fetch sequences.
                self.dir_next_flip_seq.store(seq, Ordering::Relaxed);
            }
        }
        self.dir_next_seq.store(seq, Ordering::Relaxed);
    }

    /// The page id some requester followed this page with, if that
    /// observation is within the last `window` home-fetch events before
    /// `now_seq` and the slot is not *churning*: a pair that was recently
    /// replaced by a different one and has not been re-confirmed since is
    /// noise (random traffic overwrites the slot on almost every fetch),
    /// while a freshly learned or stably repeating pair hints immediately.
    pub fn dir_recent_next(&self, now_seq: u64, window: u64) -> Option<u64> {
        let next = self.dir_next_page.load(Ordering::Relaxed);
        let seq = self.dir_next_seq.load(Ordering::Relaxed);
        let flip = self.dir_next_flip_seq.load(Ordering::Relaxed);
        // Re-confirmation depth 3: under skewed random traffic the popular
        // successors repeat by coincidence often enough that one repeat is
        // weak evidence, but two consecutive repeats are quadratically
        // rarer.  Stable pairs never flip, so they are exempt.
        let churning = flip != 0
            && now_seq.saturating_sub(flip) <= window
            && self.dir_next_hits.load(Ordering::Relaxed) < 3;
        if next != 0 && seq != 0 && !churning && now_seq.saturating_sub(seq) <= window {
            Some(next - 1)
        } else {
            None
        }
    }

    /// The up-to-two most recent fetchers of this page observed within the
    /// last `window` home-fetch events before `now_seq`, as `node + 1` tags
    /// (0 = empty slot).  The directory's co-fetch predicate intersects
    /// these across neighbouring pages: a hint for `q` is only justified by
    /// a node that fetched *both* the demanded page and `q` recently.
    pub fn dir_recent_fetchers(&self, now_seq: u64, window: u64) -> [u64; 2] {
        let pick = |seq: u64, req: u64| {
            if req != 0 && seq != 0 && now_seq.saturating_sub(seq) <= window {
                req
            } else {
                0
            }
        };
        [
            pick(
                self.dir_last_seq.load(Ordering::Relaxed),
                self.dir_last_req.load(Ordering::Relaxed),
            ),
            pick(
                self.dir_prev_seq.load(Ordering::Relaxed),
                self.dir_prev_req.load(Ordering::Relaxed),
            ),
        ]
    }

    // ----- home migration ----------------------------------------------------

    /// Observe one release-time diff from `writer` at this (home) frame and
    /// decide whether the page's home should migrate to that writer.
    ///
    /// Dominance is tracked with a Boyer–Moore majority vote over the
    /// stream of incoming diffs: alternating writers cancel each other out
    /// and never trigger a migration, while a writer that dominates the
    /// recent diff traffic accumulates a count.  A grant requires the count
    /// to reach `required_base`, doubled once per previous migration of this
    /// page (exponential back-off against ping-ponging homes).
    pub fn mig_observe_writer(&self, writer: u64, required_base: u64) -> bool {
        if self.home_wrote.swap(false, Ordering::Relaxed) {
            // The home wrote the page itself since the vote last looked: it
            // is an active writer whose accesses are already free, so no
            // remote writer can *dominate* right now.  Reset the vote — a
            // grant requires a fully home-quiet dominance window, which is
            // exactly the period (e.g. the home stuck in a long search
            // subtree) where handing the page over cannot cost the home
            // anything.
            self.mig_candidate.store(0, Ordering::Relaxed);
            self.mig_count.store(0, Ordering::Relaxed);
            return false;
        }
        let tagged = writer + 1;
        let candidate = self.mig_candidate.load(Ordering::Relaxed);
        if candidate == tagged {
            let count = self.mig_count.fetch_add(1, Ordering::Relaxed) + 1;
            let required = self.mig_required.load(Ordering::Relaxed).max(required_base);
            if count >= required {
                // Grant: reset the vote and double the bar for next time.
                self.mig_candidate.store(0, Ordering::Relaxed);
                self.mig_count.store(0, Ordering::Relaxed);
                self.mig_required
                    .store(required.saturating_mul(2), Ordering::Relaxed);
                return true;
            }
        } else if candidate == 0 || self.mig_count.load(Ordering::Relaxed) <= 1 {
            self.mig_candidate.store(tagged, Ordering::Relaxed);
            self.mig_count.store(1, Ordering::Relaxed);
        } else {
            self.mig_count.fetch_sub(1, Ordering::Relaxed);
        }
        false
    }

    /// The doubled-per-migration dominance requirement currently in force
    /// for this page (0 until the first migration).
    pub fn mig_required(&self) -> u64 {
        self.mig_required.load(Ordering::Relaxed)
    }

    /// Carry the page's migration back-off over to this frame (called on
    /// the new home frame when a migration grant promotes it, so the bar
    /// keeps doubling no matter which node currently hosts the page).
    pub fn mig_inherit_required(&self, required: u64) {
        self.mig_required.fetch_max(required, Ordering::Relaxed);
        self.mig_candidate.store(0, Ordering::Relaxed);
        self.mig_count.store(0, Ordering::Relaxed);
    }

    /// Promote this frame to be the page's home, merging the previous home's
    /// authoritative snapshot into it.
    ///
    /// Slots this node has modified since its last flush (still marked
    /// dirty) keep their local — newer — values; every other slot takes the
    /// snapshot value.  The dirty bitmap is cleared afterwards: a home frame
    /// never flushes, its writes *are* main memory.
    pub fn promote_to_home(&self, snapshot: &[u8]) {
        assert_eq!(
            snapshot.len(),
            SLOTS_PER_PAGE * 8,
            "page snapshot has the wrong length"
        );
        // Flip home first so concurrent writes stop recording dirty bits
        // (their values are kept either way: dirty bits only ever make us
        // prefer the local value).
        self.home.store(true, Ordering::Release);
        let data = self.data();
        for (i, chunk) in snapshot.chunks_exact(8).enumerate() {
            let word = &self.dirty[i / 64];
            if word.load(Ordering::Relaxed) & (1u64 << (i % 64)) == 0 {
                let v = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
                data.store(i, v);
            }
        }
        for word in &self.dirty {
            word.store(0, Ordering::Relaxed);
        }
        self.inflight_completion_ps.store(0, Ordering::Release);
        self.inflight_hinted.store(false, Ordering::Relaxed);
        self.protected.store(false, Ordering::Release);
        self.present.store(true, Ordering::Release);
    }

    /// Demote this (former home) frame to an ordinary cached copy.  The data
    /// stays valid — it was main memory an instant ago — so the node keeps
    /// reading it for free until its next cache invalidation.
    pub fn demote_from_home(&self) {
        self.home.store(false, Ordering::Release);
        self.protected.store(false, Ordering::Release);
        self.present.store(true, Ordering::Release);
    }

    /// Collect and clear the dirty slots, returning `(slot, value)` pairs.
    pub fn take_dirty(&self) -> Vec<(u16, u64)> {
        let mut out = Vec::new();
        for (w, word) in self.dirty.iter().enumerate() {
            let bits = word.swap(0, Ordering::Relaxed);
            if bits == 0 {
                continue;
            }
            let mut b = bits;
            while b != 0 {
                let bit = b.trailing_zeros() as usize;
                let slot = w * 64 + bit;
                out.push((slot as u16, self.data().load(slot)));
                b &= b - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_data_round_trips_through_bytes() {
        let p = PageData::zeroed();
        p.store(0, 0xDEAD_BEEF);
        p.store(511, u64::MAX);
        p.store(17, 42);
        let bytes = p.snapshot_bytes();
        assert_eq!(bytes.len(), 4096);

        let q = PageData::zeroed();
        q.fill_from_bytes(&bytes);
        assert_eq!(q.load(0), 0xDEAD_BEEF);
        assert_eq!(q.load(511), u64::MAX);
        assert_eq!(q.load(17), 42);
        assert_eq!(q.load(100), 0);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn short_snapshot_is_rejected() {
        PageData::zeroed().fill_from_bytes(&[0u8; 100]);
    }

    #[test]
    fn home_and_remote_frames_start_in_paper_initial_state() {
        let home = PageFrame::new_home();
        assert!(home.is_home());
        assert!(home.is_present());
        assert!(!home.is_protected());

        let remote = PageFrame::new_remote();
        assert!(!remote.is_home());
        assert!(!remote.is_present());
        assert!(remote.is_protected());
    }

    #[test]
    fn install_copy_makes_frame_accessible() {
        let remote = PageFrame::new_remote();
        let src = PageData::zeroed();
        src.store(3, 77);
        remote.install_copy(&src.snapshot_bytes());
        assert!(remote.is_present());
        assert!(!remote.is_protected());
        assert_eq!(remote.load_slot(3), 77);
    }

    #[test]
    fn invalidate_with_and_without_reprotection() {
        let remote = PageFrame::new_remote();
        remote.install_copy(&PageData::zeroed().snapshot_bytes());

        remote.invalidate(false); // java_ic style
        assert!(!remote.is_present());
        assert!(!remote.is_protected());

        remote.install_copy(&PageData::zeroed().snapshot_bytes());
        remote.invalidate(true); // java_pf style
        assert!(!remote.is_present());
        assert!(remote.is_protected());
    }

    #[test]
    fn dirty_tracking_only_on_non_home_frames() {
        let home = PageFrame::new_home();
        home.store_slot(5, 123);
        assert!(!home.has_dirty_slots());
        assert!(home.take_dirty().is_empty());

        let remote = PageFrame::new_remote();
        remote.store_slot(5, 123);
        remote.store_slot(64, 456);
        remote.store_slot(511, 789);
        assert!(remote.has_dirty_slots());
        let mut dirty = remote.take_dirty();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![(5, 123), (64, 456), (511, 789)]);
        // The bitmap is cleared by take_dirty.
        assert!(!remote.has_dirty_slots());
        assert!(remote.take_dirty().is_empty());
    }

    #[test]
    fn adaptive_epoch_rotation_tracks_density_and_streak() {
        let frame = PageFrame::new_remote();
        assert_eq!(frame.ad_mode(), AdMode::Check);
        assert_eq!(frame.ad_epoch_streak(), 0);

        // Epoch 1: 400 accesses.
        for _ in 0..400 {
            frame.ad_record_access();
        }
        assert_eq!(frame.ad_epoch_accesses(), 400);
        assert_eq!(frame.ad_rotate_epoch(), 100, "avg = (3*0 + 400) / 4");
        assert_eq!(frame.ad_epoch_accesses(), 0);
        assert_eq!(frame.ad_last_epoch_accesses(), 400);
        assert_eq!(frame.ad_avg_accesses(), 100);
        assert_eq!(frame.ad_epoch_streak(), 1);

        // Epoch 2: accessed again, streak grows and the average converges.
        for _ in 0..400 {
            frame.ad_record_access();
        }
        assert_eq!(frame.ad_rotate_epoch(), 175, "avg = (3*100 + 400) / 4");
        assert_eq!(frame.ad_epoch_streak(), 2);

        // Epoch 3: untouched — the average decays, the streak resets.
        assert_eq!(frame.ad_rotate_epoch(), 131, "avg = 3*175 / 4");
        assert_eq!(frame.ad_last_epoch_accesses(), 0);
        assert_eq!(frame.ad_epoch_streak(), 0);

        frame.ad_set_mode(AdMode::Protect);
        assert_eq!(frame.ad_mode(), AdMode::Protect);
    }

    #[test]
    fn speculative_prefetch_marker_reports_waste_only_when_untouched() {
        let frame = PageFrame::new_remote();
        // Prefetched and never touched: wasted.
        frame.ad_mark_prefetched();
        assert!(frame.ad_take_wasted_prefetch());
        assert!(!frame.ad_take_wasted_prefetch(), "marker is consumed");
        // Prefetched and then accessed: not wasted.
        frame.ad_mark_prefetched();
        frame.ad_record_access();
        assert!(!frame.ad_take_wasted_prefetch());
    }

    #[test]
    fn inflight_tickets_distinguish_hinted_from_plain() {
        let frame = PageFrame::new_remote();
        assert!(frame.take_inflight().is_none());

        frame.begin_inflight(10, 20);
        assert!(frame.has_inflight());
        assert!(!frame.inflight_is_hinted());
        assert_eq!(frame.take_inflight(), Some((10, 20, false)));
        assert!(frame.take_inflight().is_none(), "ticket consumed once");

        frame.begin_inflight_hinted(30, 40);
        assert!(frame.inflight_is_hinted());
        assert_eq!(frame.take_inflight(), Some((30, 40, true)));
        assert!(!frame.inflight_is_hinted());

        // Invalidation abandons a pending hinted ticket entirely.
        frame.begin_inflight_hinted(50, 60);
        frame.invalidate(false);
        assert!(!frame.has_inflight());
        assert!(!frame.inflight_is_hinted());
    }

    #[test]
    fn directory_tracks_the_last_two_fetchers() {
        let frame = PageFrame::new_home();
        // Never fetched: nothing is recent.
        assert_eq!(frame.dir_recent_fetchers(10, 100), [0, 0]);

        frame.dir_record_fetch(1, 5);
        assert_eq!(frame.dir_recent_fetchers(6, 8), [2, 0], "node 1 as tag 2");
        assert_eq!(
            frame.dir_recent_fetchers(50, 8),
            [0, 0],
            "stale observation"
        );

        // The previous fetcher is remembered one observation deep.
        frame.dir_record_fetch(2, 7);
        assert_eq!(frame.dir_recent_fetchers(8, 8), [3, 2]);
        frame.dir_record_fetch(2, 9);
        assert_eq!(
            frame.dir_recent_fetchers(10, 8),
            [3, 3],
            "node 1 aged out of the two-deep history"
        );
    }

    #[test]
    fn take_dirty_reports_latest_value_per_slot() {
        let remote = PageFrame::new_remote();
        remote.store_slot(9, 1);
        remote.store_slot(9, 2);
        remote.store_slot(9, 3);
        assert_eq!(remote.take_dirty(), vec![(9, 3)]);
    }
}
