//! Wire encoding of page-fetch requests and field-granularity diffs.
//!
//! `updateMainMemory` ships only the modified 8-byte slots of each cached
//! page back to the page's home node (the paper's "object-field granularity",
//! §3.1), so two nodes writing different fields of the same page never
//! overwrite each other's updates (no false sharing at flush time).

use hyperion_pm2::PageId;

/// One modified slot: `(slot index within the page, new value)`.
pub type DiffEntry = (u16, u64);

/// Encode a page-fetch request.
pub fn encode_page_request(page: PageId) -> Vec<u8> {
    page.0.to_le_bytes().to_vec()
}

/// Decode a page-fetch request.
///
/// # Panics
/// Panics if the payload is malformed.
pub fn decode_page_request(payload: &[u8]) -> PageId {
    assert_eq!(payload.len(), 8, "malformed page request");
    PageId(u64::from_le_bytes(payload.try_into().expect("8 bytes")))
}

/// Encode a batched page-fetch request: `count` contiguous pages starting at
/// `first`, all homed on the target node (`java_ad` batching).
///
/// # Panics
/// Panics if `count` is zero.
pub fn encode_page_batch_request(first: PageId, count: u32) -> Vec<u8> {
    assert!(count > 0, "a batched fetch requests at least one page");
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&first.0.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out
}

/// Decode a page-fetch request in either form: the 8-byte single-page
/// request of [`encode_page_request`] (count 1) or the 12-byte batched
/// request of [`encode_page_batch_request`].
///
/// # Panics
/// Panics if the payload is malformed.
pub fn decode_page_fetch_request(payload: &[u8]) -> (PageId, u32) {
    match payload.len() {
        8 => (decode_page_request(payload), 1),
        12 => {
            let first = PageId(u64::from_le_bytes(payload[0..8].try_into().expect("8")));
            let count = u32::from_le_bytes(payload[8..12].try_into().expect("4"));
            assert!(count > 0, "malformed batched page request: zero pages");
            (first, count)
        }
        _ => panic!("malformed page fetch request ({} bytes)", payload.len()),
    }
}

/// Encode a diff message: page id followed by `(slot, value)` pairs.
pub fn encode_diff(page: PageId, entries: &[DiffEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + entries.len() * 10);
    out.extend_from_slice(&page.0.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (slot, value) in entries {
        out.extend_from_slice(&slot.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Decode a diff message produced by [`encode_diff`].
///
/// # Panics
/// Panics if the payload is malformed.
pub fn decode_diff(payload: &[u8]) -> (PageId, Vec<DiffEntry>) {
    assert!(payload.len() >= 12, "diff payload too short");
    let page = PageId(u64::from_le_bytes(payload[0..8].try_into().expect("8")));
    let count = u32::from_le_bytes(payload[8..12].try_into().expect("4")) as usize;
    let body = &payload[12..];
    assert_eq!(body.len(), count * 10, "diff payload length mismatch");
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let off = i * 10;
        let slot = u16::from_le_bytes(body[off..off + 2].try_into().expect("2"));
        let value = u64::from_le_bytes(body[off + 2..off + 10].try_into().expect("8"));
        entries.push((slot, value));
    }
    (page, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_request_round_trip() {
        for p in [0u64, 1, 12345, u64::MAX / 2] {
            let enc = encode_page_request(PageId(p));
            assert_eq!(decode_page_request(&enc), PageId(p));
        }
    }

    #[test]
    #[should_panic(expected = "malformed page request")]
    fn short_page_request_rejected() {
        decode_page_request(&[1, 2, 3]);
    }

    #[test]
    fn batched_page_request_round_trip() {
        let enc = encode_page_batch_request(PageId(7), 4);
        assert_eq!(enc.len(), 12);
        assert_eq!(decode_page_fetch_request(&enc), (PageId(7), 4));
        // The single-page form decodes as a batch of one.
        let single = encode_page_request(PageId(9));
        assert_eq!(decode_page_fetch_request(&single), (PageId(9), 1));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_batch_request_rejected() {
        let _ = encode_page_batch_request(PageId(0), 0);
    }

    #[test]
    #[should_panic(expected = "malformed page fetch request")]
    fn odd_length_fetch_request_rejected() {
        decode_page_fetch_request(&[0u8; 10]);
    }

    #[test]
    fn diff_round_trip_preserves_entries_and_order() {
        let entries = vec![(0u16, 7u64), (511, u64::MAX), (42, 0)];
        let enc = encode_diff(PageId(9), &entries);
        let (page, dec) = decode_diff(&enc);
        assert_eq!(page, PageId(9));
        assert_eq!(dec, entries);
    }

    #[test]
    fn empty_diff_round_trip() {
        let enc = encode_diff(PageId(3), &[]);
        let (page, dec) = decode_diff(&enc);
        assert_eq!(page, PageId(3));
        assert!(dec.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn truncated_diff_rejected() {
        let mut enc = encode_diff(PageId(1), &[(1, 2), (3, 4)]);
        enc.pop();
        decode_diff(&enc);
    }

    #[test]
    fn diff_size_is_proportional_to_entry_count() {
        let small = encode_diff(PageId(1), &[(1, 1)]);
        let large = encode_diff(
            PageId(1),
            &(0..100u16).map(|i| (i, i as u64)).collect::<Vec<_>>(),
        );
        assert_eq!(small.len(), 12 + 10);
        assert_eq!(large.len(), 12 + 1000);
    }
}
