//! Wire encoding of page-fetch requests and field-granularity diffs.
//!
//! `updateMainMemory` ships only the modified 8-byte slots of each cached
//! page back to the page's home node (the paper's "object-field granularity",
//! §3.1), so two nodes writing different fields of the same page never
//! overwrite each other's updates (no false sharing at flush time).

use hyperion_pm2::{PageId, SLOTS_PER_PAGE};

/// One modified slot: `(slot index within the page, new value)`.
pub type DiffEntry = (u16, u64);

/// Tag bit on the leading page id of a fetch request marking it as
/// *hint-suppressed*: the home must not piggyback prefetch-directory hints
/// on the reply.  Hint-driven fetches set it so one hint can never recurse
/// into a chain of further hints.  Real page numbers never use the top bit.
const FETCH_NOHINT_TAG: u64 = 1 << 63;

/// Encode a page-fetch request.
pub fn encode_page_request(page: PageId) -> Vec<u8> {
    page.0.to_le_bytes().to_vec()
}

/// Encode a hint-suppressed page-fetch request (issued when converting a
/// prefetch-directory hint into a split-transaction fetch).
pub fn encode_page_request_nohint(page: PageId) -> Vec<u8> {
    (page.0 | FETCH_NOHINT_TAG).to_le_bytes().to_vec()
}

/// Decode a page-fetch request.
///
/// # Panics
/// Panics if the payload is malformed.
pub fn decode_page_request(payload: &[u8]) -> PageId {
    assert_eq!(payload.len(), 8, "malformed page request");
    PageId(u64::from_le_bytes(payload.try_into().expect("8 bytes")) & !FETCH_NOHINT_TAG)
}

/// Encode a batched page-fetch request: `count` contiguous pages starting at
/// `first`, all homed on the target node (`java_ad` batching).
///
/// # Panics
/// Panics if `count` is zero.
pub fn encode_page_batch_request(first: PageId, count: u32) -> Vec<u8> {
    assert!(count > 0, "a batched fetch requests at least one page");
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&first.0.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out
}

/// Decode a page-fetch request in either form: the 8-byte single-page
/// request of [`encode_page_request`] (count 1) or the 12-byte batched
/// request of [`encode_page_batch_request`].  The third component is `true`
/// when the home may piggyback prefetch-directory hints on the reply
/// (cleared by [`encode_page_request_nohint`]).
///
/// # Panics
/// Panics if the payload is malformed.
pub fn decode_page_fetch_request(payload: &[u8]) -> (PageId, u32, bool) {
    match payload.len() {
        8 => {
            let raw = u64::from_le_bytes(payload.try_into().expect("8 bytes"));
            (
                PageId(raw & !FETCH_NOHINT_TAG),
                1,
                raw & FETCH_NOHINT_TAG == 0,
            )
        }
        12 => {
            let raw = u64::from_le_bytes(payload[0..8].try_into().expect("8"));
            let count = u32::from_le_bytes(payload[8..12].try_into().expect("4"));
            assert!(count > 0, "malformed batched page request: zero pages");
            (
                PageId(raw & !FETCH_NOHINT_TAG),
                count,
                raw & FETCH_NOHINT_TAG == 0,
            )
        }
        _ => panic!("malformed page fetch request ({} bytes)", payload.len()),
    }
}

/// One prefetch-directory hint: a run of `1`-or-more contiguous pages
/// (starting at the id) the home predicts the requester will touch soon.
pub type HintRun = (PageId, u16);

/// Bytes one encoded hint entry occupies on the wire.
const HINT_ENTRY_BYTES: usize = 10;

/// Append a prefetch-directory hint trailer to a page-fetch reply: `hints`
/// entries of 10 bytes each (8-byte first page id + 2-byte run length)
/// followed by a 2-byte entry count.  The requester knows where the page
/// data ends (it knows how many pages it asked for), so the trailer is
/// parsed from the end of the reply.
pub fn append_fetch_hints(reply: &mut Vec<u8>, hints: &[HintRun]) {
    if hints.is_empty() {
        return;
    }
    for (first, run) in hints {
        assert!(*run > 0, "a hint run covers at least one page");
        reply.extend_from_slice(&first.0.to_le_bytes());
        reply.extend_from_slice(&run.to_le_bytes());
    }
    reply.extend_from_slice(&(hints.len() as u16).to_le_bytes());
}

/// Split a page-fetch reply into the raw page data of the `pages` requested
/// pages and the hint trailer appended by [`append_fetch_hints`] (empty when
/// the home sent none).
///
/// # Panics
/// Panics if the reply is malformed.
pub fn split_fetch_reply(reply: &[u8], pages: usize) -> (&[u8], Vec<HintRun>) {
    let data_len = pages * SLOTS_PER_PAGE * 8;
    if reply.len() == data_len {
        return (reply, Vec::new());
    }
    assert!(
        reply.len() >= data_len + 2,
        "fetch reply too short for a hint trailer"
    );
    let n = u16::from_le_bytes(reply[reply.len() - 2..].try_into().expect("2")) as usize;
    assert_eq!(
        reply.len(),
        data_len + n * HINT_ENTRY_BYTES + 2,
        "fetch reply hint trailer length mismatch"
    );
    let mut hints = Vec::with_capacity(n);
    let mut off = data_len;
    for _ in 0..n {
        let first = PageId(u64::from_le_bytes(
            reply[off..off + 8].try_into().expect("8"),
        ));
        let run = u16::from_le_bytes(reply[off + 8..off + 10].try_into().expect("2"));
        assert!(run > 0, "malformed hint run of zero pages");
        hints.push((first, run));
        off += HINT_ENTRY_BYTES;
    }
    (&reply[..data_len], hints)
}

/// Encode a diff message: page id followed by `(slot, value)` pairs.
pub fn encode_diff(page: PageId, entries: &[DiffEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + entries.len() * 10);
    out.extend_from_slice(&page.0.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (slot, value) in entries {
        out.extend_from_slice(&slot.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Tag bit marking a diff payload as the batched form of
/// [`encode_diff_batch`] (set on the leading page id, which never uses its
/// top bit for real page numbers).
const DIFF_BATCH_TAG: u64 = 1 << 63;

/// Encode a batched diff message: the diffs of `pages.len()` *contiguous*
/// pages starting at `first`, all homed on the target node — the flush-side
/// counterpart of [`encode_page_batch_request`].
///
/// Layout: tagged first page id (8), page count (4), then per page an entry
/// count (4) followed by its `(slot, value)` entries (10 each).
///
/// # Panics
/// Panics if `pages` is empty.
pub fn encode_diff_batch(first: PageId, pages: &[Vec<DiffEntry>]) -> Vec<u8> {
    assert!(
        !pages.is_empty(),
        "a batched diff flushes at least one page"
    );
    let entries: usize = pages.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(12 + pages.len() * 4 + entries * 10);
    out.extend_from_slice(&(first.0 | DIFF_BATCH_TAG).to_le_bytes());
    out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
    for page_entries in pages {
        out.extend_from_slice(&(page_entries.len() as u32).to_le_bytes());
        for (slot, value) in page_entries {
            out.extend_from_slice(&slot.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
    }
    out
}

/// Decode a diff message in either form: the single-page message of
/// [`encode_diff`] or the batched message of [`encode_diff_batch`].
///
/// # Panics
/// Panics if the payload is malformed.
pub fn decode_diff_message(payload: &[u8]) -> Vec<(PageId, Vec<DiffEntry>)> {
    assert!(payload.len() >= 12, "diff payload too short");
    let head = u64::from_le_bytes(payload[0..8].try_into().expect("8"));
    if head & DIFF_BATCH_TAG == 0 {
        let (page, entries) = decode_diff(payload);
        return vec![(page, entries)];
    }
    let first = head & !DIFF_BATCH_TAG;
    let pages = u32::from_le_bytes(payload[8..12].try_into().expect("4")) as usize;
    let mut out = Vec::with_capacity(pages);
    let mut off = 12usize;
    for k in 0..pages {
        assert!(off + 4 <= payload.len(), "batched diff truncated");
        let count = u32::from_le_bytes(payload[off..off + 4].try_into().expect("4")) as usize;
        off += 4;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            assert!(off + 10 <= payload.len(), "batched diff truncated");
            let slot = u16::from_le_bytes(payload[off..off + 2].try_into().expect("2"));
            let value = u64::from_le_bytes(payload[off + 2..off + 10].try_into().expect("8"));
            entries.push((slot, value));
            off += 10;
        }
        out.push((PageId(first + k as u64), entries));
    }
    assert_eq!(off, payload.len(), "batched diff length mismatch");
    out
}

/// Encode a home-migration grant carried in a diff-apply reply: the id of
/// the migrating page followed by the authoritative page snapshot the new
/// home starts from.  An empty reply is a plain acknowledgement.
pub fn encode_migration_grant(page: PageId, snapshot: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + snapshot.len());
    out.extend_from_slice(&page.0.to_le_bytes());
    out.extend_from_slice(snapshot);
    out
}

/// Decode a diff-apply reply: `None` for a plain acknowledgement, or the
/// migrating page's id for a migration grant.
pub fn decode_migration_grant(reply: &[u8]) -> Option<PageId> {
    if reply.is_empty() {
        return None;
    }
    assert!(reply.len() > 8, "malformed migration grant");
    Some(PageId(u64::from_le_bytes(
        reply[0..8].try_into().expect("8"),
    )))
}

/// Decode a diff message produced by [`encode_diff`].
///
/// # Panics
/// Panics if the payload is malformed.
pub fn decode_diff(payload: &[u8]) -> (PageId, Vec<DiffEntry>) {
    assert!(payload.len() >= 12, "diff payload too short");
    let page = PageId(u64::from_le_bytes(payload[0..8].try_into().expect("8")));
    let count = u32::from_le_bytes(payload[8..12].try_into().expect("4")) as usize;
    let body = &payload[12..];
    assert_eq!(body.len(), count * 10, "diff payload length mismatch");
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let off = i * 10;
        let slot = u16::from_le_bytes(body[off..off + 2].try_into().expect("2"));
        let value = u64::from_le_bytes(body[off + 2..off + 10].try_into().expect("8"));
        entries.push((slot, value));
    }
    (page, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_request_round_trip() {
        for p in [0u64, 1, 12345, u64::MAX / 2] {
            let enc = encode_page_request(PageId(p));
            assert_eq!(decode_page_request(&enc), PageId(p));
        }
    }

    #[test]
    #[should_panic(expected = "malformed page request")]
    fn short_page_request_rejected() {
        decode_page_request(&[1, 2, 3]);
    }

    #[test]
    fn batched_page_request_round_trip() {
        let enc = encode_page_batch_request(PageId(7), 4);
        assert_eq!(enc.len(), 12);
        assert_eq!(decode_page_fetch_request(&enc), (PageId(7), 4, true));
        // The single-page form decodes as a batch of one.
        let single = encode_page_request(PageId(9));
        assert_eq!(decode_page_fetch_request(&single), (PageId(9), 1, true));
    }

    #[test]
    fn nohint_request_round_trips_and_suppresses_hints() {
        let enc = encode_page_request_nohint(PageId(11));
        assert_eq!(enc.len(), 8);
        assert_eq!(decode_page_fetch_request(&enc), (PageId(11), 1, false));
        // The plain decoder masks the tag off, too.
        assert_eq!(decode_page_request(&enc), PageId(11));
    }

    #[test]
    fn fetch_reply_hint_trailer_round_trips() {
        let page = SLOTS_PER_PAGE * 8;
        let mut reply = vec![7u8; page * 2];
        // No hints: the reply is pure page data.
        append_fetch_hints(&mut reply, &[]);
        let (data, hints) = split_fetch_reply(&reply, 2);
        assert_eq!(data.len(), page * 2);
        assert!(hints.is_empty());
        // Two hint runs survive the round trip and leave the data intact.
        append_fetch_hints(&mut reply, &[(PageId(40), 3), (PageId(90), 1)]);
        let (data, hints) = split_fetch_reply(&reply, 2);
        assert_eq!(data.len(), page * 2);
        assert!(data.iter().all(|&b| b == 7));
        assert_eq!(hints, vec![(PageId(40), 3), (PageId(90), 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_length_hint_run_rejected() {
        let mut reply = Vec::new();
        append_fetch_hints(&mut reply, &[(PageId(1), 0)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn truncated_hint_trailer_rejected() {
        let mut reply = vec![0u8; SLOTS_PER_PAGE * 8];
        append_fetch_hints(&mut reply, &[(PageId(3), 2)]);
        reply.remove(SLOTS_PER_PAGE * 8); // drop one trailer byte
        let _ = split_fetch_reply(&reply, 1);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_batch_request_rejected() {
        let _ = encode_page_batch_request(PageId(0), 0);
    }

    #[test]
    #[should_panic(expected = "malformed page fetch request")]
    fn odd_length_fetch_request_rejected() {
        decode_page_fetch_request(&[0u8; 10]);
    }

    #[test]
    fn diff_round_trip_preserves_entries_and_order() {
        let entries = vec![(0u16, 7u64), (511, u64::MAX), (42, 0)];
        let enc = encode_diff(PageId(9), &entries);
        let (page, dec) = decode_diff(&enc);
        assert_eq!(page, PageId(9));
        assert_eq!(dec, entries);
    }

    #[test]
    fn empty_diff_round_trip() {
        let enc = encode_diff(PageId(3), &[]);
        let (page, dec) = decode_diff(&enc);
        assert_eq!(page, PageId(3));
        assert!(dec.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn truncated_diff_rejected() {
        let mut enc = encode_diff(PageId(1), &[(1, 2), (3, 4)]);
        enc.pop();
        decode_diff(&enc);
    }

    #[test]
    fn batched_diff_round_trip_and_single_form_interop() {
        let pages = vec![vec![(0u16, 1u64), (7, 2)], vec![], vec![(511, u64::MAX)]];
        let enc = encode_diff_batch(PageId(40), &pages);
        let dec = decode_diff_message(&enc);
        assert_eq!(dec.len(), 3);
        assert_eq!(dec[0], (PageId(40), pages[0].clone()));
        assert_eq!(dec[1], (PageId(41), Vec::new()));
        assert_eq!(dec[2], (PageId(42), pages[2].clone()));

        // The single-page form decodes as a batch of one.
        let single = encode_diff(PageId(9), &[(3, 4)]);
        assert_eq!(
            decode_diff_message(&single),
            vec![(PageId(9), vec![(3u16, 4u64)])]
        );
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_diff_batch_rejected() {
        let _ = encode_diff_batch(PageId(0), &[]);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_diff_batch_rejected() {
        let mut enc = encode_diff_batch(PageId(1), &[vec![(1, 2)], vec![(3, 4)]]);
        enc.pop();
        let _ = decode_diff_message(&enc);
    }

    #[test]
    fn migration_grant_round_trip() {
        assert_eq!(decode_migration_grant(&[]), None);
        let snapshot = vec![0u8; 64];
        let enc = encode_migration_grant(PageId(12), &snapshot);
        assert_eq!(enc.len(), 72);
        assert_eq!(decode_migration_grant(&enc), Some(PageId(12)));
    }

    #[test]
    fn diff_size_is_proportional_to_entry_count() {
        let small = encode_diff(PageId(1), &[(1, 1)]);
        let large = encode_diff(
            PageId(1),
            &(0..100u16).map(|i| (i, i as u64)).collect::<Vec<_>>(),
        );
        assert_eq!(small.len(), 12 + 10);
        assert_eq!(large.len(), 12 + 1000);
    }
}
