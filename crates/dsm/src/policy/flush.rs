//! Release-flush policies: how `updateMainMemory` ships the dirty diffs of
//! a monitor exit to their home nodes.
//!
//! The coalescing loop (contiguous same-home runs, one diff RPC per run)
//! is engine mechanism shared by both policies; the policy decides the
//! batch ceiling and whether the release may hand its flush RPCs to the
//! per-monitor deferred queue as split transactions.

/// The release-flush policy, consulted by the engine's flush loop.
///
/// **JMM obligations.**  A release must make every modification of the
/// releasing thread visible to the *next acquirer of the same monitor*.
/// Batching is always safe: it only changes how many RPCs carry the same
/// diffs, all completed before the release returns.  Deferring is safe
/// exactly because the JMM's release/acquire edge is per-monitor: the
/// engine returns a completion watermark that the monitor layer merges
/// into the next acquire of the same monitor, and release points with
/// thread-level edges (`Thread.start`, `join`, migration, program exit)
/// always flush blocking.  A policy has no way to drop or reorder diffs —
/// it only places their latency.
pub trait FlushPolicy: Send + Sync {
    /// Short policy name (`"sync"` / `"dfl"`): used in figure-row variant
    /// labels.
    fn name(&self) -> &'static str;

    /// Largest number of contiguous same-home dirty pages one diff-flush
    /// RPC may carry; 1 disables batched flushing.
    fn max_batch_pages(&self) -> usize;

    /// True if `updateMainMemory` at a monitor exit may issue its flush
    /// RPCs as split transactions completing at the next acquire of the
    /// same monitor (see [`crate::DeferredFlush`]).
    fn defers_release(&self) -> bool {
        false
    }
}

/// Synchronous release flushing: every flush RPC completes before the
/// release returns (batched up to `max_pages` per RPC; `max_pages == 1` is
/// the paper's one-RPC-per-page flush).
#[derive(Clone, Copy, Debug)]
pub struct BatchedFlush {
    /// Batch ceiling in pages (≥ 1).
    pub max_pages: usize,
}

impl FlushPolicy for BatchedFlush {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn max_batch_pages(&self) -> usize {
        self.max_pages
    }
}

/// Deferred release flushing: the release charges only the issue path of
/// its (batched) flush RPCs and the completion watermark is merged at the
/// next acquire of the same monitor.
#[derive(Clone, Copy, Debug)]
pub struct DeferredFlush {
    /// Batch ceiling in pages (≥ 1).
    pub max_pages: usize,
}

impl FlushPolicy for DeferredFlush {
    fn name(&self) -> &'static str {
        "dfl"
    }

    fn max_batch_pages(&self) -> usize {
        self.max_pages
    }

    fn defers_release(&self) -> bool {
        true
    }
}
