//! Pluggable protocol policies: the decision points of the DSM protocol,
//! extracted behind traits so alternative strategies (Zipf-aware
//! predictors, quorum placement, hierarchical detection) can slot in
//! without touching the engine.
//!
//! The engine ([`crate::DsmSystem`]) owns every *mechanism* — page fetch
//! RPCs, diff application, in-flight tickets, invalidation, flush
//! coalescing — and consults one policy object per decision point:
//!
//! | Trait                 | Decision                                | Defaults                                        |
//! |-----------------------|-----------------------------------------|-------------------------------------------------|
//! | [`DetectionPolicy`]   | how a remote access is noticed          | `java_ic` / `java_pf` / [`AdaptiveDetection`]   |
//! | [`Predictor`]         | which hints a fetch reply carries       | [`NoopPredictor`] / [`DirectoryPredictor`]      |
//! | [`MigrationPolicy`]   | when a page's home moves to a writer    | [`NoopMigration`] / [`MajorityVoteMigration`]   |
//! | [`FlushPolicy`]       | how release diffs reach their homes     | [`BatchedFlush`] / [`DeferredFlush`]            |
//! | [`ReplicationPolicy`] | replicated read-homes and write quorums | [`NoopReplication`] / [`QuorumReplication`]     |
//!
//! [`PolicySpec`] is the data-level description (what configs and builders
//! carry); [`PolicySpec::build`] turns it into the [`PolicySet`] of live
//! policy objects the engine holds.  [`PolicySpec::validate`] rejects
//! illegal combinations with a typed [`PolicyError`] before any cluster
//! state exists.
//!
//! Alongside the five trait slots, [`PolicySpec`] carries a
//! [`TopologySpec`]: the node-group shape of the two-level home hierarchy.
//! It is not a trait — it builds a plain [`hyperion_pm2::Topology`] value
//! the page table and the `dsm::combine` relay layer consult — but it is
//! selected, validated and defaulted exactly like the policy slots
//! (flat = `Noop`-equivalent, byte-identical behaviour).

mod detection;
mod flush;
mod migration;
mod predictor;
mod replication;

use std::sync::Arc;

use hyperion_model::MachineModel;
use hyperion_pm2::{FaultSpec, Topology};

pub(crate) use detection::resolve_marks;
pub use detection::{
    AccessAction, AdaptiveDetection, DetectionPolicy, EpochOutcome, InlineCheckDetection,
    PageProtectDetection,
};
pub use flush::{BatchedFlush, DeferredFlush, FlushPolicy};
pub use migration::{MajorityVoteMigration, MigrationPolicy, NoopMigration};
pub use predictor::{DirectoryPredictor, FetchObservation, NoopPredictor, Predictor};
pub use replication::{NoopReplication, QuorumReplication, ReplicationPolicy};

use crate::config::{AdaptiveParams, ProtocolKind, TransportConfig};

/// The five live policy objects one [`crate::DsmSystem`] consults.
#[derive(Clone)]
pub struct PolicySet {
    /// Access-detection state machine (the protocol proper).
    pub detection: Arc<dyn DetectionPolicy>,
    /// Home-side prefetch prediction.
    pub predictor: Arc<dyn Predictor>,
    /// Home-migration decision.
    pub migration: Arc<dyn MigrationPolicy>,
    /// Release-flush placement.
    pub flush: Arc<dyn FlushPolicy>,
    /// Replicated read-homes and write quorums.
    pub replication: Arc<dyn ReplicationPolicy>,
}

impl std::fmt::Debug for PolicySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicySet")
            .field("detection", &self.detection.name())
            .field("predictor", &self.predictor.name())
            .field("migration", &self.migration.name())
            .field("flush", &self.flush.name())
            .field("replication", &self.replication.name())
            .finish()
    }
}

/// Data-level choice of access-detection policy.
#[derive(Clone, Debug, PartialEq)]
pub enum DetectionSpec {
    /// `java_ic`: in-line locality checks.
    InlineCheck,
    /// `java_pf`: page-fault-based detection.
    PageProtect,
    /// `java_ad`: the adaptive per-page state machine, with its tunables.
    Adaptive(AdaptiveParams),
}

impl DetectionSpec {
    /// The name the built policy will report (`"java_ic"` / `"java_pf"` /
    /// `"java_ad"`).
    pub fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// The [`ProtocolKind`] this spec describes.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            DetectionSpec::InlineCheck => ProtocolKind::JavaIc,
            DetectionSpec::PageProtect => ProtocolKind::JavaPf,
            DetectionSpec::Adaptive(_) => ProtocolKind::JavaAd,
        }
    }

    /// Build the live policy object against a machine model.
    pub fn build(&self, machine: &MachineModel, nodes: usize) -> Arc<dyn DetectionPolicy> {
        match self {
            DetectionSpec::InlineCheck => Arc::new(InlineCheckDetection::new(machine)),
            DetectionSpec::PageProtect => Arc::new(PageProtectDetection::new(machine)),
            DetectionSpec::Adaptive(params) => {
                Arc::new(AdaptiveDetection::new(params, machine, nodes))
            }
        }
    }
}

/// Data-level choice of prefetch predictor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictorSpec {
    /// No hints (the directory records nothing).
    Noop,
    /// The cluster-wide prefetch directory.
    Directory {
        /// Largest number of contiguous pages one reply's hint run may name.
        hint_window: usize,
    },
}

impl PredictorSpec {
    /// The name the built policy will report (`"nohints"` / `"dir"`).
    pub fn name(&self) -> &'static str {
        match self {
            PredictorSpec::Noop => "nohints",
            PredictorSpec::Directory { .. } => "dir",
        }
    }

    /// Build the live policy object.
    pub fn build(&self) -> Arc<dyn Predictor> {
        match *self {
            PredictorSpec::Noop => Arc::new(NoopPredictor),
            PredictorSpec::Directory { hint_window } => {
                Arc::new(DirectoryPredictor { hint_window })
            }
        }
    }
}

/// Data-level choice of home-migration policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MigrationSpec {
    /// Homes never move.
    Noop,
    /// Boyer–Moore majority vote with geometric back-off.
    MajorityVote {
        /// Majority count a writer must reach before the home migrates.
        streak: u32,
    },
}

impl MigrationSpec {
    /// The name the built policy will report (`"nomig"` / `"mig"`).
    pub fn name(&self) -> &'static str {
        match self {
            MigrationSpec::Noop => "nomig",
            MigrationSpec::MajorityVote { .. } => "mig",
        }
    }

    /// Build the live policy object.
    pub fn build(&self) -> Arc<dyn MigrationPolicy> {
        match *self {
            MigrationSpec::Noop => Arc::new(NoopMigration),
            MigrationSpec::MajorityVote { streak } => Arc::new(MajorityVoteMigration { streak }),
        }
    }
}

/// Data-level choice of release-flush policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlushSpec {
    /// Synchronous (possibly batched) release flushing.
    Batched {
        /// Batch ceiling in pages; 1 disables batching.
        max_pages: usize,
    },
    /// Deferred release flushing (split transactions completing at the next
    /// acquire of the same monitor).
    Deferred {
        /// Batch ceiling in pages; 1 disables batching.
        max_pages: usize,
    },
}

impl FlushSpec {
    /// The name the built policy will report (`"sync"` / `"dfl"`).
    pub fn name(&self) -> &'static str {
        match self {
            FlushSpec::Batched { .. } => "sync",
            FlushSpec::Deferred { .. } => "dfl",
        }
    }

    /// Build the live policy object.
    pub fn build(&self) -> Arc<dyn FlushPolicy> {
        match *self {
            FlushSpec::Batched { max_pages } => Arc::new(BatchedFlush { max_pages }),
            FlushSpec::Deferred { max_pages } => Arc::new(DeferredFlush { max_pages }),
        }
    }
}

/// Data-level choice of replication policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicationSpec {
    /// No replicas (byte-identical to the pre-fault-plane engine).
    Noop,
    /// `r`-reader / `w`-quorum replicated read-homes.
    Quorum {
        /// Maximum read-replica holders per page (`r`).
        read_replicas: usize,
        /// Copies a write must reach, home included (`w`).
        write_quorum: usize,
    },
}

impl ReplicationSpec {
    /// The name the built policy will report (`"norep"` / `"quorum"`).
    pub fn name(&self) -> &'static str {
        match self {
            ReplicationSpec::Noop => "norep",
            ReplicationSpec::Quorum { .. } => "quorum",
        }
    }

    /// Build the live policy object.
    pub fn build(&self) -> Arc<dyn ReplicationPolicy> {
        match *self {
            ReplicationSpec::Noop => Arc::new(NoopReplication),
            ReplicationSpec::Quorum {
                read_replicas,
                write_quorum,
            } => Arc::new(QuorumReplication {
                read_replicas,
                write_quorum,
            }),
        }
    }
}

/// Data-level choice of node-group topology (the two-level home hierarchy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// Every node is its own self-led group: no relay, no combining,
    /// byte-identical to the pre-topology engine.
    Flat,
    /// Consecutive groups of `group_size` nodes, each led by its
    /// lowest-numbered member, which coalesces the group's cross-group
    /// fetch/diff traffic into upstream relay RPCs.
    Grouped {
        /// Nodes per group (at least 2; must divide the node count).
        group_size: usize,
    },
}

impl TopologySpec {
    /// The name reported in labels and diagnostics (`"flat"` / `"groups"`).
    pub fn name(&self) -> &'static str {
        match self {
            TopologySpec::Flat => "flat",
            TopologySpec::Grouped { .. } => "groups",
        }
    }

    /// The group size this spec describes (1 when flat).
    pub fn group_size(&self) -> usize {
        match *self {
            TopologySpec::Flat => 1,
            TopologySpec::Grouped { group_size } => group_size,
        }
    }

    /// Reject illegal shapes for a cluster of `nodes` nodes, and — when a
    /// fault schedule is armed — shapes the schedule could leave leaderless
    /// (a group whose every member is killed has nobody left to route or
    /// recover through).
    pub fn validate(&self, nodes: usize, fault: Option<&FaultSpec>) -> Result<(), PolicyError> {
        let group_size = match *self {
            TopologySpec::Flat => return Ok(()),
            TopologySpec::Grouped { group_size } => group_size,
        };
        if group_size < 2 {
            return Err(PolicyError::ZeroGroupSize);
        }
        if nodes == 0 || nodes % group_size != 0 {
            return Err(PolicyError::GroupSizeMismatch { group_size, nodes });
        }
        if let Some(spec) = fault {
            let topo = Topology::grouped(nodes, group_size).expect("validated above");
            for group in 0..topo.num_groups() {
                let all_killed = topo
                    .members(group)
                    .all(|m| spec.kill.is_some_and(|k| k.node == m.0));
                if all_killed {
                    return Err(PolicyError::LeaderlessGroup { group });
                }
            }
        }
        Ok(())
    }

    /// Build the [`Topology`] this spec describes for a cluster of `nodes`
    /// nodes.  Call [`TopologySpec::validate`] first; an invalid grouped
    /// shape falls back to flat rather than panicking.
    pub fn build(&self, nodes: usize) -> Topology {
        match *self {
            TopologySpec::Flat => Topology::flat(nodes),
            TopologySpec::Grouped { group_size } => {
                Topology::grouped(nodes, group_size).unwrap_or_else(|| Topology::flat(nodes))
            }
        }
    }
}

/// The full data-level policy selection of one run: what configs carry and
/// builders construct, turned into live objects by [`PolicySpec::build`].
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySpec {
    /// Access-detection choice.
    pub detection: DetectionSpec,
    /// Prefetch-prediction choice.
    pub predictor: PredictorSpec,
    /// Home-migration choice.
    pub migration: MigrationSpec,
    /// Release-flush choice.
    pub flush: FlushSpec,
    /// Replication choice.
    pub replication: ReplicationSpec,
    /// Node-group topology choice (the two-level home hierarchy).
    pub topology: TopologySpec,
}

impl PolicySpec {
    /// The spec the legacy flag surface describes: a [`ProtocolKind`] plus
    /// [`TransportConfig`] booleans map onto exactly one policy per
    /// decision point (`false` flags map to the `Noop`/synchronous
    /// defaults).
    pub fn from_config(
        kind: ProtocolKind,
        params: &AdaptiveParams,
        transport: &TransportConfig,
    ) -> PolicySpec {
        let detection = match kind {
            ProtocolKind::JavaIc => DetectionSpec::InlineCheck,
            ProtocolKind::JavaPf => DetectionSpec::PageProtect,
            ProtocolKind::JavaAd => DetectionSpec::Adaptive(params.clone()),
        };
        PolicySpec {
            detection,
            predictor: transport.predictor_spec(),
            migration: transport.migration_spec(),
            flush: transport.flush_spec(),
            replication: transport.replication_spec(),
            topology: transport.topology_spec(),
        }
    }

    /// Build the live [`PolicySet`] against a machine model.
    pub fn build(&self, machine: &MachineModel, nodes: usize) -> PolicySet {
        PolicySet {
            detection: self.detection.build(machine, nodes),
            predictor: self.predictor.build(),
            migration: self.migration.build(),
            flush: self.flush.build(),
            replication: self.replication.build(),
        }
    }

    /// Reject illegal policy combinations before any cluster state exists.
    ///
    /// `overlapped_fetches` is the engine's split-transaction mode (see
    /// [`TransportConfig::overlapped_fetches`]): the directory predictor is
    /// pointless without it — hints convert into overlapped fetches — so
    /// that combination is rejected rather than silently ignored.
    pub fn validate(&self, overlapped_fetches: bool) -> Result<(), PolicyError> {
        if let DetectionSpec::Adaptive(params) = &self.detection {
            validate_adaptive(params)?;
        }
        match self.predictor {
            PredictorSpec::Directory { hint_window } => {
                if hint_window == 0 {
                    return Err(PolicyError::ZeroHintWindow);
                }
                if !overlapped_fetches {
                    return Err(PolicyError::HintsRequireOverlappedFetches);
                }
            }
            PredictorSpec::Noop => {}
        }
        if let MigrationSpec::MajorityVote { streak } = self.migration {
            if streak == 0 {
                return Err(PolicyError::ZeroMigrationStreak);
            }
        }
        match self.flush {
            FlushSpec::Batched { max_pages } => {
                if max_pages == 0 {
                    return Err(PolicyError::ZeroFlushBatch);
                }
            }
            FlushSpec::Deferred { max_pages } => {
                if max_pages == 0 {
                    return Err(PolicyError::DeferredFlushWithoutBatching);
                }
            }
        }
        if let ReplicationSpec::Quorum {
            read_replicas,
            write_quorum,
        } = self.replication
        {
            if read_replicas == 0 {
                return Err(PolicyError::ZeroReadReplicas);
            }
            if write_quorum == 0 || write_quorum > read_replicas + 1 {
                return Err(PolicyError::InvalidWriteQuorum);
            }
        }
        if let TopologySpec::Grouped { group_size } = self.topology {
            // The node-count and fault-schedule checks need the cluster
            // shape and run in `TopologySpec::validate` (called with the
            // node count by the config layer); the shape-free part is
            // checked here so a standalone spec still fails fast.
            if group_size < 2 {
                return Err(PolicyError::ZeroGroupSize);
            }
        }
        Ok(())
    }
}

/// Validate [`AdaptiveParams`] on their own (they are checked for every
/// run, whichever protocol is selected, so a sweep harness fails fast).
pub fn validate_adaptive(params: &AdaptiveParams) -> Result<(), PolicyError> {
    if params.max_batch_pages == 0 {
        return Err(PolicyError::ZeroAdaptiveBatch);
    }
    if params.hi_multiple <= 0.0
        || params.lo_multiple < 0.0
        || params.lo_multiple >= params.hi_multiple
    {
        return Err(PolicyError::InvalidHysteresis);
    }
    Ok(())
}

/// An illegal policy selection, rejected at config-build time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyError {
    /// `AdaptiveParams::max_batch_pages` is 0 (1 batches nothing, 0 fetches
    /// nothing).
    ZeroAdaptiveBatch,
    /// The adaptive switching band is not a hysteresis band
    /// (`0 <= lo_multiple < hi_multiple` is required).
    InvalidHysteresis,
    /// A synchronous flush with a zero page ceiling would flush nothing.
    ZeroFlushBatch,
    /// Deferred release flushing hands *batches* to the deferred queue; a
    /// zero batch ceiling leaves it nothing to defer.
    DeferredFlushWithoutBatching,
    /// A majority-vote migration with a zero streak would migrate on no
    /// evidence.
    ZeroMigrationStreak,
    /// A directory predictor with a zero hint window can never hint.
    ZeroHintWindow,
    /// The directory predictor converts hints into overlapped fetches;
    /// without [`TransportConfig::overlapped_fetches`] it would silently
    /// generate hints nobody uses.
    HintsRequireOverlappedFetches,
    /// Quorum replication with zero read replicas keeps no copies to elect
    /// a new home from.
    ZeroReadReplicas,
    /// The write quorum must name at least the home and at most the home
    /// plus every read replica (`1 <= w <= r + 1`).
    InvalidWriteQuorum,
    /// A grouped topology needs groups of at least 2 nodes (1-node groups
    /// are the flat topology; 0-node groups are nothing at all).
    ZeroGroupSize,
    /// The group size must divide the node count so every group is whole.
    GroupSizeMismatch {
        /// The requested nodes-per-group.
        group_size: usize,
        /// The cluster's node count it fails to divide.
        nodes: usize,
    },
    /// The armed fault schedule kills every member of one group, leaving
    /// nobody to route its traffic or recover its pages through.
    LeaderlessGroup {
        /// Index of the group the schedule empties.
        group: usize,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            PolicyError::ZeroAdaptiveBatch => {
                "max_batch_pages must be at least 1 (1 batches nothing, 0 fetches nothing)"
            }
            PolicyError::InvalidHysteresis => {
                "switching hysteresis needs 0 <= lo_multiple < hi_multiple"
            }
            PolicyError::ZeroFlushBatch => "max_flush_batch_pages must be at least 1",
            PolicyError::DeferredFlushWithoutBatching => {
                "deferred release flushing needs a flush batch of at least 1 page"
            }
            PolicyError::ZeroMigrationStreak => "migration_streak must be at least 1",
            PolicyError::ZeroHintWindow => "hint_window must be at least 1",
            PolicyError::HintsRequireOverlappedFetches => {
                "prefetch hints require overlapped fetches (hints convert into split transactions)"
            }
            PolicyError::ZeroReadReplicas => "quorum replication needs at least one read replica",
            PolicyError::InvalidWriteQuorum => {
                "write quorum must satisfy 1 <= w <= read_replicas + 1"
            }
            PolicyError::ZeroGroupSize => {
                "a grouped topology needs groups of at least 2 nodes (use flat for 1)"
            }
            PolicyError::GroupSizeMismatch { group_size, nodes } => {
                return write!(
                    f,
                    "group size {group_size} must divide the node count {nodes}"
                );
            }
            PolicyError::LeaderlessGroup { group } => {
                return write!(
                    f,
                    "the fault schedule kills every member of group {group}; \
                     no live node remains to route or recover through"
                );
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for PolicyError {}
