//! Access-detection policies: how a node notices that a `get`/`put` touched
//! a remote object (§3.2, §3.3 of the paper).
//!
//! The three implementations correspond to the three protocols: explicit
//! in-line checks ([`InlineCheckDetection`], `java_ic`), page-fault-based
//! detection ([`PageProtectDetection`], `java_pf`) and the adaptive per-page
//! state machine between the two ([`AdaptiveDetection`], `java_ad`).

use std::sync::atomic::{AtomicU64, Ordering};

use hyperion_model::{CpuModel, MachineModel, NodeStats, ThreadClock, VTime};
use hyperion_pm2::NodeId;

use crate::config::AdaptiveParams;
use crate::page::{AdMode, PageFrame};

/// What an access-detection policy decided about one `get`/`put`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessAction {
    /// The access proceeds on the local copy; detection charged whatever it
    /// costs, the engine does nothing further.
    Granted,
    /// The page must be fetched from its home before the access proceeds.
    Fetch {
        /// The fetch must end with an `mprotect` opening the page, because
        /// this policy detected the access through page protection.
        unprotect: bool,
    },
}

/// What closing a page's invalidation epoch observed (one page, one epoch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochOutcome {
    /// The page switched detection technique at this boundary; the engine
    /// charges the protocol-switch cost and counts it.
    pub switched: bool,
    /// The page was speculatively prefetched last epoch and never accessed;
    /// the engine counts it into the waste throttles.
    pub wasted_prefetch: bool,
}

/// The per-page access-detection state machine of one protocol.
///
/// **JMM obligations.**  Detection is the *only* protocol-variable part of
/// the consistency protocol: every policy must (a) report [`AccessAction::
/// Fetch`] for any access to a page the node holds no valid copy of — an
/// acquire invalidates cached copies, so this is what makes a post-acquire
/// read see the home's (released) values — and (b) never report `Fetch` in a
/// way that skips the engine's fetch path, which is where the
/// happens-before-carrying page copy is installed.  Policies may differ
/// freely in *cost* (checks vs faults) and in *when* they flip technique,
/// because both are charged at points where no copy exists (the access
/// itself, or the invalidation boundary where the copy is dropped anyway).
pub trait DetectionPolicy: Send + Sync {
    /// Short protocol name (`"java_ic"` / `"java_pf"` / `"java_ad"`): used
    /// in figure labels and reports.
    fn name(&self) -> &'static str;

    /// Apply detection for one access to `frame`: charge the detection cost
    /// to `clock`, bump the detection counters on `stats`, and say whether
    /// the engine must fetch the page first.
    ///
    /// JMM: must return [`AccessAction::Fetch`] whenever the node has no
    /// valid copy (neither home nor present-and-unprotected); returning
    /// `Granted` there would let a post-acquire access read stale bytes.
    fn on_access(
        &self,
        stats: &NodeStats,
        clock: &mut ThreadClock,
        frame: &PageFrame,
    ) -> AccessAction;

    /// Whether installing a fetched copy of `frame` must end with an
    /// `mprotect` that opens the page (protection-detected pages only).
    /// Consulted on the explicit-prefetch paths (`loadIntoCache`, span
    /// prefetch, hint conversion), where no access triggered the fetch.
    ///
    /// JMM: purely a cost decision — the copy itself is installed either
    /// way.
    fn unprotect_on_install(&self, frame: &PageFrame) -> bool;

    /// `Some(max_batch_pages)` if fetches under this policy may batch a run
    /// of contiguous same-home pages into one RPC; `None` routes every
    /// fetch through the single-page path.
    ///
    /// JMM: batching riders are full page copies installed by the same
    /// reply, so a rider is exactly as fresh as the demanded page.
    fn fetch_batching(&self) -> Option<usize> {
        None
    }

    /// True if `frame`'s epoch history predicts it will be re-accessed next
    /// epoch — the speculation predicate for batched-fetch riders.
    ///
    /// JMM: speculation only ever *adds* page copies at fetch time; a wrong
    /// guess is wasted bytes, never stale ones (the copy is installed
    /// before any access and invalidated at the next acquire like any
    /// other).
    fn predicts_reaccess(&self, _frame: &PageFrame) -> bool {
        false
    }

    /// Close `frame`'s invalidation epoch at an acquire: rotate per-epoch
    /// access statistics and, for adaptive policies, flip the page's
    /// detection technique.  Runs for every non-home frame, present or not,
    /// *before* the copy is dropped.
    ///
    /// JMM: the acquire drops the copy regardless of what this returns, so
    /// a technique flip can never be observed by an access — this is the
    /// one boundary where per-page state may change for free.
    fn on_epoch_close(&self, _node: NodeId, _frame: &PageFrame) -> EpochOutcome {
        EpochOutcome::default()
    }

    /// Whether invalidating `frame`'s cached copy must revoke its access
    /// rights (costing one `mprotect` over the cached region per
    /// invalidation, §3.3).
    ///
    /// JMM: a policy that detects through protection *must* return true for
    /// its protection-detected pages — an unprotected stale copy would
    /// satisfy the next access without a fault, bypassing the fetch that
    /// the acquire's invalidation demands.
    fn reprotect_on_invalidate(&self, frame: &PageFrame) -> bool;

    /// Hook after a node finished an `invalidateCache`: the adaptive
    /// policy's online threshold tuner runs here.  Default: nothing.
    ///
    /// JMM: runs with no copies cached, so anything it adjusts only affects
    /// future cost decisions.
    fn after_invalidate(&self, _node: NodeId, _stats: &NodeStats) {}

    /// The `hi`/`lo` switching marks `node` currently uses, if this policy
    /// has any (`None` for the fixed-technique policies).
    fn thresholds_on(&self, _node: NodeId) -> Option<(u64, u64)> {
        None
    }
}

/// `java_ic`: every access pays an explicit in-line locality check.
#[derive(Debug)]
pub struct InlineCheckDetection {
    cpu: CpuModel,
}

impl InlineCheckDetection {
    /// Build against a machine model (the in-line check cost comes from its
    /// CPU model).
    pub fn new(machine: &MachineModel) -> Self {
        InlineCheckDetection {
            cpu: machine.cpu.clone(),
        }
    }
}

impl DetectionPolicy for InlineCheckDetection {
    fn name(&self) -> &'static str {
        "java_ic"
    }

    fn on_access(
        &self,
        stats: &NodeStats,
        clock: &mut ThreadClock,
        frame: &PageFrame,
    ) -> AccessAction {
        // Every access pays the in-line locality check, local or not.
        NodeStats::bump(&stats.locality_checks);
        clock.advance(self.cpu.locality_check());
        if !frame.is_home() && !frame.is_present() {
            AccessAction::Fetch { unprotect: false }
        } else {
            AccessAction::Granted
        }
    }

    fn unprotect_on_install(&self, _frame: &PageFrame) -> bool {
        false
    }

    fn reprotect_on_invalidate(&self, _frame: &PageFrame) -> bool {
        false
    }
}

/// `java_pf`: accesses to present, unprotected pages cost nothing; the
/// first access to a protected page takes a (simulated) page fault.
#[derive(Debug)]
pub struct PageProtectDetection {
    fault: VTime,
}

impl PageProtectDetection {
    /// Build against a machine model (the fault cost comes from its DSM
    /// cost model).
    pub fn new(machine: &MachineModel) -> Self {
        PageProtectDetection {
            fault: machine.dsm.page_fault,
        }
    }
}

impl DetectionPolicy for PageProtectDetection {
    fn name(&self) -> &'static str {
        "java_pf"
    }

    fn on_access(
        &self,
        stats: &NodeStats,
        clock: &mut ThreadClock,
        frame: &PageFrame,
    ) -> AccessAction {
        if frame.is_home() || (frame.is_present() && !frame.is_protected()) {
            // Raw memory access: zero protocol overhead.
            return AccessAction::Granted;
        }
        // Simulated SIGSEGV: fault cost, then fetch plus an mprotect to open
        // the page for subsequent accesses.
        NodeStats::bump(&stats.page_faults);
        clock.advance(self.fault);
        AccessAction::Fetch { unprotect: true }
    }

    fn unprotect_on_install(&self, _frame: &PageFrame) -> bool {
        true
    }

    fn reprotect_on_invalidate(&self, _frame: &PageFrame) -> bool {
        true
    }
}

/// The thresholds of [`AdaptiveParams`] resolved against a concrete machine
/// model (absolute access counts instead of break-even multiples).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AdaptiveTuning {
    /// Check → Protect when a closed epoch saw at least this many accesses.
    pub(crate) hi: u64,
    /// Protect → Check when a closed epoch saw at most this many accesses.
    pub(crate) lo: u64,
    /// Largest batched-fetch size in pages (≥ 1).
    pub(crate) max_batch: usize,
    /// Minimum epoch streak for history-driven prefetch eligibility.
    pub(crate) min_streak: u64,
}

impl AdaptiveTuning {
    pub(crate) fn resolve(params: &AdaptiveParams, break_even: u64) -> AdaptiveTuning {
        let hi = ((break_even as f64) * params.hi_multiple).ceil().max(1.0) as u64;
        let lo = (((break_even as f64) * params.lo_multiple).floor() as u64).min(hi - 1);
        AdaptiveTuning {
            hi,
            lo,
            max_batch: params.max_batch_pages.max(1),
            min_streak: params.min_prefetch_streak,
        }
    }
}

/// The `(hi, lo)` switching marks `params` resolve to on a machine with the
/// given break-even access count — what [`crate::DsmSystem::
/// adaptive_thresholds`] reports for every protocol.
pub(crate) fn resolve_marks(params: &AdaptiveParams, break_even: u64) -> (u64, u64) {
    let t = AdaptiveTuning::resolve(params, break_even);
    (t.hi, t.lo)
}

/// Per-node online-adaptive threshold state (see
/// [`AdaptiveParams::online_thresholds`]): the node's current `hi`/`lo`
/// marks plus the counter snapshots of the current observation window.
#[derive(Debug, Default)]
struct NodeTuning {
    hi: AtomicU64,
    lo: AtomicU64,
    window_epochs: AtomicU64,
    switches_base: AtomicU64,
    waste_base: AtomicU64,
}

/// Invalidation episodes per online-threshold observation window.
const TUNING_WINDOW: u64 = 8;

/// The widest the online tuner may stretch the hysteresis band, as a
/// multiple of the configured thresholds.
const TUNING_SPAN: u64 = 8;

/// `java_ad`: every cached page runs its own state machine between in-line
/// checks and page protection, flipped at invalidation boundaries with
/// hysteresis around the cost-model break-even
/// `n* = ⌈(t_fault + t_mprotect) / t_check⌉`.
#[derive(Debug)]
pub struct AdaptiveDetection {
    cpu: CpuModel,
    fault: VTime,
    ad: AdaptiveTuning,
    online: bool,
    tuning: Vec<NodeTuning>,
}

impl AdaptiveDetection {
    /// Resolve `params` against `machine`'s break-even count and build the
    /// per-node threshold state for `nodes` nodes.
    pub fn new(params: &AdaptiveParams, machine: &MachineModel, nodes: usize) -> Self {
        let ad = AdaptiveTuning::resolve(params, machine.adaptive_break_even());
        let tuning = (0..nodes)
            .map(|_| {
                let t = NodeTuning::default();
                t.hi.store(ad.hi, Ordering::Relaxed);
                t.lo.store(ad.lo, Ordering::Relaxed);
                t
            })
            .collect();
        AdaptiveDetection {
            cpu: machine.cpu.clone(),
            fault: machine.dsm.page_fault,
            ad,
            online: params.online_thresholds,
            tuning,
        }
    }

    /// The marks `node` currently switches on.
    fn marks(&self, node: NodeId) -> (u64, u64) {
        if self.online {
            let t = &self.tuning[node.index()];
            (t.hi.load(Ordering::Relaxed), t.lo.load(Ordering::Relaxed))
        } else {
            (self.ad.hi, self.ad.lo)
        }
    }

    /// Online threshold tuning (see [`AdaptiveParams::online_thresholds`]):
    /// every [`TUNING_WINDOW`] invalidation episodes, look at how many
    /// detection-mode switches and wasted prefetches the node accumulated.
    /// A flapping or mispredicting node doubles its `hi` mark and halves its
    /// `lo` mark — demanding much stronger evidence before the next switch —
    /// bounded to [`TUNING_SPAN`]× the configured band; a clean window
    /// relaxes the marks halfway back towards the configured ones.
    fn tune_thresholds(&self, node: NodeId, stats: &NodeStats) {
        let t = &self.tuning[node.index()];
        let epochs = t.window_epochs.fetch_add(1, Ordering::Relaxed) + 1;
        if epochs < TUNING_WINDOW {
            return;
        }
        t.window_epochs.store(0, Ordering::Relaxed);
        let switches_now = stats.protocol_switches.load(Ordering::Relaxed);
        let waste_now = stats.pages_prefetch_wasted.load(Ordering::Relaxed);
        let d_switches =
            switches_now.saturating_sub(t.switches_base.swap(switches_now, Ordering::Relaxed));
        let d_waste = waste_now.saturating_sub(t.waste_base.swap(waste_now, Ordering::Relaxed));
        let (hi0, lo0) = (self.ad.hi, self.ad.lo);
        let hi = t.hi.load(Ordering::Relaxed);
        let lo = t.lo.load(Ordering::Relaxed);
        // The EWMA smoothing already caps how fast a single page can flap
        // (crossing both marks takes ≥ 4 epochs), so even two switches per
        // window is sustained mode churn rather than one-off adaptation.
        if d_switches >= TUNING_WINDOW / 4 || d_waste >= TUNING_WINDOW {
            let new_hi = (hi.saturating_mul(2)).min(hi0.saturating_mul(TUNING_SPAN));
            let new_lo = (lo / 2).max(lo0 / TUNING_SPAN);
            t.hi.store(new_hi, Ordering::Relaxed);
            t.lo.store(new_lo.min(new_hi - 1), Ordering::Relaxed);
        } else if d_switches == 0 && d_waste == 0 && (hi != hi0 || lo != lo0) {
            let new_hi = hi0 + (hi - hi0) / 2;
            let new_lo = lo + (lo0.saturating_sub(lo)).div_ceil(2);
            t.hi.store(new_hi, Ordering::Relaxed);
            t.lo.store(new_lo.min(new_hi - 1), Ordering::Relaxed);
        }
    }
}

impl DetectionPolicy for AdaptiveDetection {
    fn name(&self) -> &'static str {
        "java_ad"
    }

    fn on_access(
        &self,
        stats: &NodeStats,
        clock: &mut ThreadClock,
        frame: &PageFrame,
    ) -> AccessAction {
        if frame.is_home() {
            // Home pages are never protected and need no detection — the pf
            // mechanics `java_ad` builds on give them raw access for free.
            return AccessAction::Granted;
        }
        frame.ad_record_access();
        match frame.ad_mode() {
            AdMode::Check => {
                // `java_ic` mechanics for this page.
                NodeStats::bump(&stats.locality_checks);
                clock.advance(self.cpu.locality_check());
                if !frame.is_present() {
                    AccessAction::Fetch { unprotect: false }
                } else {
                    AccessAction::Granted
                }
            }
            AdMode::Protect => {
                // `java_pf` mechanics for this page.
                if frame.is_present() && !frame.is_protected() {
                    return AccessAction::Granted;
                }
                NodeStats::bump(&stats.page_faults);
                clock.advance(self.fault);
                AccessAction::Fetch { unprotect: true }
            }
        }
    }

    fn unprotect_on_install(&self, frame: &PageFrame) -> bool {
        frame.ad_mode() == AdMode::Protect
    }

    fn fetch_batching(&self) -> Option<usize> {
        Some(self.ad.max_batch)
    }

    fn predicts_reaccess(&self, frame: &PageFrame) -> bool {
        frame.ad_epoch_streak() >= self.ad.min_streak && frame.ad_last_epoch_accesses() > 0
    }

    fn on_epoch_close(&self, node: NodeId, frame: &PageFrame) -> EpochOutcome {
        // The invalidation boundary is the one place a page may change
        // detection technique: its copy is dropped here, so no access can
        // observe a half-switched page.  Every materialised frame closes its
        // epoch (absent frames record a zero epoch, which resets their
        // prefetch streak).  The decision runs on the smoothed
        // accesses-per-epoch so one spiky epoch cannot flip the page.
        let (hi, lo) = self.marks(node);
        let avg = frame.ad_rotate_epoch();
        let wasted_prefetch = frame.ad_take_wasted_prefetch();
        let switched = match frame.ad_mode() {
            AdMode::Check if avg >= hi => {
                frame.ad_set_mode(AdMode::Protect);
                true
            }
            AdMode::Protect if avg <= lo => {
                frame.ad_set_mode(AdMode::Check);
                true
            }
            _ => false,
        };
        EpochOutcome {
            switched,
            wasted_prefetch,
        }
    }

    fn reprotect_on_invalidate(&self, frame: &PageFrame) -> bool {
        // Only protection-detected pages need their access rights revoked;
        // check-mode pages are re-detected in software.
        frame.ad_mode() == AdMode::Protect
    }

    fn after_invalidate(&self, node: NodeId, stats: &NodeStats) {
        if self.online {
            self.tune_thresholds(node, stats);
        }
    }

    fn thresholds_on(&self, node: NodeId) -> Option<(u64, u64)> {
        let t = &self.tuning[node.index()];
        Some((t.hi.load(Ordering::Relaxed), t.lo.load(Ordering::Relaxed)))
    }
}
