//! Home-migration policies: when the home of a write-shared page should
//! move to the writer that dominates its diff traffic.
//!
//! The policy only makes the *decision*; the hand-over mechanics (promote
//! the writer's frame from the authoritative snapshot, re-route the home,
//! demote the old home, ship the grant on the reply) stay in the
//! diff-apply service, because they are what keeps a migration atomic with
//! respect to concurrent fetches.

use hyperion_pm2::NodeId;

use crate::page::PageFrame;

/// The home-migration decision policy, consulted by the diff-apply handler
/// once per applied diff page.
///
/// **JMM obligations.**  Migration re-labels which replica is
/// authoritative; it must never be decided *between* the diff application
/// and the snapshot that seeds the new home — the handler calls this while
/// holding the home frame, immediately after applying the diff, so the
/// granted snapshot always contains the diff that triggered it.  A policy
/// is free to say "never" ([`NoopMigration`]); it must not say "migrate"
/// for the current home itself (`writer == home`), which would demote the
/// only authoritative copy.
pub trait MigrationPolicy: Send + Sync {
    /// Short policy name (`"nomig"` / `"mig"`): used in figure-row variant
    /// labels.
    fn name(&self) -> &'static str;

    /// Decide whether `frame` (the current home copy of a page, diff just
    /// applied) should hand its home over to `writer`.  Called at most once
    /// per diff message per page, with `grant`-per-message exclusivity
    /// enforced by the handler.
    ///
    /// Implementations may keep per-page vote state on the frame; they must
    /// leave the frame's *data* untouched.
    fn should_migrate(&self, frame: &PageFrame, writer: NodeId, home: NodeId) -> bool;
}

/// Never migrate: homes stay where the allocator placed them, and no vote
/// state is touched — byte-identical to running with home migration
/// compiled out.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopMigration;

impl MigrationPolicy for NoopMigration {
    fn name(&self) -> &'static str {
        "nomig"
    }

    fn should_migrate(&self, _frame: &PageFrame, _writer: NodeId, _home: NodeId) -> bool {
        false
    }
}

/// Boyer–Moore majority vote over the page's incoming diff stream: the home
/// migrates to a writer once it dominates `streak` consecutive net votes,
/// with the required streak doubling per page after each migration so
/// ping-ponging homes back off geometrically.
#[derive(Clone, Copy, Debug)]
pub struct MajorityVoteMigration {
    /// Majority count a non-home writer must reach before the home migrates
    /// to it.
    pub streak: u32,
}

impl MigrationPolicy for MajorityVoteMigration {
    fn name(&self) -> &'static str {
        "mig"
    }

    fn should_migrate(&self, frame: &PageFrame, writer: NodeId, home: NodeId) -> bool {
        // Only genuinely remote writers vote, and only a writer that
        // dominates the page's recent diff stream wins.
        writer != home && frame.mig_observe_writer(writer.0 as u64, self.streak as u64)
    }
}
