//! Prefetch predictors: the home-side policy that turns a page fetch into
//! "this requester will want these pages next" hints.
//!
//! The predictor runs inside the page-fetch RPC handler.  It sees every
//! fetch served by a home node, may record history about it, and may attach
//! a hint run to the reply; the *requester-side* conversion of hints into
//! overlapped fetches stays in the engine (it is mechanism, not policy —
//! see `DsmSystem::issue_hint_fetches`).

use hyperion_pm2::{NodeId, PageId};

use crate::diff::HintRun;
use crate::table::DsmStore;

/// How many home-fetch events back a directory observation still counts as
/// "recent" for the neighbour-also-fetched predicate.  Small enough that an
/// observation from several invalidation epochs ago (whose prediction the
/// next acquire would kill anyway) no longer generates hints.
const HINT_RECENT_WINDOW: u64 = 6;

/// What a predictor observed about one served fetch; the handler threads it
/// from [`Predictor::observe_fetch`] through the per-page bookkeeping into
/// [`Predictor::predict`].
#[derive(Clone, Copy, Debug)]
pub struct FetchObservation {
    /// The directory sequence number stamped on this fetch event (one per
    /// request: the pages of a batch arrive together, so they share one
    /// "fetch event").
    pub seq: u64,
    /// The request extended the requester's own stride run: the page before
    /// the served span was the previous page this home served the caller.
    pub stride: bool,
    /// The requester's directory key ([`DsmStore::dir_key`]): its group
    /// index under a grouped topology, its node index under the flat
    /// default.  Recorded here because [`Predictor::record_served_page`]
    /// runs against a bare frame without store access.
    pub dir_key: u64,
}

/// The home-side prefetch-prediction policy.
///
/// **JMM obligations.**  Hints are pure performance metadata: a predictor
/// must never mutate page *contents* and its history writes must go through
/// the frame's directory fields only.  A wrong hint costs a wasted fetch;
/// it can never cost coherence, because every hinted page is installed
/// through the ordinary fetch path and invalidated at the next acquire like
/// any other cached copy.
pub trait Predictor: Send + Sync {
    /// Short policy name (`"nohints"` / `"dir"`): used in figure-row
    /// variant labels.
    fn name(&self) -> &'static str;

    /// True if requesters should convert reply hints into overlapped
    /// fetches (and re-arm abandoned hint tickets at acquires).  A policy
    /// returning `false` makes the whole hint path — home-side bookkeeping
    /// included — disappear.
    fn converts_hints(&self) -> bool {
        false
    }

    /// Observe one served fetch of `count` pages starting at `first`,
    /// before any page is copied: stamp the fetch event and learn from the
    /// requester's history.  Returning `None` declines all bookkeeping for
    /// this request (no stamps, no history writes, no hints).
    ///
    /// JMM: may only touch directory metadata; runs under the home's frame
    /// locks exactly like the copy it annotates.
    fn observe_fetch(
        &self,
        store: &DsmStore,
        home: NodeId,
        caller: NodeId,
        first: PageId,
        count: u32,
    ) -> Option<FetchObservation>;

    /// Record that `frame` (one page of the served span) was fetched by
    /// `caller` under observation `obs`.  Called once per served page,
    /// inside the handler's frame access.
    fn record_served_page(
        &self,
        frame: &crate::page::PageFrame,
        caller: NodeId,
        obs: &FetchObservation,
    );

    /// Produce the hint run to piggyback on the reply, if any: contiguous
    /// same-home pages the requester is predicted to touch soon.
    ///
    /// JMM: the returned run is advisory; the requester validates every
    /// hinted page (bounds, home, presence) before fetching it.
    fn predict(
        &self,
        store: &DsmStore,
        home: NodeId,
        caller: NodeId,
        first: PageId,
        count: u32,
        obs: &FetchObservation,
    ) -> Option<HintRun>;
}

/// No prediction: fetch replies carry no hints and the directory records
/// nothing — byte-identical to running with the prefetch directory compiled
/// out.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopPredictor;

impl Predictor for NoopPredictor {
    fn name(&self) -> &'static str {
        "nohints"
    }

    fn observe_fetch(
        &self,
        _store: &DsmStore,
        _home: NodeId,
        _caller: NodeId,
        _first: PageId,
        _count: u32,
    ) -> Option<FetchObservation> {
        None
    }

    fn record_served_page(
        &self,
        _frame: &crate::page::PageFrame,
        _caller: NodeId,
        _obs: &FetchObservation,
    ) {
    }

    fn predict(
        &self,
        _store: &DsmStore,
        _home: NodeId,
        _caller: NodeId,
        _first: PageId,
        _count: u32,
        _obs: &FetchObservation,
    ) -> Option<HintRun> {
        None
    }
}

/// The cluster-wide prefetch directory: each home keeps a small per-page
/// fetch history and predicts from stride runs, neighbour co-fetches and
/// learned successor pairs.
#[derive(Clone, Copy, Debug)]
pub struct DirectoryPredictor {
    /// Largest number of contiguous pages one reply's hint run may name.
    pub hint_window: usize,
}

impl DirectoryPredictor {
    /// Consult the directory for a hint run following the served span
    /// `[first, first + count)`: contiguous same-home pages that the
    /// requester is predicted to touch soon, because either
    ///
    /// * the request extended the requester's own stride run (`stride`:
    ///   the page before `first` was the previous page this home served
    ///   the caller — scans keep scanning), or
    /// * a *neighbour co-fetched* the run: some other node recently
    ///   fetched both the demanded span and the candidate page, so a node
    ///   that is now where the neighbour was is predicted to follow it.
    ///
    /// Requiring the *same* neighbour on both sides is what keeps the
    /// directory from hinting pages that merely happen to be busy (e.g.
    /// another node's private boundary row that the requester never reads).
    #[allow(clippy::too_many_arguments)]
    fn hint_run(
        &self,
        store: &DsmStore,
        home: NodeId,
        caller: NodeId,
        first: PageId,
        count: u32,
        stride: bool,
        seq: u64,
    ) -> u16 {
        let num_pages = store.allocator().num_pages();
        let caller_tag = store.dir_tag(caller);
        // Neighbours that recently fetched the tail of the demanded span.
        let last = PageId(first.0 + count as u64 - 1);
        let neighbours: Vec<u64> = store
            .with_frame(home, last, |f| {
                f.dir_recent_fetchers(seq, HINT_RECENT_WINDOW)
            })
            .into_iter()
            .filter(|&t| t != 0 && t != caller_tag)
            .collect();
        if !stride && neighbours.is_empty() {
            return 0;
        }
        let next = first.0 + count as u64;
        let mut run = 0u16;
        for k in 0..self.hint_window as u64 {
            let q = PageId(next + k);
            if q.index() >= num_pages || store.home_of(q) != home {
                break;
            }
            let co_fetched = !neighbours.is_empty()
                && store.with_frame(home, q, |f| {
                    f.dir_recent_fetchers(seq, HINT_RECENT_WINDOW)
                        .iter()
                        .any(|t| neighbours.contains(t))
                });
            if !stride && !co_fetched {
                break;
            }
            run += 1;
        }
        run
    }
}

impl Predictor for DirectoryPredictor {
    fn name(&self) -> &'static str {
        "dir"
    }

    fn converts_hints(&self) -> bool {
        true
    }

    fn observe_fetch(
        &self,
        store: &DsmStore,
        home: NodeId,
        caller: NodeId,
        first: PageId,
        count: u32,
    ) -> Option<FetchObservation> {
        let last = PageId(first.0 + count as u64 - 1);
        // One directory stamp per request: the pages of a batch arrive
        // together, so they share one "fetch event".
        let seq = store.next_fetch_seq(home);
        let prev = store.swap_last_fetch(home, caller, last);
        let stride = prev != 0 && prev == first.0; // prev stores page id + 1
        if prev != 0 && prev - 1 != first.0 && prev - 1 != last.0 {
            // Learn the successor pair: the caller followed its previous
            // page from this home with this span.  This is what lets the
            // directory predict non-contiguous re-fetch sequences (e.g.
            // the two pages a boundary row spans).  The frame tracks slot
            // churn so that random (Zipf-skewed) traffic — which replaces
            // the candidate on almost every fetch — stays silent while
            // freshly learned and stably repeating pairs hint immediately.
            store.with_frame(store.home_of(PageId(prev - 1)), PageId(prev - 1), |f| {
                f.dir_record_next(first.0, seq)
            });
        }
        Some(FetchObservation {
            seq,
            stride,
            dir_key: store.dir_key(caller) as u64,
        })
    }

    fn record_served_page(
        &self,
        frame: &crate::page::PageFrame,
        _caller: NodeId,
        obs: &FetchObservation,
    ) {
        frame.dir_record_fetch(obs.dir_key, obs.seq);
    }

    fn predict(
        &self,
        store: &DsmStore,
        home: NodeId,
        caller: NodeId,
        first: PageId,
        count: u32,
        obs: &FetchObservation,
    ) -> Option<HintRun> {
        let run = self.hint_run(store, home, caller, first, count, obs.stride, obs.seq);
        if run > 0 {
            return Some((PageId(first.0 + count as u64), run));
        }
        let last = PageId(first.0 + count as u64 - 1);
        // No contiguous run, but the directory has seen a requester follow
        // this page with another one (a learned successor pair): hint that
        // single page.
        store
            .with_frame(home, last, |f| {
                f.dir_recent_next(obs.seq, HINT_RECENT_WINDOW)
            })
            .filter(|&n| n != first.0 && n != last.0)
            .map(|n| (PageId(n), 1))
    }
}
