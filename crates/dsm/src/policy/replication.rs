//! Replication policy: replicated read-homes with `r`-reader / `w`-quorum
//! writes, the graceful-degradation slot of the fault plane.
//!
//! Under [`QuorumReplication`], a home serving a page fetch registers the
//! reader as one of up to `r` replica holders in the store's replication
//! directory, and every release-time diff the home applies is a *quorum
//! write*: the page's version advances and the first `w − 1` holders are
//! brought up to it (the home itself is the quorum's first member), with the
//! shipping cost charged in the diff-apply handler's service time.  When a
//! node is killed, recovery elects the newest live holder as each orphaned
//! page's next home (see `crate::recover`) — the quorum guarantees that
//! holder was at most one write behind the authoritative copy it is re-synced
//! from.
//!
//! [`NoopReplication`] is the default: no holders are ever registered, no
//! versions advance, no cycles are charged — byte-identical to the
//! pre-fault-plane engine, which is what the equivalence suites gate.

use crate::table::DsmStore;
use hyperion_pm2::{NodeId, PageId};

/// The replication decision point: whether fetches create read replicas and
/// how many quorum members each write must reach.
pub trait ReplicationPolicy: Send + Sync {
    /// Short name for labels and `Debug` output.
    fn name(&self) -> &'static str;

    /// True if this policy maintains replicas at all (the engine's fast
    /// path skips every replication hook when this is false).
    fn replicates(&self) -> bool {
        false
    }

    /// Maximum read-replica holders per page (`r`).
    fn read_replicas(&self) -> usize {
        0
    }

    /// Copies a write must reach, home included (`w`).
    fn write_quorum(&self) -> usize {
        1
    }

    /// A home served `page` to `reader`: register the replica if the policy
    /// keeps any.
    fn on_page_served(&self, _store: &DsmStore, _page: PageId, _reader: NodeId) {}

    /// A home applied a release diff to `page`: perform the quorum write and
    /// return how many replica holders were updated (the diff-apply handler
    /// charges shipping cost per updated holder).
    fn on_diff_applied(&self, _store: &DsmStore, _page: PageId) -> usize {
        0
    }
}

/// No replication: no replicas, no quorum writes, no extra cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopReplication;

impl ReplicationPolicy for NoopReplication {
    fn name(&self) -> &'static str {
        "norep"
    }
}

/// `r`-reader / `w`-quorum replicated read-homes (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct QuorumReplication {
    /// Maximum read-replica holders per page (`r`).
    pub read_replicas: usize,
    /// Copies a write must reach, home included (`w`).
    pub write_quorum: usize,
}

impl ReplicationPolicy for QuorumReplication {
    fn name(&self) -> &'static str {
        "quorum"
    }

    fn replicates(&self) -> bool {
        true
    }

    fn read_replicas(&self) -> usize {
        self.read_replicas
    }

    fn write_quorum(&self) -> usize {
        self.write_quorum
    }

    fn on_page_served(&self, store: &DsmStore, page: PageId, reader: NodeId) {
        store.register_replica(page, reader, self.read_replicas);
    }

    fn on_diff_applied(&self, store: &DsmStore, page: PageId) -> usize {
        store.quorum_update(page, self.write_quorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperion_pm2::IsoAllocator;
    use std::sync::Arc;

    #[test]
    fn noop_touches_nothing() {
        let alloc = Arc::new(IsoAllocator::new(2));
        let store = DsmStore::new(Arc::clone(&alloc), 2);
        let page = alloc.alloc(4, NodeId(0)).page();
        let policy = NoopReplication;
        assert!(!policy.replicates());
        policy.on_page_served(&store, page, NodeId(1));
        assert_eq!(policy.on_diff_applied(&store, page), 0);
        assert!(store.replica_set(page).is_none());
    }

    #[test]
    fn quorum_registers_and_updates_holders() {
        let alloc = Arc::new(IsoAllocator::new(3));
        let store = DsmStore::new(Arc::clone(&alloc), 3);
        let page = alloc.alloc(4, NodeId(0)).page();
        let policy = QuorumReplication {
            read_replicas: 2,
            write_quorum: 2,
        };
        assert!(policy.replicates());
        policy.on_page_served(&store, page, NodeId(1));
        policy.on_page_served(&store, page, NodeId(2));
        assert_eq!(policy.on_diff_applied(&store, page), 1);
        let set = store.replica_set(page).expect("holders registered");
        assert_eq!(set.version, 1);
        assert_eq!(set.holders, vec![(1, 1), (2, 0)]);
    }
}
