//! The DSM side of the fault plane: bounded retry with exponential backoff
//! on the RPC path, and node-failure recovery (re-electing homes for a dead
//! node's pages from the replication directory).
//!
//! ## Retry contract
//!
//! Every protocol RPC goes through `DsmSystem::rpc_to_home`: per-attempt
//! failures classified retryable by
//! [`TransportError::is_retryable`] (lost frames, broken sockets, handler
//! panics) are re-issued under the [`crate::config::TransportConfig::retry`]
//! schedule — each timed-out attempt charges the configured `rpc_timeout` to
//! the caller's *virtual* clock and bumps `rpc_timeouts`, each re-issue
//! charges the doubling backoff and bumps `rpc_retries` — until the attempt
//! budget or the deadline runs out.  Non-retryable errors return
//! immediately: a [`TransportError::NodeDown`] triggers
//! `DsmSystem::recover_node` and a re-route to the page's new home;
//! everything else propagates as a typed [`RpcFailure`] with service-name
//! context.
//!
//! On a fault-free run the first attempt of every RPC succeeds, so the
//! schedule charges nothing and all fault counters stay zero — the
//! byte-equivalence suites gate exactly this.
//!
//! ## Recovery walkthrough
//!
//! A node is killed fail-stop *as a server* (its own threads keep
//! computing).  The first survivor whose RPC fails with `NodeDown` takes the
//! store's recovery lock and, for every page the dead node homed:
//!
//! 1. demotes the dead node's frame (later writes by its still-running
//!    threads become ordinary dirty bits that flush to the new home);
//! 2. snapshots that frame — the authoritative copy, standing in for the
//!    stable storage a production home would recover from;
//! 3. elects the new home: the replica holder with the newest quorum-write
//!    version ([`crate::table::DsmStore::newest_live_replica`]), falling
//!    back to the lowest-id live node when the page was never replicated;
//! 4. promotes the winner's frame from the snapshot (local writes the
//!    winner had pending survive — same merge rule as home migration),
//!    re-routes `home_of`, and charges the re-sync: `resync_page_cycles`
//!    plus one page transfer on the wire, all visible in `pages_resynced`.
//!
//! Recovery is idempotent and serialised: exactly one observer performs it
//! (`mark_failed` returns true once); concurrent observers block on the
//! recovery lock and then simply re-route.

use hyperion_model::{NodeStats, ThreadClock, VTime};
use hyperion_pm2::{Node, NodeId, PageId, ServiceId, TransportError, PAGE_BYTES};

use crate::engine::DsmSystem;

/// A protocol RPC that failed for good: the transport error plus the
/// service-name context of the call that gave up.
#[derive(Debug)]
pub struct RpcFailure {
    /// Name of the RPC service (e.g. `dsm.page_fetch`).
    pub service: &'static str,
    /// The calling node.
    pub from: NodeId,
    /// The node the final attempt targeted.
    pub to: NodeId,
    /// Attempts issued before giving up (1 = the first try failed
    /// non-retryably).
    pub attempts: u32,
    /// The final transport error.
    pub error: TransportError,
}

impl std::fmt::Display for RpcFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "'{}' RPC from {} to {} failed after {} attempt{}: {}",
            self.service,
            self.from,
            self.to,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

impl std::error::Error for RpcFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl DsmSystem {
    /// The single top-level die of the DSM layer: protocol primitives keep
    /// their infallible signatures by funnelling every exhausted
    /// [`RpcFailure`] through here.  Everything below this point propagates
    /// typed `Result`s.
    #[track_caller]
    pub(crate) fn unwrap_rpc<T>(&self, result: Result<T, RpcFailure>) -> T {
        result.unwrap_or_else(|failure| panic!("unrecoverable DSM failure: {failure}"))
    }

    /// Issue one RPC under the retry schedule of
    /// [`crate::config::TransportConfig::retry`] (see the module docs for
    /// the exact charging contract).
    pub(crate) fn rpc_retry(
        &self,
        clock: &mut ThreadClock,
        node_ref: &Node,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, VTime), RpcFailure> {
        let policy = &self.transport.retry;
        let deadline = clock.now() + policy.deadline;
        let mut retries = 0u32;
        loop {
            let error = match self.cluster.rpc_split(clock, from, to, service, payload) {
                Ok(ok) => return Ok(ok),
                Err(error) => error,
            };
            if matches!(error, TransportError::TimedOut { .. }) {
                // The loss is only detected by waiting the full timeout out.
                NodeStats::bump(&node_ref.stats.rpc_timeouts);
                clock.advance(policy.rpc_timeout);
            }
            let out_of_budget = retries + 1 >= policy.max_attempts || clock.now() >= deadline;
            if !error.is_retryable() || out_of_budget {
                return Err(RpcFailure {
                    service: self.cluster.service_name(service),
                    from,
                    to,
                    attempts: retries + 1,
                    error,
                });
            }
            clock.advance(policy.backoff(retries));
            retries += 1;
            NodeStats::bump(&node_ref.stats.rpc_retries);
        }
    }

    /// Issue one RPC to the current home of `anchor`, retrying per
    /// [`DsmSystem::rpc_retry`] and recovering + re-routing when the home
    /// turns out to be dead.  Payloads address pages by id and carry
    /// absolute slot values, so the identical bytes are valid against the
    /// re-elected home.
    ///
    /// Under a grouped topology the call may route through the member's
    /// group leader instead ([`DsmSystem::relay_route`]); a leader that
    /// turns out dead degrades the group's combining permanently and the
    /// re-route goes direct.
    pub(crate) fn rpc_to_home(
        &self,
        clock: &mut ThreadClock,
        node: NodeId,
        node_ref: &Node,
        anchor: PageId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, VTime), RpcFailure> {
        let mut hops = 0usize;
        loop {
            let home = self.store.home_of(anchor);
            let (to, svc, wrapped) = match self.relay_route(clock, node, home, service) {
                Some((leader, kind)) => (
                    leader,
                    self.group_relay,
                    Some(crate::combine::encode_relay(kind, home, payload)),
                ),
                None => (home, service, None),
            };
            let attempt = self.rpc_retry(
                clock,
                node_ref,
                node,
                to,
                svc,
                wrapped.as_deref().unwrap_or(payload),
            );
            let failure = match attempt {
                Ok(ok) => return Ok(ok),
                Err(failure) => failure,
            };
            match failure.error {
                // Each hop buries one node; after n-1 of them there is
                // nobody left to re-route to.
                TransportError::NodeDown { peer } if hops + 1 < self.cluster.num_nodes() => {
                    if peer != home {
                        // The dead node was a relay leader, not the home:
                        // combining for its group degrades to direct RPCs
                        // from now on (its pages still recover like any
                        // dead node's below).
                        self.store
                            .mark_group_degraded(self.store.topology().group_of(peer));
                    }
                    self.recover_node(node_ref, clock, peer);
                    hops += 1;
                }
                _ => return Err(failure),
            }
        }
    }

    /// Recover from the fail-stop death of `peer`: re-home every page it
    /// served onto survivors elected from the replication directory.  See
    /// the module docs for the walkthrough.  Idempotent — only the first
    /// observer does the work; the observer's clock is charged the re-sync.
    pub(crate) fn recover_node(&self, node_ref: &Node, clock: &mut ThreadClock, peer: NodeId) {
        let _guard = self.store.recovery_guard();
        if !self.store.mark_failed(peer) {
            // An earlier observer already re-homed everything; the caller
            // just re-routes.
            return;
        }
        NodeStats::bump(&node_ref.stats.nodes_failed);
        let machine = self.cluster.machine();
        let mut resynced = 0u64;
        for p in 0..self.store.allocator().num_pages() {
            let page = PageId(p as u64);
            if self.store.home_of(page) != peer {
                continue;
            }
            // Demote first: writes the dead node's own threads issue from
            // here on are dirty-tracked and flush to the new home normally.
            self.store.with_frame(peer, page, |f| f.demote_from_home());
            let snapshot = self
                .store
                .with_frame(peer, page, |f| f.data().snapshot_bytes());
            let winner = self
                .store
                .newest_live_replica(page)
                .unwrap_or_else(|| self.store.first_live_node());
            self.store
                .with_frame(winner, page, |f| f.promote_to_home(&snapshot));
            self.store.set_home(page, winner);
            resynced += 1;
        }
        if resynced > 0 {
            NodeStats::bump_by(&node_ref.stats.pages_resynced, resynced);
            clock.advance(
                machine
                    .cpu
                    .cycles(machine.dsm.resync_page_cycles * resynced as f64),
            );
            clock.advance(machine.net.transfer(resynced * PAGE_BYTES as u64));
        }
    }
}
