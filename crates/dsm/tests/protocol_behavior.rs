//! Behavior tests of the DSM protocol engine and its default policies
//! (moved from the former `protocol.rs` module tests when the
//! engine/policy split landed).  They exercise only the public API, so
//! they run as an integration test.

use std::sync::Arc;

use hyperion_dsm::{AdaptiveParams, DsmStore, DsmSystem, Locality, ProtocolKind, TransportConfig};
use hyperion_model::{myrinet_200, NodeStats, ThreadClock, VTime};
use hyperion_pm2::{Cluster, IsoAllocator, NodeId, SLOTS_PER_PAGE};

struct Fixture {
    cluster: Arc<Cluster>,
    alloc: Arc<IsoAllocator>,
    dsm: Arc<DsmSystem>,
}

fn fixture(nodes: usize, kind: ProtocolKind) -> Fixture {
    fixture_with(
        nodes,
        kind,
        &AdaptiveParams::default(),
        &TransportConfig::default(),
    )
}

fn fixture_with(
    nodes: usize,
    kind: ProtocolKind,
    params: &AdaptiveParams,
    transport: &TransportConfig,
) -> Fixture {
    let cluster = Cluster::new(myrinet_200().machine, nodes);
    let alloc = Arc::new(IsoAllocator::new(nodes));
    let store = DsmStore::new(Arc::clone(&alloc), nodes);
    let dsm = DsmSystem::with_config(Arc::clone(&cluster), store, kind, params, transport);
    Fixture {
        cluster,
        alloc,
        dsm,
    }
}

#[test]
fn protocol_kind_names_match_paper() {
    assert_eq!(ProtocolKind::JavaIc.name(), "java_ic");
    assert_eq!(ProtocolKind::JavaPf.name(), "java_pf");
    assert_eq!(ProtocolKind::JavaAd.name(), "java_ad");
    assert_eq!(ProtocolKind::all().len(), 2);
    assert_eq!(ProtocolKind::all_extended().len(), 3);
    assert_eq!(format!("{}", ProtocolKind::JavaPf), "java_pf");
    assert_eq!(format!("{}", ProtocolKind::JavaAd), "java_ad");
}

#[test]
fn home_access_round_trips_values() {
    for kind in ProtocolKind::all() {
        let f = fixture(1, kind);
        let addr = f.alloc.alloc(8, NodeId(0));
        let mut clock = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut clock, addr.offset(3), 42);
        assert_eq!(f.dsm.get(NodeId(0), &mut clock, addr.offset(3)), 42);
        assert_eq!(f.dsm.get(NodeId(0), &mut clock, addr.offset(4)), 0);
    }
}

#[test]
fn ic_charges_checks_even_on_home_pages_pf_does_not() {
    let ic = fixture(1, ProtocolKind::JavaIc);
    let pf = fixture(1, ProtocolKind::JavaPf);
    let a_ic = ic.alloc.alloc(4, NodeId(0));
    let a_pf = pf.alloc.alloc(4, NodeId(0));

    let mut c_ic = ThreadClock::new();
    let mut c_pf = ThreadClock::new();
    for i in 0..100 {
        ic.dsm.put(NodeId(0), &mut c_ic, a_ic, i);
        pf.dsm.put(NodeId(0), &mut c_pf, a_pf, i);
    }
    assert_eq!(ic.cluster.node_stats(NodeId(0)).locality_checks, 100);
    assert_eq!(pf.cluster.node_stats(NodeId(0)).locality_checks, 0);
    assert_eq!(pf.cluster.node_stats(NodeId(0)).page_faults, 0);
    // The in-line check protocol is strictly slower on an all-local run.
    assert!(c_ic.now() > c_pf.now());
    assert_eq!(c_pf.now(), VTime::ZERO);
}

#[test]
fn remote_read_fetches_page_and_sees_home_values() {
    for kind in ProtocolKind::all_extended() {
        let f = fixture(2, kind);
        let addr = f.alloc.alloc(8, NodeId(1));
        // The home node writes a value directly.
        let mut home_clock = ThreadClock::new();
        f.dsm.put(NodeId(1), &mut home_clock, addr, 1234);

        // Node 0 reads it remotely.
        let mut clock = ThreadClock::new();
        let v = f.dsm.get(NodeId(0), &mut clock, addr);
        assert_eq!(v, 1234, "{kind:?}");

        let s0 = f.cluster.node_stats(NodeId(0));
        assert_eq!(s0.page_loads, 1);
        match kind {
            ProtocolKind::JavaIc => {
                assert_eq!(s0.page_faults, 0);
                assert_eq!(s0.mprotect_calls, 0);
                assert_eq!(s0.locality_checks, 1);
            }
            ProtocolKind::JavaPf => {
                assert_eq!(s0.page_faults, 1);
                assert_eq!(s0.mprotect_calls, 1);
                assert_eq!(s0.locality_checks, 0);
            }
            // A fresh page starts in check mode: ic mechanics.
            ProtocolKind::JavaAd => {
                assert_eq!(s0.page_faults, 0);
                assert_eq!(s0.mprotect_calls, 0);
                assert_eq!(s0.locality_checks, 1);
            }
        }
        // Second read hits the cache: no further page loads.
        let before = clock.now();
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
        match kind {
            ProtocolKind::JavaIc | ProtocolKind::JavaAd => assert!(clock.now() > before),
            ProtocolKind::JavaPf => assert_eq!(clock.now(), before),
        }
    }
}

#[test]
fn remote_miss_is_more_expensive_under_pf_but_hits_are_free() {
    let ic = fixture(2, ProtocolKind::JavaIc);
    let pf = fixture(2, ProtocolKind::JavaPf);
    let a_ic = ic.alloc.alloc(4, NodeId(1));
    let a_pf = pf.alloc.alloc(4, NodeId(1));

    let mut c_ic = ThreadClock::new();
    let mut c_pf = ThreadClock::new();
    let _ = ic.dsm.get(NodeId(0), &mut c_ic, a_ic);
    let _ = pf.dsm.get(NodeId(0), &mut c_pf, a_pf);
    // The pf miss pays the fault and the mprotect on top of the fetch.
    assert!(c_pf.now() > c_ic.now());
    let machine = pf.cluster.machine();
    assert!(c_pf.now() >= c_ic.now() + machine.dsm.page_fault);
}

#[test]
fn prefetch_effect_neighbouring_object_on_same_page_is_free() {
    let f = fixture(2, ProtocolKind::JavaIc);
    // Two small objects allocated back to back share a page.
    let a = f.alloc.alloc(4, NodeId(1));
    let b = f.alloc.alloc(4, NodeId(1));
    assert_eq!(a.page(), b.page());
    let mut clock = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut clock, a);
    let _ = f.dsm.get(NodeId(0), &mut clock, b);
    assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
}

#[test]
fn diff_flush_propagates_writes_to_home() {
    for kind in ProtocolKind::all() {
        let f = fixture(2, kind);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut w = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut w, addr.offset(2), 99);
        // Before the flush the home still sees the old value.
        let mut h = ThreadClock::new();
        assert_eq!(f.dsm.get(NodeId(1), &mut h, addr.offset(2)), 0);
        // Flush.
        f.dsm.update_main_memory(NodeId(0), &mut w);
        assert_eq!(f.dsm.get(NodeId(1), &mut h, addr.offset(2)), 99);
        let s0 = f.cluster.node_stats(NodeId(0));
        assert_eq!(s0.diff_messages, 1);
        assert_eq!(s0.diff_slots_flushed, 1);
        // A second flush with nothing dirty sends nothing.
        f.dsm.update_main_memory(NodeId(0), &mut w);
        assert_eq!(f.cluster.node_stats(NodeId(0)).diff_messages, 1);
    }
}

#[test]
fn invalidate_forces_refetch_and_charges_mprotect_only_under_pf() {
    for kind in ProtocolKind::all_extended() {
        let f = fixture(2, kind);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        assert!(f.dsm.is_cached(NodeId(0), addr.page()));
        assert_eq!(f.dsm.pages_cached_on(NodeId(0)), 1);

        let mprotect_before = f.cluster.node_stats(NodeId(0)).mprotect_calls;
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
        assert!(!f.dsm.is_cached(NodeId(0), addr.page()));
        assert_eq!(f.dsm.pages_cached_on(NodeId(0)), 0);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.cache_invalidations, 1);
        assert_eq!(s.pages_invalidated, 1);
        match kind {
            ProtocolKind::JavaIc => assert_eq!(s.mprotect_calls, mprotect_before),
            ProtocolKind::JavaPf => assert_eq!(s.mprotect_calls, mprotect_before + 1),
            // One sparse access leaves the page in check mode, so no
            // re-protection is due.
            ProtocolKind::JavaAd => assert_eq!(s.mprotect_calls, mprotect_before),
        }

        // The next access loads the page again.
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 2);
    }
}

#[test]
fn invalidate_flushes_pending_writes_first() {
    let f = fixture(2, ProtocolKind::JavaPf);
    let addr = f.alloc.alloc(8, NodeId(1));
    let mut clock = ThreadClock::new();
    f.dsm.put(NodeId(0), &mut clock, addr, 7);
    f.dsm.invalidate_cache(NodeId(0), &mut clock);
    // The home must have received the value even though the cache copy
    // was dropped.
    let mut h = ThreadClock::new();
    assert_eq!(f.dsm.get(NodeId(1), &mut h, addr), 7);
}

#[test]
fn invalidate_on_clean_cacheless_node_is_cheap() {
    let f = fixture(2, ProtocolKind::JavaPf);
    let _ = f.alloc.alloc(8, NodeId(1));
    let mut clock = ThreadClock::new();
    f.dsm.invalidate_cache(NodeId(0), &mut clock);
    assert_eq!(clock.now(), VTime::ZERO);
    assert_eq!(f.cluster.node_stats(NodeId(0)).mprotect_calls, 0);
}

#[test]
fn explicit_load_into_cache_prefetches() {
    for kind in ProtocolKind::all() {
        let f = fixture(2, kind);
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();
        f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
        assert!(f.dsm.is_cached(NodeId(0), addr.page()));
        let loads_before = f.cluster.node_stats(NodeId(0)).page_loads;
        let faults_before = f.cluster.node_stats(NodeId(0)).page_faults;
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(
            s.page_loads, loads_before,
            "{kind:?}: access after prefetch reloaded"
        );
        assert_eq!(s.page_faults, faults_before);
        // Loading an already-cached or home page is a no-op.
        f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
        f.dsm.load_into_cache(NodeId(1), &mut clock, addr.page());
        assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, loads_before);
        assert_eq!(f.cluster.node_stats(NodeId(1)).page_loads, 0);
    }
}

#[test]
fn concurrent_threads_on_one_node_fetch_a_page_once() {
    let f = fixture(2, ProtocolKind::JavaIc);
    let addr = f.alloc.alloc(8, NodeId(1));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let dsm = &f.dsm;
            s.spawn(move || {
                let mut clock = ThreadClock::new();
                assert_eq!(dsm.get(NodeId(0), &mut clock, addr), 0);
            });
        }
    });
    assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, 1);
}

#[test]
fn locality_classification_tracks_protocol_state() {
    let f = fixture(2, ProtocolKind::JavaPf);
    let addr = f.alloc.alloc(8, NodeId(1));
    let page = addr.page();
    assert_eq!(f.dsm.locality(NodeId(1), page), Locality::Local);
    assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Remote);

    let mut clock = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    assert_eq!(f.dsm.locality(NodeId(0), page), Locality::CachedRemote);

    f.dsm.invalidate_cache(NodeId(0), &mut clock);
    assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Remote);
    // The query itself never charges anything.
    let before = clock.now();
    let _ = f.dsm.locality(NodeId(0), page);
    assert_eq!(clock.now(), before);
    assert!(Locality::Local.is_resident());
    assert!(Locality::CachedRemote.is_resident());
    assert!(!Locality::Remote.is_resident());
    assert_eq!(format!("{}", Locality::CachedRemote), "cached-remote");
}

#[test]
fn bulk_read_checks_once_per_page_under_ic() {
    let f = fixture(2, ProtocolKind::JavaIc);
    let slots = SLOTS_PER_PAGE * 2 + 10; // spans three pages
    let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
    let mut clock = ThreadClock::new();
    let mut out = vec![0u64; slots];
    f.dsm.read_slice(NodeId(0), &mut clock, addr, &mut out);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.locality_checks, 3, "one in-line check per touched page");
    assert_eq!(s.page_loads, 3);
    assert_eq!(s.field_reads, slots as u64);
    assert_eq!(s.bulk_reads, 1);

    // The element-wise loop pays one check per element on a fresh system.
    let g = fixture(2, ProtocolKind::JavaIc);
    let addr2 = g.alloc.alloc_page_aligned(slots, NodeId(1));
    let mut clock2 = ThreadClock::new();
    for i in 0..slots {
        let _ = g.dsm.get(NodeId(0), &mut clock2, addr2.offset(i as u64));
    }
    let t = g.cluster.node_stats(NodeId(0));
    assert_eq!(t.locality_checks, slots as u64);
    assert_eq!(t.page_loads, 3, "page traffic is identical either way");
    assert!(clock.now() < clock2.now(), "bulk must be cheaper under ic");
}

#[test]
fn bulk_write_round_trips_and_flushes_field_granularity_diffs() {
    for kind in ProtocolKind::all() {
        let f = fixture(2, kind);
        let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE + 4, NodeId(1));
        let values: Vec<u64> = (0..SLOTS_PER_PAGE as u64 + 4).map(|v| v * 3 + 1).collect();
        let mut clock = ThreadClock::new();
        f.dsm.write_slice(NodeId(0), &mut clock, addr, &values);
        let mut out = vec![0u64; values.len()];
        f.dsm.read_slice(NodeId(0), &mut clock, addr, &mut out);
        assert_eq!(out, values, "{kind:?}");

        // Flush and verify the home sees every slot.
        f.dsm.update_main_memory(NodeId(0), &mut clock);
        let s = f.cluster.node_stats(NodeId(0));
        assert_eq!(s.diff_slots_flushed, values.len() as u64);
        assert_eq!(s.bulk_writes, 1);
        let mut home_clock = ThreadClock::new();
        let mut home = vec![0u64; values.len()];
        f.dsm
            .read_slice(NodeId(1), &mut home_clock, addr, &mut home);
        assert_eq!(home, values);
    }
}

#[test]
fn bulk_ops_match_elementwise_results_exactly() {
    for kind in ProtocolKind::all() {
        let bulk = fixture(2, kind);
        let elem = fixture(2, kind);
        let n = 100usize;
        let ab = bulk.alloc.alloc(n, NodeId(1));
        let ae = elem.alloc.alloc(n, NodeId(1));
        let values: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(0x9E3779B9)).collect();

        let mut cb = ThreadClock::new();
        bulk.dsm.write_slice(NodeId(0), &mut cb, ab, &values);
        let mut out_b = vec![0u64; n];
        bulk.dsm.read_slice(NodeId(0), &mut cb, ab, &mut out_b);

        let mut ce = ThreadClock::new();
        for (i, v) in values.iter().enumerate() {
            elem.dsm.put(NodeId(0), &mut ce, ae.offset(i as u64), *v);
        }
        let out_e: Vec<u64> = (0..n)
            .map(|i| elem.dsm.get(NodeId(0), &mut ce, ae.offset(i as u64)))
            .collect();

        assert_eq!(out_b, out_e, "{kind:?}");
        let sb = bulk.cluster.node_stats(NodeId(0));
        let se = elem.cluster.node_stats(NodeId(0));
        assert_eq!(sb.field_reads, se.field_reads);
        assert_eq!(sb.field_writes, se.field_writes);
        assert_eq!(sb.page_loads, se.page_loads);
        assert!(sb.locality_checks <= se.locality_checks);
    }
}

#[test]
fn field_granularity_flush_does_not_clobber_concurrent_home_writes() {
    // Node 0 writes slot 0, the home writes slot 1; after node 0 flushes,
    // both values must survive at the home (no false sharing).
    let f = fixture(2, ProtocolKind::JavaIc);
    let addr = f.alloc.alloc(8, NodeId(1));
    let mut c0 = ThreadClock::new();
    let mut c1 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut c0, addr); // cache the page
    f.dsm.put(NodeId(1), &mut c1, addr.offset(1), 111); // home writes slot 1
    f.dsm.put(NodeId(0), &mut c0, addr.offset(0), 222); // cached write slot 0
    f.dsm.update_main_memory(NodeId(0), &mut c0);
    assert_eq!(f.dsm.get(NodeId(1), &mut c1, addr.offset(0)), 222);
    assert_eq!(f.dsm.get(NodeId(1), &mut c1, addr.offset(1)), 111);
}

// ----- java_ad -----------------------------------------------------------

#[test]
fn adaptive_home_accesses_are_free_like_pf() {
    let f = fixture(1, ProtocolKind::JavaAd);
    let addr = f.alloc.alloc(4, NodeId(0));
    let mut clock = ThreadClock::new();
    for i in 0..100 {
        f.dsm.put(NodeId(0), &mut clock, addr, i);
    }
    assert_eq!(clock.now(), VTime::ZERO);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.locality_checks, 0);
    assert_eq!(s.page_faults, 0);
}

#[test]
fn adaptive_dense_page_switches_to_protection_and_back() {
    let f = fixture(2, ProtocolKind::JavaAd);
    let addr = f.alloc.alloc(8, NodeId(1));
    let (hi, lo) = f.dsm.adaptive_thresholds();
    assert!(hi > 1, "break-even must exceed one access");
    assert!(lo < hi);

    // Epoch 1: very dense re-access (checks all the way, ic mechanics).
    // 4·hi accesses push the smoothed average to exactly hi in a single
    // epoch (avg ← closed / 4 from a cold start).
    let mut clock = ThreadClock::new();
    for _ in 0..4 * hi {
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    }
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.locality_checks, 4 * hi);
    assert_eq!(s.page_faults, 0);
    assert_eq!(s.protocol_switches, 0);

    // The invalidation closes the epoch and flips the page: the cached
    // region is re-protected, which costs one mprotect like java_pf.
    f.dsm.invalidate_cache(NodeId(0), &mut clock);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.protocol_switches, 1);
    assert_eq!(s.mprotect_calls, 1);

    // Epoch 2: the page is protection-detected — one fault, then free.
    let checks_before = s.locality_checks;
    for _ in 0..hi {
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    }
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(
        s.locality_checks, checks_before,
        "no checks in protect mode"
    );
    assert_eq!(s.page_faults, 1);

    // Sparse epochs decay the smoothed average below the low-water mark
    // and flip the page back — the hysteresis means it takes a few.
    f.dsm.invalidate_cache(NodeId(0), &mut clock);
    for _ in 0..8 {
        if f.cluster.node_stats(NodeId(0)).protocol_switches == 2 {
            break;
        }
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
    }
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.protocol_switches, 2, "sparse access must flip it back");
    let faults_before = s.page_faults;
    let checks_before = s.locality_checks;
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.page_faults, faults_before, "back to ic mechanics");
    assert_eq!(s.locality_checks, checks_before + 1);
}

#[test]
fn adaptive_bulk_read_batches_contiguous_pages_into_one_rpc() {
    let ad = fixture(2, ProtocolKind::JavaAd);
    let ic = fixture(2, ProtocolKind::JavaIc);
    let slots = SLOTS_PER_PAGE * 3; // three whole pages
    let a_ad = ad.alloc.alloc_page_aligned(slots, NodeId(1));
    let a_ic = ic.alloc.alloc_page_aligned(slots, NodeId(1));

    let mut c_ad = ThreadClock::new();
    let mut c_ic = ThreadClock::new();
    let mut out = vec![0u64; slots];
    ad.dsm.read_slice(NodeId(0), &mut c_ad, a_ad, &mut out);
    ic.dsm.read_slice(NodeId(0), &mut c_ic, a_ic, &mut out);

    let s_ad = ad.cluster.node_stats(NodeId(0));
    let s_ic = ic.cluster.node_stats(NodeId(0));
    // Identical page traffic, but one RPC instead of three.
    assert_eq!(s_ad.page_loads, 3);
    assert_eq!(s_ic.page_loads, 3);
    assert_eq!(s_ad.batched_fetches, 1);
    assert_eq!(s_ad.pages_prefetched, 2);
    assert_eq!(s_ad.rpc_requests, 1);
    assert_eq!(s_ic.rpc_requests, 3);
    assert!(
        c_ad.now() < c_ic.now(),
        "batching must beat three round trips: {} vs {}",
        c_ad.now(),
        c_ic.now()
    );
}

#[test]
fn adaptive_history_prefetch_needs_a_stable_streak() {
    let f = fixture(2, ProtocolKind::JavaAd);
    let slots = SLOTS_PER_PAGE * 2;
    let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
    let second = addr.offset(SLOTS_PER_PAGE as u64);
    let mut clock = ThreadClock::new();

    // Three epochs of scalar access to both pages: no prefetch yet (the
    // streak is built from *completed* epochs), each page loads alone.
    for _ in 0..3 {
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        let _ = f.dsm.get(NodeId(0), &mut clock, second);
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
    }
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.page_loads, 6);
    assert_eq!(s.batched_fetches, 0);

    // Fourth epoch: both pages now have a streak of 3, so the miss on
    // the first page pulls the second one into the same fetch.
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.batched_fetches, 1);
    assert_eq!(s.pages_prefetched, 1);
    assert_eq!(s.page_loads, 8);
    // The prefetched neighbour is served without any further load.
    let loads_before = s.page_loads;
    let _ = f.dsm.get(NodeId(0), &mut clock, second);
    assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, loads_before);
}

#[test]
fn adaptive_batch_never_crosses_a_home_boundary() {
    let f = fixture(3, ProtocolKind::JavaAd);
    // Page on node 1 followed in the address space by a page on node 2.
    let a = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(1));
    let b = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(2));
    assert_eq!(b.page().index(), a.page().index() + 1);

    let mut clock = ThreadClock::new();
    // Build a streak on both pages.
    for _ in 0..3 {
        let _ = f.dsm.get(NodeId(0), &mut clock, a);
        let _ = f.dsm.get(NodeId(0), &mut clock, b);
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
    }
    let _ = f.dsm.get(NodeId(0), &mut clock, a);
    // The neighbour is homed elsewhere: it must not ride along.
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.batched_fetches, 0);
    assert_eq!(s.pages_prefetched, 0);
}

#[test]
fn adaptive_batch_pays_mprotect_for_protect_mode_riders() {
    let f = fixture(2, ProtocolKind::JavaAd);
    let slots = SLOTS_PER_PAGE * 2;
    let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
    let second = addr.offset(SLOTS_PER_PAGE as u64);
    let (hi, _) = f.dsm.adaptive_thresholds();
    let mut clock = ThreadClock::new();

    // Three epochs: the first page stays sparse (check mode), the second
    // is dense enough to flip to protection while building its streak.
    for _ in 0..3 {
        let _ = f.dsm.get(NodeId(0), &mut clock, addr);
        for _ in 0..4 * hi {
            let _ = f.dsm.get(NodeId(0), &mut clock, second);
        }
        f.dsm.invalidate_cache(NodeId(0), &mut clock);
    }
    let before = f.cluster.node_stats(NodeId(0));
    assert!(before.protocol_switches >= 1);

    // Fourth epoch: the check-mode miss on the first page prefetches the
    // protection-detected neighbour — opening it costs one mprotect even
    // though the demanded page itself needs none.
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.batched_fetches, before.batched_fetches + 1);
    assert_eq!(
        s.pages_prefetch_speculative,
        before.pages_prefetch_speculative + 1
    );
    assert_eq!(s.mprotect_calls, before.mprotect_calls + 1);
    // The opened rider is then accessed for free, like any pf-resident
    // page.
    let t = clock.now();
    let _ = f.dsm.get(NodeId(0), &mut clock, second);
    assert_eq!(clock.now(), t);
    assert_eq!(f.cluster.node_stats(NodeId(0)).page_loads, s.page_loads);
}

#[test]
fn adaptive_custom_params_shift_the_thresholds() {
    let cluster = Cluster::new(myrinet_200().machine, 2);
    let alloc = Arc::new(IsoAllocator::new(2));
    let store = DsmStore::new(Arc::clone(&alloc), 2);
    let tuned = AdaptiveParams {
        hi_multiple: 2.0,
        lo_multiple: 0.25,
        max_batch_pages: 1,
        min_prefetch_streak: 2,
        online_thresholds: false,
    };
    let dsm = DsmSystem::with_params(cluster, store, ProtocolKind::JavaAd, &tuned);
    let n_star = myrinet_200().machine.adaptive_break_even();
    let (hi, lo) = dsm.adaptive_thresholds();
    assert_eq!(hi, (n_star as f64 * 2.0).ceil() as u64);
    assert_eq!(lo, (n_star as f64 * 0.25).floor() as u64);
    assert!(lo < hi);
    // Default parameters sit at the break-even itself.
    let defaults = AdaptiveParams::default();
    assert_eq!(defaults.hi_multiple, 1.0);
    assert!(defaults.lo_multiple < defaults.hi_multiple);
}

// ----- split-transaction transport --------------------------------------

#[test]
fn overlapped_prefetch_hides_latency_behind_compute() {
    let overlapped = TransportConfig {
        overlapped_fetches: true,
        ..TransportConfig::default()
    };
    for kind in ProtocolKind::all_extended() {
        let blocking = fixture(2, kind);
        let split = fixture_with(2, kind, &AdaptiveParams::default(), &overlapped);
        let a_b = blocking.alloc.alloc(8, NodeId(1));
        let a_s = split.alloc.alloc(8, NodeId(1));
        blocking
            .dsm
            .put(NodeId(1), &mut ThreadClock::new(), a_b, 11);
        split.dsm.put(NodeId(1), &mut ThreadClock::new(), a_s, 11);

        // Prefetch, then compute for a while, then use the value.
        let compute = VTime::from_us(20);
        let mut c_b = ThreadClock::new();
        blocking
            .dsm
            .load_into_cache(NodeId(0), &mut c_b, a_b.page());
        c_b.advance(compute);
        assert_eq!(blocking.dsm.get(NodeId(0), &mut c_b, a_b), 11);

        let mut c_s = ThreadClock::new();
        split.dsm.load_into_cache(NodeId(0), &mut c_s, a_s.page());
        c_s.advance(compute);
        assert_eq!(split.dsm.get(NodeId(0), &mut c_s, a_s), 11, "{kind:?}");

        assert!(
            c_s.now() < c_b.now(),
            "{kind:?}: overlap must hide the compute window: {} vs {}",
            c_s.now(),
            c_b.now()
        );
        // The blocking run stalls at the prefetch; the split run hides
        // exactly the compute window inside the round trip.
        assert!(c_b.now() >= c_s.now() + compute - VTime::from_ns(1));
        let s = split.cluster.node_stats(NodeId(0));
        assert!(s.fetch_overlap_cycles_hidden > 0, "{kind:?}");
        assert_eq!(
            blocking
                .cluster
                .node_stats(NodeId(0))
                .fetch_overlap_cycles_hidden,
            0
        );
        // Identical protocol traffic either way.
        assert_eq!(
            s.page_loads,
            blocking.cluster.node_stats(NodeId(0)).page_loads
        );
    }
}

#[test]
fn overlapped_ticket_completes_exactly_once_and_clears_on_invalidate() {
    let overlapped = TransportConfig {
        overlapped_fetches: true,
        ..TransportConfig::default()
    };
    let f = fixture_with(
        2,
        ProtocolKind::JavaPf,
        &AdaptiveParams::default(),
        &overlapped,
    );
    let addr = f.alloc.alloc(8, NodeId(1));
    let mut clock = ThreadClock::new();

    // Prefetch and never use: the invalidation abandons the ticket and
    // no hidden cycles are recorded.
    f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
    let frame = f.dsm.store().frame(NodeId(0), addr.page());
    assert!(frame.has_inflight());
    f.dsm.invalidate_cache(NodeId(0), &mut clock);
    assert!(!frame.has_inflight());
    assert_eq!(
        f.cluster.node_stats(NodeId(0)).fetch_overlap_cycles_hidden,
        0
    );

    // Prefetch and use twice: the ticket is consumed exactly once (the
    // second access is an ordinary cached hit).
    f.dsm.load_into_cache(NodeId(0), &mut clock, addr.page());
    clock.advance(VTime::from_us(5));
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    let hidden = f.cluster.node_stats(NodeId(0)).fetch_overlap_cycles_hidden;
    assert!(hidden > 0);
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    assert_eq!(
        f.cluster.node_stats(NodeId(0)).fetch_overlap_cycles_hidden,
        hidden
    );
}

#[test]
fn batched_flush_coalesces_contiguous_same_home_dirty_pages() {
    let batched = fixture(2, ProtocolKind::JavaIc);
    let unbatched = fixture_with(
        2,
        ProtocolKind::JavaIc,
        &AdaptiveParams::default(),
        &TransportConfig::blocking(),
    );
    let slots = SLOTS_PER_PAGE * 3;
    let values: Vec<u64> = (0..slots as u64).map(|v| v * 7 + 1).collect();

    let run = |f: &Fixture| -> (VTime, u64, u64, u64, u64) {
        let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
        let mut clock = ThreadClock::new();
        f.dsm.write_slice(NodeId(0), &mut clock, addr, &values);
        f.dsm.update_main_memory(NodeId(0), &mut clock);
        // The home sees every slot either way.
        let mut out = vec![0u64; slots];
        f.dsm
            .read_slice(NodeId(1), &mut ThreadClock::new(), addr, &mut out);
        assert_eq!(out, values);
        let s = f.cluster.node_stats(NodeId(0));
        (
            clock.now(),
            s.diff_messages,
            s.batched_flushes,
            s.diff_slots_flushed,
            s.diff_bytes,
        )
    };

    let (t_b, msgs_b, batches_b, slots_b, bytes_b) = run(&batched);
    let (t_u, msgs_u, batches_u, slots_u, bytes_u) = run(&unbatched);
    assert_eq!(msgs_b, 1, "three contiguous pages share one diff RPC");
    assert_eq!(batches_b, 1);
    assert_eq!(msgs_u, 3);
    assert_eq!(batches_u, 0);
    assert_eq!(slots_b, slots_u);
    assert!(bytes_b > 0 && bytes_u > 0);
    assert!(
        t_b < t_u,
        "one RPC must beat three round trips: {t_b} vs {t_u}"
    );
}

#[test]
fn flush_batches_never_cross_home_boundaries() {
    let f = fixture(3, ProtocolKind::JavaIc);
    let a = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(1));
    let b = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE, NodeId(2));
    assert_eq!(b.page().index(), a.page().index() + 1);
    let mut clock = ThreadClock::new();
    f.dsm.put(NodeId(0), &mut clock, a, 1);
    f.dsm.put(NodeId(0), &mut clock, b, 2);
    f.dsm.update_main_memory(NodeId(0), &mut clock);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.diff_messages, 2, "different homes, different RPCs");
    assert_eq!(s.batched_flushes, 0);
}

// ----- home migration ----------------------------------------------------

#[test]
fn home_migrates_to_the_dominant_writer() {
    let transport = TransportConfig {
        home_migration: true,
        migration_streak: 3,
        ..TransportConfig::default()
    };
    let f = fixture_with(
        2,
        ProtocolKind::JavaPf,
        &AdaptiveParams::default(),
        &transport,
    );
    let addr = f.alloc.alloc(8, NodeId(0));
    let page = addr.page();
    assert_eq!(f.dsm.locality(NodeId(0), page), Locality::Local);

    // Node 1 dominates the page's diff traffic: write + release, thrice.
    let mut w = ThreadClock::new();
    for i in 0..3u64 {
        f.dsm.put(NodeId(1), &mut w, addr, 100 + i);
        f.dsm.update_main_memory(NodeId(1), &mut w);
    }
    let s1 = f.cluster.node_stats(NodeId(1));
    assert_eq!(s1.diff_messages, 3);
    assert_eq!(s1.pages_migrated, 1, "third consecutive diff wins the home");
    assert_eq!(f.dsm.locality(NodeId(1), page), Locality::Local);
    assert_eq!(f.dsm.store().home_of(page), NodeId(1));
    assert_eq!(f.dsm.store().migrated_pages(), 1);

    // The new home's writes are plain local stores: no further diffs.
    f.dsm.put(NodeId(1), &mut w, addr, 999);
    f.dsm.update_main_memory(NodeId(1), &mut w);
    assert_eq!(f.cluster.node_stats(NodeId(1)).diff_messages, 3);

    // The old home still reads the value it held, and re-fetches the
    // authoritative copy from the new home after its next acquire.
    let mut r = ThreadClock::new();
    f.dsm.invalidate_cache(NodeId(0), &mut r);
    assert_eq!(f.dsm.get(NodeId(0), &mut r, addr), 999);
    assert_eq!(f.dsm.locality(NodeId(0), page), Locality::CachedRemote);

    // And the old home's writes now flush towards the new home.
    f.dsm.put(NodeId(0), &mut r, addr.offset(1), 7);
    f.dsm.update_main_memory(NodeId(0), &mut r);
    assert_eq!(f.dsm.get(NodeId(1), &mut w, addr.offset(1)), 7);
}

#[test]
fn alternating_writers_never_migrate_the_home() {
    let transport = TransportConfig {
        home_migration: true,
        migration_streak: 3,
        ..TransportConfig::default()
    };
    let f = fixture_with(
        3,
        ProtocolKind::JavaIc,
        &AdaptiveParams::default(),
        &transport,
    );
    let addr = f.alloc.alloc(8, NodeId(0));
    let mut c1 = ThreadClock::new();
    let mut c2 = ThreadClock::new();
    for i in 0..10u64 {
        f.dsm.put(NodeId(1), &mut c1, addr, i);
        f.dsm.update_main_memory(NodeId(1), &mut c1);
        f.dsm.put(NodeId(2), &mut c2, addr.offset(1), i);
        f.dsm.update_main_memory(NodeId(2), &mut c2);
    }
    // The Boyer–Moore vote never settles on either writer.
    assert_eq!(f.dsm.store().home_of(addr.page()), NodeId(0));
    assert_eq!(f.dsm.store().migrated_pages(), 0);
    let total = f.cluster.total_stats();
    assert_eq!(total.pages_migrated, 0);
}

#[test]
fn repeated_migrations_back_off_geometrically() {
    let transport = TransportConfig {
        home_migration: true,
        migration_streak: 2,
        ..TransportConfig::default()
    };
    let f = fixture_with(
        2,
        ProtocolKind::JavaIc,
        &AdaptiveParams::default(),
        &transport,
    );
    let addr = f.alloc.alloc(8, NodeId(0));
    let page = addr.page();
    let burst = |node: NodeId, n: u64| {
        let mut c = ThreadClock::new();
        for i in 0..n {
            f.dsm.put(node, &mut c, addr, i);
            f.dsm.update_main_memory(node, &mut c);
            f.dsm.invalidate_cache(node, &mut c);
        }
    };
    burst(NodeId(1), 2);
    assert_eq!(f.dsm.store().home_of(page), NodeId(1));
    // Moving it back now requires a doubled streak from node 0.
    burst(NodeId(0), 2);
    assert_eq!(f.dsm.store().home_of(page), NodeId(1), "bar doubled to 4");
    burst(NodeId(0), 2);
    assert_eq!(f.dsm.store().home_of(page), NodeId(0));
}

// ----- online-adaptive thresholds ---------------------------------------

#[test]
fn online_thresholds_widen_when_a_workload_flaps() {
    let params = AdaptiveParams {
        online_thresholds: true,
        ..AdaptiveParams::default()
    };
    let online = fixture_with(
        2,
        ProtocolKind::JavaAd,
        &params,
        &TransportConfig::default(),
    );
    let f_static = fixture(2, ProtocolKind::JavaAd);
    let (hi0, lo0) = online.dsm.adaptive_thresholds();
    assert_eq!(online.dsm.adaptive_thresholds_on(NodeId(0)), (hi0, lo0));

    // A mispredicting workload: one dense epoch followed by four idle
    // epochs, repeatedly.  Under the static thresholds every dense epoch
    // flips the page to protection and the idle decay flips it back —
    // sustained flapping that pays a switch plus an mprotect/fault pair
    // per cycle for re-access that never materialises.
    let run = |f: &Fixture| {
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut clock = ThreadClock::new();
        for cycle in 0..8 {
            for _ in 0..4 * hi0 {
                let _ = f.dsm.get(NodeId(0), &mut clock, addr);
            }
            f.dsm.invalidate_cache(NodeId(0), &mut clock);
            for _ in 0..4 {
                f.dsm.invalidate_cache(NodeId(0), &mut clock);
            }
            let _ = cycle;
        }
        f.cluster.node_stats(NodeId(0)).protocol_switches
    };
    let switches_static = run(&f_static);
    let switches_online = run(&online);

    // The node tightened its own hysteresis: the band is wider than the
    // configured one...
    let (hi_now, lo_now) = online.dsm.adaptive_thresholds_on(NodeId(0));
    assert!(
        hi_now > hi0 && lo_now <= lo0,
        "band must widen: ({hi_now}, {lo_now}) vs ({hi0}, {lo0})"
    );
    // ...and the flapping stopped, while the static run kept switching.
    assert!(
        switches_online < switches_static,
        "online tuning must cut mode churn: {switches_online} vs {switches_static}"
    );
    // The configured thresholds are untouched.
    assert_eq!(online.dsm.adaptive_thresholds(), (hi0, lo0));
}

// ----- prefetch directory ------------------------------------------------

fn directory_fixture(nodes: usize, kind: ProtocolKind) -> Fixture {
    fixture_with(
        nodes,
        kind,
        &AdaptiveParams::default(),
        &TransportConfig::directory(),
    )
}

#[test]
fn neighbour_fetch_piggybacks_a_hint_that_becomes_a_ticket() {
    let f = directory_fixture(3, ProtocolKind::JavaPf);
    let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
    let second = addr.offset(SLOTS_PER_PAGE as u64);
    f.dsm.put(NodeId(2), &mut ThreadClock::new(), second, 77);

    // Node 0 touches both pages: the home's directory now knows that a
    // fetch of the first page is followed by the second.
    let mut c0 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut c0, addr);
    let _ = f.dsm.get(NodeId(0), &mut c0, second);

    // Node 1 demand-misses the first page only: the reply carries the
    // "your neighbour also fetched the next page" hint, which node 1
    // converts into an in-flight split transaction.
    let mut c1 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(1), &mut c1, addr);
    let s1 = f.cluster.node_stats(NodeId(1));
    assert!(f.cluster.node_stats(NodeId(2)).hints_sent >= 1);
    assert_eq!(s1.hinted_fetches_issued, 1);
    assert_eq!(s1.page_loads, 2, "demand fetch + hinted fetch");
    let frame = f.dsm.store().frame(NodeId(1), second.page());
    assert!(frame.has_inflight());
    assert!(frame.inflight_is_hinted());

    // The later demand miss completes the in-flight RPC instead of
    // issuing one: no new page load, ticket consumed, value correct.
    assert_eq!(f.dsm.get(NodeId(1), &mut c1, second), 77);
    let s1 = f.cluster.node_stats(NodeId(1));
    assert_eq!(s1.page_loads, 2);
    assert_eq!(s1.hinted_fetches_completed, 1);
    assert!(!frame.has_inflight());
}

#[test]
fn stride_run_extends_hints_across_the_window() {
    let f = directory_fixture(2, ProtocolKind::JavaIc);
    let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 4, NodeId(1));
    let page = |k: u64| addr.offset(SLOTS_PER_PAGE as u64 * k);

    let mut clock = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut clock, page(0));
    // The second fetch extends a stride run: the home hints the rest of
    // the same-home span and node 0 puts both remaining pages in flight.
    let _ = f.dsm.get(NodeId(0), &mut clock, page(1));
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.hinted_fetches_issued, 2);
    assert_eq!(s.page_loads, 4);
    assert_eq!(f.cluster.node_stats(NodeId(1)).hints_sent, 2);
    // Scanning on completes the tickets without further loads.
    let _ = f.dsm.get(NodeId(0), &mut clock, page(2));
    let _ = f.dsm.get(NodeId(0), &mut clock, page(3));
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.page_loads, 4);
    assert_eq!(s.hinted_fetches_completed, 2);
}

#[test]
fn learned_successor_pairs_hint_non_contiguous_pages() {
    let f = directory_fixture(2, ProtocolKind::JavaIc);
    let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 3, NodeId(1));
    let third = addr.offset(SLOTS_PER_PAGE as u64 * 2);
    let mut clock = ThreadClock::new();

    // One epoch of the non-contiguous pattern (first page, then the
    // third — the middle page is never touched) teaches the home the
    // successor pair.
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    let _ = f.dsm.get(NodeId(0), &mut clock, third);
    f.dsm.invalidate_cache(NodeId(0), &mut clock);
    let before = f.cluster.node_stats(NodeId(0));
    assert_eq!(before.hinted_fetches_issued, 0, "no hints while learning");

    // Second epoch: the miss on the first page is answered with a hint
    // for its learned (non-contiguous) successor, which the node puts
    // in flight; the later demand miss completes that RPC.
    let _ = f.dsm.get(NodeId(0), &mut clock, addr);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.hinted_fetches_issued, before.hinted_fetches_issued + 1);
    let loads_before = s.page_loads;
    let _ = f.dsm.get(NodeId(0), &mut clock, third);
    let s = f.cluster.node_stats(NodeId(0));
    assert_eq!(s.page_loads, loads_before, "hinted page served in flight");
    assert_eq!(s.hinted_fetches_completed, 1);
    // The untouched middle page was never speculated on.
    assert!(!f
        .dsm
        .is_cached(NodeId(0), addr.offset(SLOTS_PER_PAGE as u64).page()));
}

#[test]
fn unused_hints_are_counted_as_waste_at_invalidation() {
    let f = directory_fixture(3, ProtocolKind::JavaPf);
    let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
    let second = addr.offset(SLOTS_PER_PAGE as u64);

    let mut c0 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut c0, addr);
    let _ = f.dsm.get(NodeId(0), &mut c0, second);
    let mut c1 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(1), &mut c1, addr);
    assert_eq!(f.cluster.node_stats(NodeId(1)).hinted_fetches_issued, 1);

    // Node 1 never touches the hinted page: the acquire-side
    // invalidation books the pending ticket as waste.
    f.dsm.invalidate_cache(NodeId(1), &mut c1);
    let s1 = f.cluster.node_stats(NodeId(1));
    assert_eq!(s1.hinted_fetches_wasted, 1);
    assert_eq!(s1.hinted_fetches_completed, 0);
    // With no accuracy history the first waste trips the throttle, so
    // the abandoned ticket is *not* re-armed.
    assert_eq!(s1.hinted_fetches_reissued, 0);
}

#[test]
fn abandoned_hint_tickets_are_reissued_at_the_next_acquire() {
    let f = directory_fixture(3, ProtocolKind::JavaPf);
    let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
    let second = addr.offset(SLOTS_PER_PAGE as u64);
    f.dsm.put(NodeId(2), &mut ThreadClock::new(), second, 77);

    // Teach the home's directory the two-page pattern.
    let mut c0 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut c0, addr);
    let _ = f.dsm.get(NodeId(0), &mut c0, second);

    // Give node 1 a healthy accuracy history so the single waste booked
    // below does not trip the conversion throttle.
    NodeStats::bump_by(&f.cluster.node(NodeId(1)).stats.hinted_fetches_issued, 64);

    // Node 1 demand-misses the first page and converts the piggybacked
    // hint into an in-flight ticket for the second.
    let mut c1 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(1), &mut c1, addr);
    let frame = f.dsm.store().frame(NodeId(1), second.page());
    assert!(frame.inflight_is_hinted());
    let loads_before = f.cluster.node_stats(NodeId(1)).page_loads;

    // The acquire invalidates before the predicted miss arrives: the
    // ticket is booked as waste *and* re-armed on the spot — the node was
    // holding an overlapped fetch for this page, so the next epoch very
    // likely misses on it again.
    f.dsm.invalidate_cache(NodeId(1), &mut c1);
    let s1 = f.cluster.node_stats(NodeId(1));
    assert_eq!(s1.hinted_fetches_wasted, 1);
    assert_eq!(s1.hinted_fetches_reissued, 1);
    assert_eq!(s1.page_loads, loads_before + 1, "one re-issued fetch");
    assert!(frame.inflight_is_hinted(), "ticket re-armed");

    // The demand miss that does come completes the re-issued RPC instead
    // of paying a fresh round trip, and observes the right value.
    assert_eq!(f.dsm.get(NodeId(1), &mut c1, second), 77);
    let s1 = f.cluster.node_stats(NodeId(1));
    assert_eq!(s1.page_loads, loads_before + 1);
    assert_eq!(s1.hinted_fetches_completed, 1);
    assert!(!frame.has_inflight());
}

#[test]
fn hint_conversion_is_throttled_by_measured_waste() {
    let f = directory_fixture(3, ProtocolKind::JavaPf);
    let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
    let second = addr.offset(SLOTS_PER_PAGE as u64);
    let mut c0 = ThreadClock::new();
    let mut c1 = ThreadClock::new();

    // Round after round, node 1 receives the hint, wastes it, and
    // invalidates.  The measured-waste throttle must stop the node from
    // converting hints long before the rounds run out.
    for _ in 0..12 {
        let _ = f.dsm.get(NodeId(0), &mut c0, addr);
        let _ = f.dsm.get(NodeId(0), &mut c0, second);
        f.dsm.invalidate_cache(NodeId(0), &mut c0);
        let _ = f.dsm.get(NodeId(1), &mut c1, addr);
        f.dsm.invalidate_cache(NodeId(1), &mut c1);
    }
    let s1 = f.cluster.node_stats(NodeId(1));
    assert!(
        s1.hinted_fetches_issued <= 2,
        "throttle must stop hint conversion: issued {}",
        s1.hinted_fetches_issued
    );
    assert_eq!(s1.hinted_fetches_wasted, s1.hinted_fetches_issued);
}

#[test]
fn hints_require_the_directory_transport() {
    // Default transport: the same access pattern produces no hints.
    let f = fixture(3, ProtocolKind::JavaPf);
    let addr = f.alloc.alloc_page_aligned(SLOTS_PER_PAGE * 2, NodeId(2));
    let second = addr.offset(SLOTS_PER_PAGE as u64);
    let mut c0 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(0), &mut c0, addr);
    let _ = f.dsm.get(NodeId(0), &mut c0, second);
    let mut c1 = ThreadClock::new();
    let _ = f.dsm.get(NodeId(1), &mut c1, addr);
    let total = f.cluster.total_stats();
    assert_eq!(total.hints_sent, 0);
    assert_eq!(total.hinted_fetches_issued, 0);
    assert_eq!(f.cluster.node_stats(NodeId(1)).page_loads, 1);
}

#[test]
fn hinted_fetches_never_change_observed_values() {
    // The same scan, with and without the directory: identical values.
    let run = |transport: &TransportConfig| -> Vec<u64> {
        let f = fixture_with(
            2,
            ProtocolKind::JavaIc,
            &AdaptiveParams::default(),
            transport,
        );
        let slots = SLOTS_PER_PAGE * 4;
        let addr = f.alloc.alloc_page_aligned(slots, NodeId(1));
        let mut home = ThreadClock::new();
        for k in 0..slots as u64 {
            f.dsm.put(NodeId(1), &mut home, addr.offset(k), k * 3 + 1);
        }
        let mut clock = ThreadClock::new();
        (0..slots as u64)
            .map(|k| f.dsm.get(NodeId(0), &mut clock, addr.offset(k)))
            .collect()
    };
    assert_eq!(
        run(&TransportConfig::default()),
        run(&TransportConfig::directory())
    );
}

// ----- deferred release flushing -----------------------------------------

#[test]
fn deferred_flush_returns_a_watermark_and_applies_the_diffs() {
    let f = directory_fixture(2, ProtocolKind::JavaIc);
    let addr = f.alloc.alloc(8, NodeId(1));
    let mut w = ThreadClock::new();
    f.dsm.put(NodeId(0), &mut w, addr, 41);

    let d = f
        .dsm
        .update_main_memory_deferred(NodeId(0), &mut w)
        .expect("dirty pages under a deferred transport");
    // Only the issue path was charged; the completion lies ahead.
    assert_eq!(d.issue, w.now());
    assert!(d.completion > w.now());
    let s0 = f.cluster.node_stats(NodeId(0));
    assert_eq!(s0.deferred_flushes, 1);
    assert_eq!(s0.diff_messages, 1);
    // The home already holds the value (the wire carried it; only the
    // latency accounting is deferred).
    let mut h = ThreadClock::new();
    assert_eq!(f.dsm.get(NodeId(1), &mut h, addr), 41);
    // Nothing dirty: a second deferred flush is a no-op.
    assert!(f
        .dsm
        .update_main_memory_deferred(NodeId(0), &mut w)
        .is_none());
}

#[test]
fn deferred_flush_falls_back_to_blocking_without_the_transport() {
    let f = fixture(2, ProtocolKind::JavaIc);
    let addr = f.alloc.alloc(8, NodeId(1));
    let mut w = ThreadClock::new();
    f.dsm.put(NodeId(0), &mut w, addr, 9);
    let before = w.now();
    assert!(f
        .dsm
        .update_main_memory_deferred(NodeId(0), &mut w)
        .is_none());
    assert!(w.now() > before, "blocking fallback charges the round trip");
    assert_eq!(f.cluster.node_stats(NodeId(0)).deferred_flushes, 0);
    let mut h = ThreadClock::new();
    assert_eq!(f.dsm.get(NodeId(1), &mut h, addr), 9);
}

#[test]
fn deferred_flush_issue_path_is_cheaper_than_blocking() {
    let blocking = fixture(2, ProtocolKind::JavaIc);
    let deferred = directory_fixture(2, ProtocolKind::JavaIc);
    let run = |f: &Fixture, defer: bool| -> VTime {
        let addr = f.alloc.alloc(8, NodeId(1));
        let mut w = ThreadClock::new();
        f.dsm.put(NodeId(0), &mut w, addr, 1);
        if defer {
            let _ = f.dsm.update_main_memory_deferred(NodeId(0), &mut w);
        } else {
            f.dsm.update_main_memory(NodeId(0), &mut w);
        }
        w.now()
    };
    let t_blocking = run(&blocking, false);
    let t_deferred = run(&deferred, true);
    assert!(
        t_deferred < t_blocking,
        "deferred release must not stall: {t_deferred} vs {t_blocking}"
    );
}
