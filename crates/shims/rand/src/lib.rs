//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched.  This shim provides the subset the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer and
//! float ranges — backed by a deterministic xoshiro256\*\* generator seeded
//! through SplitMix64 (the same construction the real `rand_xoshiro` uses).
//!
//! Determinism is all the benchmarks need: the distributed runs are checked
//! against sequential references generated from the *same* seed, so the
//! stream only has to be stable, not bit-identical to crates.io `rand`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a uniform sample in `[low, high)` using `rng`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// Object-safe source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (the subset of `rand::Rng` used here).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open, `low < high` required).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Construction of a generator from a seed (the subset of `rand::SeedableRng`
/// used here).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! impl_sample_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                // Modulo bias is negligible for the small spans used here and
                // irrelevant for correctness (only determinism matters).
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )+};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn integer_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(3u32..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn float_ranges_are_respected_and_spread() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut low_half = 0usize;
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            if v < 0.0 {
                low_half += 1;
            }
        }
        assert!((3000..7000).contains(&low_half), "badly skewed: {low_half}");
    }
}
