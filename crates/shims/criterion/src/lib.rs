//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched.  This shim implements the subset of its API the bench
//! targets use — `Criterion`, benchmark groups with `sample_size` /
//! `measurement_time` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros — as a small
//! wall-clock harness that warms up once, runs the configured number of
//! samples and prints mean / min / max per benchmark.  No statistics, plots
//! or baselines: just enough to keep `cargo bench` meaningful offline.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimiser from deleting a computation
/// whose result is otherwise unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the measured body.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Measure `body`: one untimed warm-up call, then `samples` timed calls.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        black_box(body()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the shim accepts anything >= 1 and keeps
        // runs short by capping at 20.
        self.samples = n.clamp(1, 20);
        self
    }

    /// Accepted for API compatibility; the shim's sample count alone bounds
    /// the run time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        body: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.samples,
            durations: Vec::new(),
        };
        body(&mut bencher, input);
        self.criterion
            .report(&self.name, &id.label, &bencher.durations);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        body: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.samples,
            durations: Vec::new(),
        };
        body(&mut bencher);
        self.criterion
            .report(&self.name, &id.to_string(), &bencher.durations);
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }

    fn report(&mut self, group: &str, label: &str, durations: &[Duration]) {
        if durations.is_empty() {
            println!("{group}/{label}: no samples");
            return;
        }
        let total: Duration = durations.iter().sum();
        let mean = total / durations.len() as u32;
        let min = durations.iter().min().expect("non-empty");
        let max = durations.iter().max().expect("non-empty");
        println!(
            "{group}/{label}: mean {mean:?} (min {min:?}, max {max:?}, n={})",
            durations.len()
        );
    }
}

/// Declare a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * x
                })
            });
            g.bench_function("noop", |b| b.iter(|| ()));
            g.finish();
        }
        // 3 timed samples + 1 warm-up.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
        assert_eq!(
            BenchmarkId::from_parameter("java_ic").to_string(),
            "java_ic"
        );
    }
}
