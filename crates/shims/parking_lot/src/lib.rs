//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `parking_lot` cannot be fetched from crates.io.  This shim provides
//! the (small) subset of its API the workspace uses — [`Mutex`], [`RwLock`]
//! and [`Condvar`] with guard-based, non-poisoning locking — implemented on
//! top of `std::sync`.  Lock poisoning is deliberately swallowed
//! (`parking_lot` has no poisoning either): a panic while holding a lock
//! already aborts the affected test or run.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning,
/// guard-returning) locking.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard holds the lock")
    }
}

/// A reader-writer lock with `parking_lot`-style locking.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable whose `wait` takes the guard by `&mut`, as
/// `parking_lot`'s does.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the mutex behind `guard` and wait for a
    /// notification, re-acquiring the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_fails_only_while_held() {
        let m = Mutex::new(7);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none());
        }
        let guard = m.try_lock().expect("lock is free again");
        assert_eq!(*guard, 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
