//! Socket-backed transport: each node's registered RPC handler table served
//! from behind a real Unix-domain or TCP(localhost) socket.
//!
//! While [`crate::transport::SimTransport`] executes handlers inline, this
//! backend makes the communication *physical*: every node gets its own
//! listening socket and accept thread; requests and replies cross the wire
//! as length-prefixed frames whose payloads are the already byte-precise DSM
//! wire forms (`dsm/diff.rs` diff batches, batched fetch requests,
//! fetch-reply hint trailers, migration replies).  Nodes run as per-node
//! server *threads* inside one process (process-per-node can follow); the
//! frame format carries explicit `from`/`to` node ids so nothing about it
//! assumes shared memory.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//!      0     4  length of everything that follows, u32 LE
//!      4     1  kind: 1 = request, 2 = reply, 3 = error
//!      5     4  service-table index, u32 LE
//!      9     4  requesting node id, u32 LE
//!     13     4  target node id, u32 LE
//!     17     8  aux, u64 LE — replies carry the handler's reported service
//!               time in picoseconds; requests and errors carry 0
//!     25     …  payload
//! ```
//!
//! Error-frame payloads are `code (u8) · detail (u32 LE) · UTF-8 message`;
//! the codes are [`ERR_UNKNOWN_SERVICE`] (detail = number of registered
//! services), [`ERR_HANDLER_PANIC`], [`ERR_MALFORMED`] and [`ERR_SHUTDOWN`].
//!
//! ## Timing contract
//!
//! The server side never touches [`hyperion_model::NodeStats`] or the target
//! node's service clock; it only executes the handler and ships the reply
//! (plus the handler's virtual service time) back.  The **caller** then runs
//! the exact same modeled-cost accounting the simulated backend uses, so
//! virtual-time results and per-node counters are identical across backends.
//! What this backend adds is a wall-clock measurement of every round trip,
//! accumulated per service in [`hyperion_model::WireStats`] — the "measured"
//! column of the bench harness's modeled-vs-measured report.
//!
//! ## Failure handling
//!
//! A client connection that hits an I/O error is re-dialled under a bounded
//! deterministic backoff schedule — the same [`RetryPolicy`] shape the DSM
//! layer retries RPCs under, here applied to *wall-clock* sleeps — and the
//! request retried on each fresh connection; exhausting the schedule
//! surfaces as [`TransportError::Io`].  Server side, a handler panic is
//! caught and answered with an error frame (the node keeps serving), and
//! malformed frames are rejected — never panicked on.  A peer that is
//! draining answers [`ERR_SHUTDOWN`], which decodes to the dedicated
//! [`TransportError::Shutdown`] variant so callers can tell an orderly exit
//! apart from peer death.  [`SocketTransport::shutdown`] (called from `Drop
//! for Cluster`) closes every connection, unblocks the accept loops, joins
//! all threads and removes the socket files; it is idempotent.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use hyperion_model::{ThreadClock, VTime, WireServiceSnapshot, WireStats};
use parking_lot::Mutex;

use crate::cluster::Cluster;
use crate::comm::ServiceId;
use crate::fault::RetryPolicy;
use crate::node::NodeId;
use crate::transport::{charge_round_trip, Transport, TransportBackend, TransportError};

/// Bytes of a frame header, after the 4-byte length prefix.
pub const FRAME_HEADER_BYTES: usize = 21;

/// Upper bound accepted for one frame body (header + payload).  Far above
/// any legitimate DSM message (the largest are multi-page batched-fetch
/// replies); a peer announcing more than this is talking garbage and the
/// connection is dropped instead of allocating unbounded memory.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Error-frame code: the requested service index is not registered.
pub const ERR_UNKNOWN_SERVICE: u8 = 1;
/// Error-frame code: the handler panicked (caught; the node keeps serving).
pub const ERR_HANDLER_PANIC: u8 = 2;
/// Error-frame code: the request frame could not be decoded or addressed.
pub const ERR_MALFORMED: u8 = 3;
/// Error-frame code: the server is shutting down.
pub const ERR_SHUTDOWN: u8 = 4;

/// Frame discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A request for the target node's handler table.
    Request,
    /// A successful reply; `aux` carries the handler's service time (ps).
    Reply,
    /// A server-reported failure; the payload is `code · detail · message`.
    Error,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Reply => 2,
            FrameKind::Error => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Reply),
            3 => Some(FrameKind::Error),
            _ => None,
        }
    }
}

/// A decoded frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// What this frame is.
    pub kind: FrameKind,
    /// Service-table index the request addresses (echoed on replies).
    pub service: u32,
    /// Requesting node id.
    pub from: u32,
    /// Target node id.
    pub to: u32,
    /// Replies: the handler's reported service time in picoseconds;
    /// requests and errors: 0.
    pub aux: u64,
}

/// Encode one complete frame: length prefix, header, payload.
pub fn encode_frame(header: FrameHeader, payload: &[u8]) -> Vec<u8> {
    let body_len = FRAME_HEADER_BYTES + payload.len();
    assert!(body_len <= MAX_FRAME_BYTES, "frame payload too large");
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(header.kind.to_byte());
    out.extend_from_slice(&header.service.to_le_bytes());
    out.extend_from_slice(&header.from.to_le_bytes());
    out.extend_from_slice(&header.to.to_le_bytes());
    out.extend_from_slice(&header.aux.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode a frame body (everything after the length prefix) into its header
/// and payload.  Truncated or malformed input is *rejected*, never panicked
/// on — this is the boundary where bytes from an untrusted peer enter the
/// node.
pub fn decode_frame(body: &[u8]) -> Result<(FrameHeader, &[u8]), String> {
    if body.len() < FRAME_HEADER_BYTES {
        return Err(format!(
            "frame body of {} bytes is shorter than the {FRAME_HEADER_BYTES}-byte header",
            body.len()
        ));
    }
    let kind = FrameKind::from_byte(body[0])
        .ok_or_else(|| format!("unknown frame kind tag {}", body[0]))?;
    let le_u32 = |at: usize| u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
    let header = FrameHeader {
        kind,
        service: le_u32(1),
        from: le_u32(5),
        to: le_u32(9),
        aux: u64::from_le_bytes(body[13..21].try_into().expect("8 bytes")),
    };
    Ok((header, &body[FRAME_HEADER_BYTES..]))
}

fn encode_error_frame(request: FrameHeader, code: u8, detail: u32, message: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + message.len());
    payload.push(code);
    payload.extend_from_slice(&detail.to_le_bytes());
    payload.extend_from_slice(message.as_bytes());
    encode_frame(
        FrameHeader {
            kind: FrameKind::Error,
            service: request.service,
            from: request.from,
            to: request.to,
            aux: 0,
        },
        &payload,
    )
}

fn decode_error_payload(service: ServiceId, payload: &[u8]) -> TransportError {
    if payload.is_empty() {
        return TransportError::MalformedFrame("empty error-frame payload".into());
    }
    let code = payload[0];
    let detail = payload
        .get(1..5)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .unwrap_or(0);
    let message = String::from_utf8_lossy(payload.get(5..).unwrap_or(&[])).into_owned();
    match code {
        ERR_UNKNOWN_SERVICE => TransportError::UnknownService {
            service: service.0,
            registered: detail as usize,
        },
        ERR_MALFORMED => TransportError::MalformedFrame(message),
        ERR_SHUTDOWN => TransportError::Shutdown(message),
        _ => TransportError::Remote(message),
    }
}

/// A connected stream of either flavour.
#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Where a node's server listens.
#[derive(Clone, Debug)]
enum Addr {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

impl Addr {
    fn connect(&self) -> std::io::Result<Stream> {
        match self {
            Addr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Addr::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // Frames are small request/reply pairs; Nagle only adds
                // latency to the measured round trips.
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }
}

/// Read one length-prefixed frame body; `Ok(None)` is a clean EOF before
/// any length byte (the peer closed the connection).
fn read_frame(stream: &mut Stream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_le_bytes(len) as usize;
    if !(FRAME_HEADER_BYTES..=MAX_FRAME_BYTES).contains(&n) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {n} out of range"),
        ));
    }
    let mut body = vec![0u8; n];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "handler panicked".to_string()
    }
}

/// Distinguishes concurrently running clusters' socket files within one
/// process (tests run many clusters in parallel).
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);

#[derive(Default)]
struct ServerState {
    started: bool,
    addrs: Vec<Addr>,
    socket_files: Vec<PathBuf>,
    accept_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// The socket-backed [`Transport`].  See the module docs for the frame
/// layout, timing contract and failure handling.
pub struct SocketTransport {
    backend: TransportBackend,
    wire: WireStats,
    /// Wall-clock redial schedule for broken client connections.
    redial: RetryPolicy,
    shutting_down: Arc<AtomicBool>,
    state: Mutex<ServerState>,
    /// One persistent client connection per `(from, to)` node pair, dialled
    /// lazily.  The per-connection mutex is held across a full round trip,
    /// which is sound because handlers never issue nested RPCs.
    conns: Mutex<HashMap<(u32, u32), SharedStream>>,
}

/// A client connection shared between the round-trip path (which locks it
/// for the duration of one RPC) and the reconnect path.
type SharedStream = Arc<Mutex<Stream>>;

impl SocketTransport {
    /// A transport backed by per-node Unix-domain sockets in the system
    /// temporary directory.
    pub fn unix() -> Self {
        Self::for_backend(TransportBackend::UnixSocket)
    }

    /// A transport backed by per-node TCP servers on `127.0.0.1`.
    pub fn tcp() -> Self {
        Self::for_backend(TransportBackend::Tcp)
    }

    /// Build the transport for a socket-flavoured backend.
    ///
    /// # Panics
    /// Panics on [`TransportBackend::Sim`] — that is
    /// [`crate::transport::SimTransport`]'s job.
    pub fn for_backend(backend: TransportBackend) -> Self {
        assert!(
            backend != TransportBackend::Sim,
            "SimTransport handles the sim backend"
        );
        SocketTransport {
            backend,
            wire: WireStats::default(),
            redial: RetryPolicy::default(),
            shutting_down: Arc::new(AtomicBool::new(false)),
            state: Mutex::new(ServerState::default()),
            conns: Mutex::new(HashMap::new()),
        }
    }

    /// Replace the wall-clock redial schedule for broken client connections
    /// (`max_attempts` total tries per round trip, backoff per
    /// [`RetryPolicy::backoff`] interpreted as wall time).
    pub fn with_redial(mut self, redial: RetryPolicy) -> Self {
        self.redial = redial;
        self
    }

    fn dial(&self, to: NodeId) -> std::io::Result<Stream> {
        let addr = {
            let state = self.state.lock();
            state.addrs.get(to.index()).cloned()
        };
        match addr {
            Some(addr) => addr.connect(),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "socket transport has no server for this node (not started?)",
            )),
        }
    }

    fn connection(&self, from: NodeId, to: NodeId) -> Result<Arc<Mutex<Stream>>, TransportError> {
        let key = (from.0, to.0);
        if let Some(conn) = self.conns.lock().get(&key) {
            return Ok(Arc::clone(conn));
        }
        let stream = self
            .dial(to)
            .map_err(|error| TransportError::Io { peer: to, error })?;
        let mut conns = self.conns.lock();
        let entry = conns
            .entry(key)
            .or_insert_with(|| Arc::new(Mutex::new(stream)));
        Ok(Arc::clone(entry))
    }

    fn exchange(stream: &mut Stream, frame: &[u8]) -> std::io::Result<Vec<u8>> {
        stream.write_all(frame)?;
        stream.flush()?;
        match read_frame(stream)? {
            Some(body) => Ok(body),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-round-trip",
            )),
        }
    }

    /// One physical round trip.  Returns the reply payload, the handler's
    /// reported service time (ps) and the frame bytes sent/received.
    fn round_trip(
        &self,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, u64, u64, u64), TransportError> {
        let frame = encode_frame(
            FrameHeader {
                kind: FrameKind::Request,
                service: service.0 as u32,
                from: from.0,
                to: to.0,
                aux: 0,
            },
            payload,
        );
        let conn = self.connection(from, to)?;
        let mut stream = conn.lock();
        let body = match Self::exchange(&mut stream, &frame) {
            Ok(body) => body,
            Err(first) => {
                // Re-dial under the bounded backoff schedule, retrying the
                // request on each fresh connection.  (A request whose reply
                // was lost may execute more than once on this path; the
                // DSM's handlers are idempotent at page granularity, and in
                // practice the retry only ever fires on connection-setup
                // races.)  Exhausting the schedule reports the last error.
                let mut last = first;
                let mut recovered = None;
                for retry in 0..self.redial.max_attempts.saturating_sub(1) {
                    let backoff = self.redial.backoff(retry).as_ps() / 1_000;
                    std::thread::sleep(std::time::Duration::from_nanos(backoff));
                    match self.dial(to) {
                        Ok(fresh) => *stream = fresh,
                        Err(error) => {
                            last = error;
                            continue;
                        }
                    }
                    match Self::exchange(&mut stream, &frame) {
                        Ok(body) => {
                            recovered = Some(body);
                            break;
                        }
                        Err(error) => last = error,
                    }
                }
                match recovered {
                    Some(body) => body,
                    None => {
                        return Err(TransportError::Io {
                            peer: to,
                            error: last,
                        })
                    }
                }
            }
        };
        drop(stream);
        let (header, reply_payload) =
            decode_frame(&body).map_err(TransportError::MalformedFrame)?;
        match header.kind {
            FrameKind::Reply => Ok((
                reply_payload.to_vec(),
                header.aux,
                frame.len() as u64,
                4 + body.len() as u64,
            )),
            FrameKind::Error => Err(decode_error_payload(service, reply_payload)),
            FrameKind::Request => Err(TransportError::MalformedFrame(
                "server sent a request frame in reply position".into(),
            )),
        }
    }
}

/// Serve one accepted connection: read request frames, dispatch to the
/// node's handler table, write reply (or error) frames, until EOF.
fn serve_connection(mut stream: Stream, node: u32, cluster: Weak<Cluster>) {
    // A clean EOF or an I/O error both end the connection.
    while let Ok(Some(body)) = read_frame(&mut stream) {
        let reply = match decode_frame(&body) {
            Ok((header, payload)) if header.kind == FrameKind::Request => {
                dispatch(&cluster, node, header, payload)
            }
            Ok((header, _)) => {
                encode_error_frame(header, ERR_MALFORMED, 0, "expected a request frame")
            }
            Err(msg) => encode_error_frame(
                FrameHeader {
                    kind: FrameKind::Error,
                    service: 0,
                    from: 0,
                    to: node,
                    aux: 0,
                },
                ERR_MALFORMED,
                0,
                &msg,
            ),
        };
        if stream
            .write_all(&reply)
            .and_then(|()| stream.flush())
            .is_err()
        {
            break;
        }
    }
}

fn dispatch(cluster: &Weak<Cluster>, node: u32, header: FrameHeader, payload: &[u8]) -> Vec<u8> {
    let Some(cluster) = cluster.upgrade() else {
        return encode_error_frame(header, ERR_SHUTDOWN, 0, "cluster is shutting down");
    };
    if header.to != node || (header.from as usize) >= cluster.num_nodes() {
        return encode_error_frame(
            header,
            ERR_MALFORMED,
            0,
            &format!(
                "bad addressing: from {} to {} at node {node} of {}",
                header.from,
                header.to,
                cluster.num_nodes()
            ),
        );
    }
    let Some(handler) = cluster.handler(ServiceId(header.service as usize)) else {
        return encode_error_frame(
            header,
            ERR_UNKNOWN_SERVICE,
            cluster.num_services() as u32,
            &format!("unknown RPC service {}", header.service),
        );
    };
    let target = cluster.node(NodeId(header.to));
    let caller = NodeId(header.from);
    // A panicking handler answers with an error frame instead of taking the
    // server thread (and the node) down with it.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handler.handle(target, caller, payload)
    }));
    match result {
        Ok(reply) => encode_frame(
            FrameHeader {
                kind: FrameKind::Reply,
                service: header.service,
                from: header.from,
                to: header.to,
                aux: reply.service.as_ps(),
            },
            &reply.data,
        ),
        Err(panic) => encode_error_frame(header, ERR_HANDLER_PANIC, 0, &panic_message(panic)),
    }
}

fn accept_loop(
    listener: Listener,
    node: u32,
    cluster: Weak<Cluster>,
    shutting_down: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = listener.accept();
        if shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let cluster = cluster.clone();
                let handle = std::thread::spawn(move || serve_connection(stream, node, cluster));
                conn_threads.lock().push(handle);
            }
            Err(_) => {
                // Spurious accept failure; keep serving unless shutting down.
                continue;
            }
        }
    }
}

impl Transport for SocketTransport {
    fn rpc_split(
        &self,
        cluster: &Cluster,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, VTime), TransportError> {
        let started = Instant::now();
        let (data, service_ps, bytes_sent, bytes_received) =
            self.round_trip(from, to, service, payload)?;
        let rtt_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let trip = charge_round_trip(
            cluster,
            clock,
            from,
            to,
            payload.len(),
            data.len(),
            VTime::from_ps(service_ps),
        );
        self.wire.record(
            service.0,
            bytes_sent,
            bytes_received,
            rtt_nanos,
            trip.modeled.as_ps(),
        );
        Ok((data, trip.completion))
    }

    fn start(&self, cluster: &Arc<Cluster>) {
        let mut state = self.state.lock();
        assert!(!state.started, "socket transport started twice");
        state.started = true;
        let instance = NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed);
        for node in 0..cluster.num_nodes() as u32 {
            let listener = match self.backend {
                TransportBackend::UnixSocket => {
                    let path = std::env::temp_dir().join(format!(
                        "hyperion-pm2-{}-{instance}-{node}.sock",
                        std::process::id()
                    ));
                    let _ = std::fs::remove_file(&path);
                    let listener =
                        UnixListener::bind(&path).expect("bind per-node unix socket server");
                    state.socket_files.push(path.clone());
                    state.addrs.push(Addr::Unix(path));
                    Listener::Unix(listener)
                }
                TransportBackend::Tcp => {
                    let listener = TcpListener::bind(("127.0.0.1", 0))
                        .expect("bind per-node localhost TCP server");
                    let addr = listener.local_addr().expect("local TCP address");
                    state.addrs.push(Addr::Tcp(addr));
                    Listener::Tcp(listener)
                }
                TransportBackend::Sim => unreachable!("rejected in for_backend"),
            };
            let weak = Arc::downgrade(cluster);
            let shutting_down = Arc::clone(&self.shutting_down);
            let conn_threads = Arc::clone(&state.conn_threads);
            state.accept_threads.push(std::thread::spawn(move || {
                accept_loop(listener, node, weak, shutting_down, conn_threads)
            }));
        }
    }

    fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drop every pooled client connection first: the per-connection
        // server threads see EOF and exit.
        self.conns.lock().clear();
        let mut state = self.state.lock();
        // Unblock each accept loop with a throwaway connection; the loop
        // re-checks the flag right after `accept` returns.
        for addr in &state.addrs {
            let _ = addr.connect();
        }
        for handle in state.accept_threads.drain(..) {
            let _ = handle.join();
        }
        let conn_threads = Arc::clone(&state.conn_threads);
        for handle in conn_threads.lock().drain(..) {
            let _ = handle.join();
        }
        for path in state.socket_files.drain(..) {
            let _ = std::fs::remove_file(path);
        }
    }

    fn name(&self) -> &'static str {
        match self.backend {
            TransportBackend::UnixSocket => "unix-socket",
            TransportBackend::Tcp => "tcp-socket",
            TransportBackend::Sim => "sim",
        }
    }

    fn wire_stats(&self) -> Option<Vec<WireServiceSnapshot>> {
        Some(self.wire.snapshot())
    }
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("backend", &self.backend)
            .field("shutting_down", &self.shutting_down.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RpcReply;
    use crate::node::Node;
    use hyperion_model::myrinet_200;

    fn socket_cluster(
        nodes: usize,
        backend: TransportBackend,
    ) -> (Arc<Cluster>, Arc<SocketTransport>) {
        let transport = Arc::new(SocketTransport::for_backend(backend));
        let cluster = Cluster::with_transport(
            myrinet_200().machine,
            nodes,
            Arc::clone(&transport) as Arc<dyn Transport>,
        );
        (cluster, transport)
    }

    fn echo_service(c: &Arc<Cluster>) -> ServiceId {
        c.register_service(Arc::new(|_n: &Node, caller: NodeId, p: &[u8]| {
            let mut data = vec![caller.0 as u8];
            data.extend_from_slice(p);
            RpcReply::with_data(data, VTime::from_us(2))
        }))
    }

    #[test]
    fn frame_encode_decode_round_trip() {
        let header = FrameHeader {
            kind: FrameKind::Reply,
            service: 7,
            from: 1,
            to: 3,
            aux: 123_456_789,
        };
        let frame = encode_frame(header, &[0xAB, 0xCD]);
        assert_eq!(
            u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize,
            frame.len() - 4
        );
        let (decoded, payload) = decode_frame(&frame[4..]).expect("round trip");
        assert_eq!(decoded, header);
        assert_eq!(payload, &[0xAB, 0xCD]);
    }

    #[test]
    fn truncated_and_malformed_frames_are_rejected_not_panicked_on() {
        let frame = encode_frame(
            FrameHeader {
                kind: FrameKind::Request,
                service: 0,
                from: 0,
                to: 1,
                aux: 0,
            },
            &[1, 2, 3],
        );
        for cut in 0..FRAME_HEADER_BYTES {
            assert!(decode_frame(&frame[4..4 + cut]).is_err(), "cut at {cut}");
        }
        let mut bad_kind = frame[4..].to_vec();
        bad_kind[0] = 99;
        assert!(decode_frame(&bad_kind).is_err());
    }

    #[test]
    fn unix_socket_rpc_round_trips_and_counts_wire_traffic() {
        let (c, _t) = socket_cluster(2, TransportBackend::UnixSocket);
        let svc = echo_service(&c);
        let mut clock = ThreadClock::new();
        let out = c
            .rpc(&mut clock, NodeId(0), NodeId(1), svc, &[9, 8, 7])
            .expect("socket rpc");
        assert_eq!(out, vec![0, 9, 8, 7]);
        assert!(clock.now() >= VTime::from_us(2));
        // Modeled node counters behave exactly like the sim backend's.
        assert_eq!(c.node_stats(NodeId(0)).rpc_requests, 1);
        assert_eq!(c.node_stats(NodeId(1)).rpc_served, 1);
        // Wire counters exist only on a real transport.
        let wire = c.transport().wire_stats().expect("socket wire stats");
        assert_eq!(wire.len(), 1);
        assert_eq!(wire[0].service, svc.index());
        assert_eq!(wire[0].messages, 1);
        assert!(wire[0].bytes_sent >= (4 + FRAME_HEADER_BYTES + 3) as u64);
        assert!(wire[0].bytes_received >= (4 + FRAME_HEADER_BYTES + 4) as u64);
        assert!(wire[0].modeled_ps > 0);
    }

    #[test]
    fn tcp_socket_rpc_round_trips() {
        let (c, _t) = socket_cluster(2, TransportBackend::Tcp);
        let svc = echo_service(&c);
        let mut clock = ThreadClock::new();
        let out = c
            .rpc(&mut clock, NodeId(1), NodeId(0), svc, &[5])
            .expect("tcp rpc");
        assert_eq!(out, vec![1, 5]);
        assert_eq!(c.transport().name(), "tcp-socket");
    }

    #[test]
    fn socket_and_sim_backends_charge_identical_virtual_time() {
        let sim = Cluster::new(myrinet_200().machine, 2);
        let (sock, _t) = socket_cluster(2, TransportBackend::UnixSocket);
        let svc_sim = echo_service(&sim);
        let svc_sock = echo_service(&sock);

        let mut clock_sim = ThreadClock::new();
        let mut clock_sock = ThreadClock::new();
        for (from, to) in [(0u32, 1u32), (0, 0), (1, 0)] {
            let a = sim
                .rpc(&mut clock_sim, NodeId(from), NodeId(to), svc_sim, &[1, 2])
                .unwrap();
            let b = sock
                .rpc(&mut clock_sock, NodeId(from), NodeId(to), svc_sock, &[1, 2])
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(clock_sim.now(), clock_sock.now());
        }
        assert_eq!(sim.total_stats(), sock.total_stats());
    }

    #[test]
    fn unknown_service_is_a_typed_error_over_the_socket() {
        let (c, _t) = socket_cluster(1, TransportBackend::UnixSocket);
        let mut clock = ThreadClock::new();
        let err = c
            .rpc(&mut clock, NodeId(0), NodeId(0), ServiceId(42), &[])
            .unwrap_err();
        match err {
            TransportError::UnknownService {
                service,
                registered,
            } => {
                assert_eq!(service, 42);
                assert_eq!(registered, 0);
            }
            other => panic!("expected UnknownService, got {other}"),
        }
        // The node is still alive and serves the next request.
        let svc = echo_service(&c);
        let out = c.rpc(&mut clock, NodeId(0), NodeId(0), svc, &[3]).unwrap();
        assert_eq!(out, vec![0, 3]);
    }

    #[test]
    fn handler_panic_is_caught_and_the_node_keeps_serving() {
        let (c, _t) = socket_cluster(2, TransportBackend::UnixSocket);
        let boom = c.register_service(Arc::new(|_n: &Node, _c: NodeId, p: &[u8]| {
            if p == b"boom" {
                panic!("intentional test panic");
            }
            RpcReply::ack(VTime::ZERO)
        }));
        let mut clock = ThreadClock::new();
        let err = c
            .rpc(&mut clock, NodeId(0), NodeId(1), boom, b"boom")
            .unwrap_err();
        match err {
            TransportError::Remote(msg) => assert!(msg.contains("intentional test panic")),
            other => panic!("expected Remote, got {other}"),
        }
        // Same connection, same service: the server thread survived.
        let out = c.rpc(&mut clock, NodeId(0), NodeId(1), boom, b"fine");
        assert!(out.is_ok());
    }

    #[test]
    fn malformed_frames_get_an_error_frame_back() {
        let (c, transport) = socket_cluster(1, TransportBackend::UnixSocket);
        let svc = echo_service(&c);
        assert_eq!(c.transport().name(), "unix-socket");
        // Talk to the server directly, bypassing the client-side encoder.
        let mut stream = transport.dial(NodeId(0)).expect("dial node 0");
        // A correctly-lengthed body with an unknown kind tag: the server
        // answers with an error frame and keeps the connection open.
        let mut garbage = vec![99u8]; // bad kind
        garbage.extend_from_slice(&[0u8; FRAME_HEADER_BYTES - 1]);
        stream
            .write_all(&(garbage.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&garbage).unwrap();
        stream.flush().unwrap();
        let body = read_frame(&mut stream)
            .expect("error reply")
            .expect("not EOF");
        let (header, payload) = decode_frame(&body).expect("decodable error frame");
        assert_eq!(header.kind, FrameKind::Error);
        assert_eq!(payload[0], ERR_MALFORMED);

        // A frame announcing an impossible length cannot be resynchronised;
        // the server drops that connection (and only that connection).
        let mut bad_len = transport.dial(NodeId(0)).expect("dial node 0 again");
        bad_len.write_all(&5u32.to_le_bytes()).unwrap();
        bad_len.write_all(&[1, 2, 3, 4, 5]).unwrap();
        bad_len.flush().unwrap();
        match read_frame(&mut bad_len) {
            Ok(None) | Err(_) => {} // connection closed, no panic
            Ok(Some(_)) => panic!("expected the connection to be dropped"),
        }

        // The node still answers well-formed requests.
        let mut clock = ThreadClock::new();
        assert!(c.rpc(&mut clock, NodeId(0), NodeId(0), svc, &[1]).is_ok());
    }

    #[test]
    fn shutdown_is_idempotent_and_removes_socket_files() {
        let (c, transport) = socket_cluster(2, TransportBackend::UnixSocket);
        let svc = echo_service(&c);
        let mut clock = ThreadClock::new();
        c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1]).unwrap();
        let paths: Vec<PathBuf> = transport.state.lock().socket_files.clone();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.exists()));
        c.transport().shutdown();
        c.transport().shutdown(); // idempotent
        assert!(paths.iter().all(|p| !p.exists()));
    }
}
