//! Cluster node identity and per-node runtime state.

use hyperion_model::{NodeStats, ServerClock};

/// Identifier of a cluster node (0-based, dense).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Node index as a `usize` (for indexing per-node tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A cluster node: the unit the load balancer distributes threads over and
/// the granularity at which the DSM keeps object caches ("at most one copy of
/// an object may exist on a node", §3.1).
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    /// Virtual-time availability of this node's protocol-service processor
    /// (page-fetch and diff handlers are serialised through it).
    pub server: ServerClock,
    /// Event counters for this node.
    pub stats: NodeStats,
}

impl Node {
    /// Create a node with an idle server and zeroed statistics.
    pub fn new(id: NodeId) -> Self {
        Node {
            id,
            server: ServerClock::new(),
            stats: NodeStats::default(),
        }
    }

    /// This node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Reset per-run state (server clock and statistics).
    pub fn reset(&self) {
        self.server.reset();
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperion_model::VTime;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(3);
        assert_eq!(id.index(), 3);
        assert_eq!(format!("{id}"), "node3");
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn node_reset_clears_state() {
        let n = Node::new(NodeId(0));
        assert_eq!(n.id(), NodeId(0));
        n.server.serve(VTime::from_us(5), VTime::from_us(5));
        hyperion_model::NodeStats::bump(&n.stats.page_loads);
        n.reset();
        assert_eq!(n.server.free_at(), VTime::ZERO);
        assert_eq!(n.stats.snapshot().page_loads, 0);
    }
}
