//! # hyperion-pm2
//!
//! A Rust stand-in for the **PM2** distributed multithreaded runtime the
//! original Hyperion system was built on (threads, RPC-style communication,
//! iso-address memory allocation), re-implemented for the Hyperion-RS
//! reproduction of Antoniu & Hatcher, *"Remote object detection in
//! cluster-based Java"* (JavaPDC/IPDPS 2001).
//!
//! The paper's Table 1 lists the Hyperion runtime subsystems; the pieces that
//! map onto PM2 live here:
//!
//! * [`node`] / [`cluster`] — the cluster abstraction: a set of homogeneous
//!   nodes, each with a protocol-service clock and event counters.
//! * [`comm`] — the communication subsystem: asynchronously-invoked message
//!   handlers ("RPCs" in PM2 terminology).  Handlers execute on the target
//!   node's state; the virtual-time cost of marshalling, wire transfer and
//!   home-node service is charged to the calling thread's clock.
//! * [`iso`] — iso-address allocation: every node sees every object at the
//!   same global address, so references remain valid wherever the object is
//!   replicated (§3.1 of the paper).
//! * [`threads`] — thread identity and per-node thread registry (the paper's
//!   "threads subsystem"; actual scheduling uses native OS threads).
//! * [`transport`] / [`socket`] — the pluggable transport layer: the
//!   in-process cost-model [`SimTransport`] (default) and the
//!   Unix-domain/TCP(localhost) [`SocketTransport`] that serves each node's
//!   handler table from behind a real socket.
//! * [`fault`] — the fault plane: [`FaultyTransport`] wraps either backend
//!   with a deterministic, seeded [`FaultSpec`] schedule (drop / delay /
//!   duplicate frames, forced handler panics, a named node killed at a
//!   named virtual time), and [`RetryPolicy`] carries the bounded
//!   exponential-backoff knobs the RPC path retries under.
//! * [`topology`] — the node-group shape of the cluster: [`Topology`]
//!   partitions nodes into equal-size groups with a leader each, the basis
//!   of the DSM layer's hierarchical home routing and group-local
//!   fetch/diff combining (flat single-node groups by default).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod comm;
pub mod fault;
pub mod iso;
pub mod node;
pub mod socket;
pub mod threads;
pub mod topology;
pub mod transport;

pub use cluster::Cluster;
pub use comm::{RpcHandler, RpcReply, ServiceId};
pub use fault::{FaultKill, FaultSpec, FaultyTransport, RetryPolicy};
pub use iso::{GlobalAddr, IsoAllocator, PageId, PAGE_BYTES, SLOTS_PER_PAGE, SLOT_BYTES};
pub use node::{Node, NodeId};
pub use socket::SocketTransport;
pub use threads::{ThreadId, ThreadRegistry};
pub use topology::Topology;
pub use transport::{SimTransport, Transport, TransportBackend, TransportError};
