//! Deterministic fault injection and the retry-policy knobs of the RPC path.
//!
//! [`FaultyTransport`] wraps any [`Transport`] (the in-process
//! [`crate::SimTransport`] or the socket-backed
//! [`crate::SocketTransport`]) and perturbs remote round trips according to
//! a [`FaultSpec`]: drop or duplicate request frames, delay replies, force
//! handler panics, and kill a named node at a named virtual time.  Every
//! decision is a pure function of the spec's seed and a monotone call
//! counter, so a chaos run is replayable from its spec string alone.
//!
//! What each fault means, precisely:
//!
//! * **drop** — the request frame never reaches the handler.  The handler
//!   does not execute; the caller gets [`TransportError::TimedOut`] (the
//!   retry layer charges the configured detection timeout) and the caller
//!   node's `frames_dropped_injected` counter is bumped.
//! * **panic** — the handler is modeled as panicking before doing any work:
//!   the caller gets [`TransportError::Remote`], exactly what a caught
//!   server-side panic produces, and may retry.
//! * **dup** — the request frame is delivered twice.  The DSM's handlers
//!   are value-idempotent (diffs carry absolute slot values, fetches are
//!   reads), so the second execution is not performed; its wire bytes and
//!   server occupancy *are* charged via a second modeled round trip.
//! * **delay** — the reply is late: the transaction's completion instant is
//!   pushed back by `delay_by`.
//! * **kill** — from the first remote call issued at or after the named
//!   virtual time, the named node stops serving as an RPC target
//!   (fail-stop server): every call addressed to it fails with
//!   [`TransportError::NodeDown`].  The node's own threads keep computing —
//!   recovery of the pages it homed is the DSM layer's job.
//!
//! Determinism: `drop_first` and the kill are exactly replayable; the
//! per-mille draws are replayable in distribution (the call *counter* order
//! depends on OS thread interleaving when several app threads share the
//! transport, but single-threaded runs — the chaos unit tests — are exact).
//!
//! [`RetryPolicy`] is plain data: the DSM layer uses it to bound retries in
//! *virtual* time on the RPC path, and [`crate::SocketTransport`] reuses the
//! same schedule shape to bound its *wall-clock* redial loop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hyperion_model::{NodeStats, ThreadClock, VTime, WireServiceSnapshot};

use crate::cluster::Cluster;
use crate::comm::ServiceId;
use crate::node::NodeId;
use crate::transport::{charge_round_trip, Transport, TransportError};

/// Per-service retry schedule for the RPC path: bounded attempts with
/// exponential backoff under a total deadline.
///
/// All fields are integral virtual times so configurations stay `Eq` and
/// hashable.  The DSM layer charges these costs to the calling thread's
/// *virtual* clock; the socket layer reuses the same schedule for its
/// wall-clock redial loop (satellite of the fault plane: bounded backoff
/// instead of reconnect-once).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Total attempts per RPC, first try included (≥ 1; 1 disables retry).
    pub max_attempts: u32,
    /// Virtual time charged per timed-out attempt (the loss-detection wait).
    pub rpc_timeout: VTime,
    /// Backoff before the first retry; doubled after every further failure.
    pub base_backoff: VTime,
    /// Ceiling the doubling backoff saturates at.
    pub max_backoff: VTime,
    /// Total virtual-time budget across all attempts of one RPC; once
    /// exceeded the last error is returned instead of retrying further.
    pub deadline: VTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            rpc_timeout: VTime::from_us(500),
            base_backoff: VTime::from_us(100),
            max_backoff: VTime::from_us(3_200),
            deadline: VTime::from_us(50_000),
        }
    }
}

impl RetryPolicy {
    /// Reject schedules that can never make progress or never terminate.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.max_attempts == 0 {
            return Err("retry max_attempts must be at least 1 (1 disables retry)");
        }
        if self.rpc_timeout == VTime::ZERO {
            return Err("retry rpc_timeout must be positive (it is the loss-detection wait)");
        }
        if self.base_backoff > self.max_backoff {
            return Err("retry base_backoff must not exceed max_backoff");
        }
        if self.deadline < self.rpc_timeout {
            return Err("retry deadline must cover at least one rpc_timeout");
        }
        Ok(())
    }

    /// The backoff charged before retry number `retry` (0-based): the base
    /// doubled per retry, saturating at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> VTime {
        let doubled = self
            .base_backoff
            .as_ps()
            .saturating_mul(1u64 << retry.min(32));
        VTime::from_ps(doubled.min(self.max_backoff.as_ps()))
    }
}

/// Kill one named node at a named virtual time (fail-stop as a server).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultKill {
    /// The node that stops serving.
    pub node: u32,
    /// The virtual instant from which calls addressed to it fail.
    pub at: VTime,
}

/// A replayable fault schedule: seeded per-call probabilities (in parts per
/// million) plus the deterministic `drop_first` and `kill` events.
///
/// The canonical string form round-trips through [`FaultSpec::parse`] /
/// `Display`:
///
/// ```text
/// seed=42,drop=20000,dropfirst=2,delay=10000@50us,dup=5000,panic=1000,kill=2@800us
/// ```
///
/// Probabilities are ppm of remote calls (local calls are never faulted);
/// durations take `ps`/`ns`/`us`/`ms`/`s` suffixes.  Omitted keys are zero /
/// absent.  The zero-valued spec injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Seed of the per-call decision hash.
    pub seed: u64,
    /// Probability (ppm) that a request frame is dropped.
    pub drop_ppm: u32,
    /// Deterministically drop the first N remote calls (exact-counter tests).
    pub drop_first: u32,
    /// Probability (ppm) that a reply is delayed by `delay_by`.
    pub delay_ppm: u32,
    /// How late a delayed reply arrives.
    pub delay_by: VTime,
    /// Probability (ppm) that a request frame is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) that the handler is forced to panic.
    pub panic_ppm: u32,
    /// Kill a named node at a named virtual time.
    pub kill: Option<FaultKill>,
}

fn format_duration(t: VTime) -> String {
    let ps = t.as_ps();
    for (unit, div) in [
        ("s", 1_000_000_000_000u64),
        ("ms", 1_000_000_000),
        ("us", 1_000_000),
        ("ns", 1_000),
    ] {
        if ps >= div && ps % div == 0 {
            return format!("{}{unit}", ps / div);
        }
    }
    format!("{ps}ps")
}

fn parse_duration(s: &str) -> Result<VTime, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000_000u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ps") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000_000)
    } else {
        return Err(format!("duration '{s}' needs a ps/ns/us/ms/s suffix"));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration value '{digits}'"))?;
    n.checked_mul(mult)
        .map(VTime::from_ps)
        .ok_or_else(|| format!("duration '{s}' overflows"))
}

impl FaultSpec {
    /// Parse the canonical `key=value,...` spec string (see the type docs).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry '{part}' is not key=value"))?;
            let ppm = |v: &str| -> Result<u32, String> {
                v.parse()
                    .map_err(|_| format!("bad ppm value '{v}' for '{key}'"))
            };
            match key {
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|_| format!("bad seed value '{value}'"))?;
                }
                "drop" => spec.drop_ppm = ppm(value)?,
                "dropfirst" => spec.drop_first = ppm(value)?,
                "dup" => spec.dup_ppm = ppm(value)?,
                "panic" => spec.panic_ppm = ppm(value)?,
                "delay" => {
                    let (p, d) = value
                        .split_once('@')
                        .ok_or_else(|| format!("delay '{value}' is not ppm@duration"))?;
                    spec.delay_ppm = ppm(p)?;
                    spec.delay_by = parse_duration(d)?;
                }
                "kill" => {
                    let (node, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("kill '{value}' is not node@time"))?;
                    spec.kill = Some(FaultKill {
                        node: node
                            .parse()
                            .map_err(|_| format!("bad kill node '{node}'"))?,
                        at: parse_duration(at)?,
                    });
                }
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        Ok(spec)
    }

    /// Reject schedules that cannot be executed.
    pub fn validate(&self, num_nodes: usize) -> Result<(), &'static str> {
        let ppm_sum = self.drop_ppm as u64
            + self.delay_ppm as u64
            + self.dup_ppm as u64
            + self.panic_ppm as u64;
        if ppm_sum > 1_000_000 {
            return Err("fault probabilities sum to more than 1_000_000 ppm");
        }
        if self.delay_ppm > 0 && self.delay_by == VTime::ZERO {
            return Err("delay faults need a positive delay duration");
        }
        if let Some(kill) = self.kill {
            if (kill.node as usize) >= num_nodes {
                return Err("fault kill names a node outside the cluster");
            }
            if num_nodes < 2 {
                return Err("killing a node needs at least one survivor to recover onto");
            }
        }
        Ok(())
    }

    /// True if this spec injects nothing (equivalent to no fault plane).
    pub fn is_noop(&self) -> bool {
        *self == FaultSpec::default() || {
            self.drop_ppm == 0
                && self.drop_first == 0
                && self.delay_ppm == 0
                && self.dup_ppm == 0
                && self.panic_ppm == 0
                && self.kill.is_none()
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if self.drop_ppm > 0 {
            write!(f, ",drop={}", self.drop_ppm)?;
        }
        if self.drop_first > 0 {
            write!(f, ",dropfirst={}", self.drop_first)?;
        }
        if self.delay_ppm > 0 {
            write!(
                f,
                ",delay={}@{}",
                self.delay_ppm,
                format_duration(self.delay_by)
            )?;
        }
        if self.dup_ppm > 0 {
            write!(f, ",dup={}", self.dup_ppm)?;
        }
        if self.panic_ppm > 0 {
            write!(f, ",panic={}", self.panic_ppm)?;
        }
        if let Some(kill) = self.kill {
            write!(f, ",kill={}@{}", kill.node, format_duration(kill.at))?;
        }
        Ok(())
    }
}

/// SplitMix64 finaliser: one well-mixed draw per (seed, call-number) pair.
fn draw(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Transport`] decorator injecting the faults of a [`FaultSpec`] into
/// every *remote* round trip of an inner transport.  See the module docs for
/// the exact meaning of each fault and the determinism contract.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    spec: FaultSpec,
    /// Remote calls attempted so far (the decision-hash counter).
    calls: AtomicU64,
    /// Monotone: set once any caller's clock reaches the kill instant.
    killed: AtomicBool,
}

impl FaultyTransport {
    /// Wrap `inner` with the fault schedule of `spec`.
    pub fn new(inner: Arc<dyn Transport>, spec: FaultSpec) -> Self {
        FaultyTransport {
            inner,
            spec,
            calls: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        }
    }

    /// The schedule this transport replays.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// True if the scheduled kill has fired.
    pub fn kill_fired(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }
}

impl Transport for FaultyTransport {
    fn rpc_split(
        &self,
        cluster: &Cluster,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, VTime), TransportError> {
        if from == to {
            // Local calls never cross the wire; nothing to fault.
            return self
                .inner
                .rpc_split(cluster, clock, from, to, service, payload);
        }
        if let Some(kill) = self.spec.kill {
            if !self.killed.load(Ordering::Acquire) && clock.now() >= kill.at {
                self.killed.store(true, Ordering::Release);
            }
            if self.killed.load(Ordering::Acquire) && to.0 == kill.node {
                return Err(TransportError::NodeDown { peer: to });
            }
        }
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let h = draw(self.spec.seed, n) % 1_000_000;
        let dropped = n < self.spec.drop_first as u64 || h < self.spec.drop_ppm as u64;
        if dropped {
            NodeStats::bump(&cluster.node(from).stats.frames_dropped_injected);
            return Err(TransportError::TimedOut { peer: to });
        }
        let panic_edge = (self.spec.drop_ppm + self.spec.panic_ppm) as u64;
        if h < panic_edge {
            return Err(TransportError::Remote(format!(
                "injected handler panic (service {})",
                service.index()
            )));
        }
        let (data, completion) = self
            .inner
            .rpc_split(cluster, clock, from, to, service, payload)?;
        let dup_edge = panic_edge + self.spec.dup_ppm as u64;
        if h < dup_edge {
            // Duplicate delivery: the handler's effect is idempotent (see
            // module docs), so only the duplicate's wire bytes and server
            // occupancy are charged, via a second modeled round trip.
            let _ = charge_round_trip(
                cluster,
                clock,
                from,
                to,
                payload.len(),
                data.len(),
                VTime::ZERO,
            );
        }
        let delay_edge = dup_edge + self.spec.delay_ppm as u64;
        let completion = if h < delay_edge {
            completion + self.spec.delay_by
        } else {
            completion
        };
        Ok((data, completion))
    }

    fn start(&self, cluster: &Arc<Cluster>) {
        self.inner.start(cluster);
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn wire_stats(&self) -> Option<Vec<WireServiceSnapshot>> {
        self.inner.wire_stats()
    }
}

impl std::fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("inner", &self.inner.name())
            .field("spec", &self.spec.to_string())
            .field("killed", &self.kill_fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RpcReply;
    use crate::node::Node;
    use crate::transport::SimTransport;
    use hyperion_model::myrinet_200;

    fn faulty_cluster(nodes: usize, spec: FaultSpec) -> Arc<Cluster> {
        let inner: Arc<dyn Transport> = Arc::new(SimTransport);
        Cluster::with_transport(
            myrinet_200().machine,
            nodes,
            Arc::new(FaultyTransport::new(inner, spec)),
        )
    }

    fn echo(c: &Arc<Cluster>) -> ServiceId {
        c.register_service(Arc::new(|_n: &Node, _c: NodeId, p: &[u8]| {
            RpcReply::with_data(p.to_vec(), VTime::from_us(1))
        }))
    }

    #[test]
    fn spec_string_round_trips() {
        let text =
            "seed=42,drop=20000,dropfirst=2,delay=10000@50us,dup=5000,panic=1000,kill=2@800us";
        let spec = FaultSpec::parse(text).expect("parse");
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.drop_ppm, 20_000);
        assert_eq!(spec.drop_first, 2);
        assert_eq!(spec.delay_ppm, 10_000);
        assert_eq!(spec.delay_by, VTime::from_us(50));
        assert_eq!(spec.dup_ppm, 5_000);
        assert_eq!(spec.panic_ppm, 1_000);
        assert_eq!(
            spec.kill,
            Some(FaultKill {
                node: 2,
                at: VTime::from_us(800)
            })
        );
        assert_eq!(spec.to_string(), text);
        assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec);
        assert!(spec.validate(4).is_ok());
        assert!(!spec.is_noop());
        assert!(FaultSpec::parse("seed=7").unwrap().is_noop());
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        assert!(FaultSpec::parse("drop").is_err());
        assert!(FaultSpec::parse("drop=many").is_err());
        assert!(FaultSpec::parse("delay=5").is_err());
        assert!(FaultSpec::parse("kill=1").is_err());
        assert!(FaultSpec::parse("warp=9").is_err());
        assert!(FaultSpec::parse("delay=5@4fortnights").is_err());
        let over = FaultSpec {
            drop_ppm: 900_000,
            dup_ppm: 200_000,
            ..FaultSpec::default()
        };
        assert!(over.validate(2).is_err());
        let lonely_kill = FaultSpec::parse("kill=0@1us").unwrap();
        assert!(lonely_kill.validate(1).is_err());
        let outside_kill = FaultSpec::parse("kill=9@1us").unwrap();
        assert!(outside_kill.validate(4).is_err());
        let delayless = FaultSpec {
            delay_ppm: 10,
            ..FaultSpec::default()
        };
        assert!(delayless.validate(2).is_err());
    }

    #[test]
    fn retry_policy_validates_and_backs_off_geometrically() {
        let policy = RetryPolicy::default();
        assert!(policy.validate().is_ok());
        assert_eq!(policy.backoff(0), policy.base_backoff);
        assert_eq!(policy.backoff(1), policy.base_backoff + policy.base_backoff);
        assert_eq!(policy.backoff(30), policy.max_backoff);

        assert!(RetryPolicy {
            max_attempts: 0,
            ..policy
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            rpc_timeout: VTime::ZERO,
            ..policy
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            base_backoff: VTime::from_us(10),
            max_backoff: VTime::from_us(1),
            ..policy
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            deadline: VTime::ZERO,
            ..policy
        }
        .validate()
        .is_err());
    }

    #[test]
    fn drop_first_drops_exactly_the_first_remote_calls() {
        let spec = FaultSpec {
            drop_first: 2,
            ..FaultSpec::default()
        };
        let c = faulty_cluster(2, spec);
        let svc = echo(&c);
        let mut clock = ThreadClock::new();
        for _ in 0..2 {
            let err = c
                .rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1])
                .unwrap_err();
            assert!(matches!(err, TransportError::TimedOut { peer } if peer == NodeId(1)));
        }
        // Third call goes through; local calls were never counted.
        assert!(c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1]).is_ok());
        assert_eq!(c.node_stats(NodeId(0)).frames_dropped_injected, 2);
        assert!(c.rpc(&mut clock, NodeId(0), NodeId(0), svc, &[1]).is_ok());
        assert_eq!(c.node_stats(NodeId(0)).frames_dropped_injected, 2);
    }

    #[test]
    fn kill_fails_calls_to_the_named_node_from_the_named_time() {
        let spec = FaultSpec::parse("kill=1@1ms").unwrap();
        let c = faulty_cluster(3, spec);
        let svc = echo(&c);
        let mut clock = ThreadClock::new();
        // Before the kill instant the node serves normally.
        assert!(c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1]).is_ok());
        clock.merge(VTime::from_us(1_000));
        let err = c
            .rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1])
            .unwrap_err();
        assert!(matches!(err, TransportError::NodeDown { peer } if peer == NodeId(1)));
        assert!(!err.is_retryable());
        // Survivors keep talking to each other, and the killed node can
        // still issue its own requests (fail-stop as a *server*).
        assert!(c.rpc(&mut clock, NodeId(0), NodeId(2), svc, &[1]).is_ok());
        assert!(c.rpc(&mut clock, NodeId(1), NodeId(2), svc, &[1]).is_ok());
    }

    #[test]
    fn seeded_drops_are_replayable() {
        let spec = FaultSpec::parse("seed=99,drop=300000").unwrap();
        let run = || {
            let c = faulty_cluster(2, spec);
            let svc = echo(&c);
            let mut clock = ThreadClock::new();
            (0..64)
                .map(|_| c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[7]).is_ok())
                .collect::<Vec<bool>>()
        };
        let first = run();
        assert_eq!(first, run());
        assert!(first.iter().any(|ok| *ok));
        assert!(first.iter().any(|ok| !*ok));
    }

    #[test]
    fn delay_pushes_back_completion_and_dup_charges_twice() {
        let delayed = FaultSpec::parse("delay=1000000@2ms").unwrap();
        let c = faulty_cluster(2, delayed);
        let svc = echo(&c);
        let mut clock = ThreadClock::new();
        let (_, completion) = c
            .rpc_split(&mut clock, NodeId(0), NodeId(1), svc, &[1])
            .expect("delayed rpc still succeeds");
        assert!(completion >= clock.now() + VTime::from_us(2_000));

        let dupped = FaultSpec::parse("dup=1000000").unwrap();
        let c = faulty_cluster(2, dupped);
        let svc = echo(&c);
        let mut clock = ThreadClock::new();
        assert!(c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1]).is_ok());
        // The duplicate frame shows up in the RPC counters.
        assert_eq!(c.node_stats(NodeId(0)).rpc_requests, 2);
        assert_eq!(c.node_stats(NodeId(1)).rpc_served, 2);
    }

    #[test]
    fn injected_panics_look_like_caught_handler_panics() {
        let spec = FaultSpec::parse("panic=1000000").unwrap();
        let c = faulty_cluster(2, spec);
        let svc = echo(&c);
        let mut clock = ThreadClock::new();
        let err = c
            .rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1])
            .unwrap_err();
        assert!(err.is_retryable());
        match err {
            TransportError::Remote(msg) => assert!(msg.contains("injected handler panic")),
            other => panic!("expected Remote, got {other}"),
        }
    }
}
