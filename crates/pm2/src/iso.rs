//! Iso-address global memory allocation.
//!
//! PM2 allocates shared data at the *same virtual address on every node*
//! ("iso-address" allocation), which lets pages be replicated and migrated
//! while keeping raw pointers valid (§3.1 of the paper).  The reproduction
//! models the shared address space as a flat array of 8-byte **slots**
//! grouped into **pages**; a [`GlobalAddr`] is a slot index valid on every
//! node, and each page has a fixed *home node* chosen at allocation time.
//!
//! Objects are packed into pages per home node, so several small objects
//! share a page — this is what produces the pre-fetching effect the paper
//! mentions ("`loadIntoCache` actually retrieves the whole page on which the
//! object is located").

use parking_lot::Mutex;

use crate::node::NodeId;

/// Number of 8-byte slots per page.
pub const SLOTS_PER_PAGE: usize = 512;
/// Size of one slot in bytes.  Every Java field / array element is modelled
/// as one slot, which keeps field accesses word-atomic.
pub const SLOT_BYTES: usize = 8;
/// Page size in bytes (matches the 4 KiB pages of the Linux 2.2 clusters).
pub const PAGE_BYTES: usize = SLOTS_PER_PAGE * SLOT_BYTES;

/// Identifier of a page of the global address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Page index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A global address: an 8-byte-slot index into the single shared address
/// space seen identically by every node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalAddr(pub u64);

impl GlobalAddr {
    /// The (invalid) null address.  Slot 0 of page 0 is reserved so that a
    /// zeroed slot can never be confused with a valid reference.
    pub const NULL: GlobalAddr = GlobalAddr(0);

    /// Page containing this slot.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / SLOTS_PER_PAGE as u64)
    }

    /// Slot offset within the page.
    #[inline]
    pub fn slot(self) -> usize {
        (self.0 % SLOTS_PER_PAGE as u64) as usize
    }

    /// Address `n` slots after this one.
    #[inline]
    pub fn offset(self, n: u64) -> GlobalAddr {
        GlobalAddr(self.0 + n)
    }

    /// True for the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0 * SLOT_BYTES as u64)
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct OpenPage {
    page: Option<PageId>,
    next_slot: usize,
}

struct AllocState {
    /// Home node of every allocated page, indexed by page id.
    page_homes: Vec<NodeId>,
    /// Per-home-node partially filled page for small-object packing.
    open_pages: Vec<OpenPage>,
    /// Total slots handed out (for reporting).
    slots_allocated: u64,
}

/// The iso-address allocator: assigns global addresses and home nodes.
///
/// Allocation is a setup-time activity in all of the paper's benchmarks, so
/// the allocator favours simplicity over allocation throughput; it is fully
/// thread-safe nonetheless.
pub struct IsoAllocator {
    state: Mutex<AllocState>,
    num_nodes: usize,
}

impl IsoAllocator {
    /// Create an allocator for a cluster of `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "allocator needs at least one node");
        // Page 0 exists but slot 0 is reserved for NULL; it belongs to node 0
        // and only node 0 may pack further small objects into it.
        let mut open_pages = vec![
            OpenPage {
                page: None,
                next_slot: 0,
            };
            num_nodes
        ];
        open_pages[0] = OpenPage {
            page: Some(PageId(0)),
            next_slot: 1,
        };
        IsoAllocator {
            state: Mutex::new(AllocState {
                page_homes: vec![NodeId(0)],
                open_pages,
                slots_allocated: 1,
            }),
            num_nodes,
        }
    }

    /// Number of nodes this allocator distributes homes over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Allocate `slots` contiguous slots homed on `home`.
    ///
    /// Small requests are packed into the home's currently open page (so
    /// objects allocated together share pages); requests larger than the
    /// remaining space in the open page start on a fresh page and may span
    /// several contiguous pages, all homed on `home`.
    ///
    /// # Panics
    /// Panics if `slots` is zero or `home` is out of range.
    pub fn alloc(&self, slots: usize, home: NodeId) -> GlobalAddr {
        assert!(slots > 0, "cannot allocate zero slots");
        assert!(
            home.index() < self.num_nodes,
            "home {home} out of range for {} nodes",
            self.num_nodes
        );
        let mut st = self.state.lock();
        st.slots_allocated += slots as u64;

        let open = st.open_pages[home.index()];
        if let Some(page) = open.page {
            if slots <= SLOTS_PER_PAGE - open.next_slot {
                // Fits in the open page.
                let addr = GlobalAddr(page.0 * SLOTS_PER_PAGE as u64 + open.next_slot as u64);
                st.open_pages[home.index()].next_slot += slots;
                return addr;
            }
        }

        // Start on fresh pages.
        let pages_needed = slots.div_ceil(SLOTS_PER_PAGE);
        let first_page = st.page_homes.len() as u64;
        for _ in 0..pages_needed {
            st.page_homes.push(home);
        }
        let used_in_last = slots - (pages_needed - 1) * SLOTS_PER_PAGE;
        st.open_pages[home.index()] = if used_in_last < SLOTS_PER_PAGE {
            OpenPage {
                page: Some(PageId(first_page + pages_needed as u64 - 1)),
                next_slot: used_in_last,
            }
        } else {
            OpenPage {
                page: None,
                next_slot: 0,
            }
        };
        GlobalAddr(first_page * SLOTS_PER_PAGE as u64)
    }

    /// Allocate `slots` slots on a fresh, exclusively owned page run (no
    /// packing with other objects), homed on `home`.  Used for data whose
    /// false-sharing behaviour should be controlled explicitly.
    pub fn alloc_page_aligned(&self, slots: usize, home: NodeId) -> GlobalAddr {
        assert!(slots > 0, "cannot allocate zero slots");
        assert!(home.index() < self.num_nodes, "home out of range");
        let mut st = self.state.lock();
        st.slots_allocated += slots as u64;
        let pages_needed = slots.div_ceil(SLOTS_PER_PAGE);
        let first_page = st.page_homes.len() as u64;
        for _ in 0..pages_needed {
            st.page_homes.push(home);
        }
        // Page-aligned allocations never leave an open page behind: the
        // remainder of the last page stays unused to avoid false sharing.
        GlobalAddr(first_page * SLOTS_PER_PAGE as u64)
    }

    /// Home node of a page.
    ///
    /// # Panics
    /// Panics if the page has not been allocated.
    pub fn home_of(&self, page: PageId) -> NodeId {
        let st = self.state.lock();
        *st.page_homes
            .get(page.index())
            .unwrap_or_else(|| panic!("page {page:?} was never allocated"))
    }

    /// Home node of the page containing `addr`.
    pub fn home_of_addr(&self, addr: GlobalAddr) -> NodeId {
        self.home_of(addr.page())
    }

    /// Number of pages allocated so far (including the reserved page 0).
    pub fn num_pages(&self) -> usize {
        self.state.lock().page_homes.len()
    }

    /// Total slots handed out so far.
    pub fn slots_allocated(&self) -> u64 {
        self.state.lock().slots_allocated
    }

    /// Snapshot of every page's home node, indexed by page id.
    pub fn page_homes(&self) -> Vec<NodeId> {
        self.state.lock().page_homes.clone()
    }
}

impl std::fmt::Debug for IsoAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IsoAllocator")
            .field("num_nodes", &self.num_nodes)
            .field("num_pages", &self.num_pages())
            .field("slots_allocated", &self.slots_allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_page_and_slot_decomposition() {
        let a = GlobalAddr(SLOTS_PER_PAGE as u64 * 3 + 17);
        assert_eq!(a.page(), PageId(3));
        assert_eq!(a.slot(), 17);
        assert_eq!(a.offset(5).slot(), 22);
        assert!(GlobalAddr::NULL.is_null());
        assert!(!a.is_null());
        assert_eq!(PageId(3).index(), 3);
    }

    #[test]
    fn small_allocations_pack_into_one_page() {
        let alloc = IsoAllocator::new(2);
        let a = alloc.alloc(4, NodeId(0));
        let b = alloc.alloc(4, NodeId(0));
        assert_eq!(a.page(), b.page());
        assert_eq!(b.0, a.0 + 4);
        assert_eq!(alloc.home_of(a.page()), NodeId(0));
        // A different home packs onto a different page.
        let c = alloc.alloc(4, NodeId(1));
        assert_ne!(c.page(), a.page());
        assert_eq!(alloc.home_of(c.page()), NodeId(1));
    }

    #[test]
    fn large_allocation_spans_contiguous_pages() {
        let alloc = IsoAllocator::new(1);
        let slots = SLOTS_PER_PAGE * 2 + 10;
        let a = alloc.alloc(slots, NodeId(0));
        assert_eq!(a.slot(), 0, "large allocations start page-aligned");
        let last = a.offset(slots as u64 - 1);
        assert_eq!(last.page().0, a.page().0 + 2);
        for p in a.page().0..=last.page().0 {
            assert_eq!(alloc.home_of(PageId(p)), NodeId(0));
        }
        // The tail of the last page is reusable by later small allocations.
        let b = alloc.alloc(4, NodeId(0));
        assert_eq!(b.page(), last.page());
    }

    #[test]
    fn exact_page_sized_allocation_does_not_leave_open_page() {
        let alloc = IsoAllocator::new(1);
        let a = alloc.alloc(SLOTS_PER_PAGE, NodeId(0));
        assert_eq!(a.slot(), 0);
        let b = alloc.alloc(1, NodeId(0));
        assert_eq!(b.page().0, a.page().0 + 1);
    }

    #[test]
    fn page_aligned_allocation_is_never_shared() {
        let alloc = IsoAllocator::new(1);
        let a = alloc.alloc_page_aligned(10, NodeId(0));
        let b = alloc.alloc(4, NodeId(0));
        let c = alloc.alloc_page_aligned(SLOTS_PER_PAGE + 1, NodeId(0));
        assert_eq!(a.slot(), 0);
        assert_ne!(b.page(), a.page());
        assert_eq!(c.slot(), 0);
        assert_ne!(c.page(), a.page());
        assert_ne!(c.page(), b.page());
    }

    #[test]
    fn null_slot_is_never_handed_out() {
        let alloc = IsoAllocator::new(3);
        for i in 0..100 {
            let home = NodeId(i % 3);
            let a = alloc.alloc(3, home);
            assert!(!a.is_null());
        }
    }

    #[test]
    fn slots_allocated_accumulates() {
        let alloc = IsoAllocator::new(1);
        let before = alloc.slots_allocated();
        alloc.alloc(10, NodeId(0));
        alloc.alloc(20, NodeId(0));
        assert_eq!(alloc.slots_allocated(), before + 30);
        assert!(alloc.num_pages() >= 1);
        assert_eq!(alloc.page_homes().len(), alloc.num_pages());
    }

    #[test]
    #[should_panic(expected = "zero slots")]
    fn zero_slot_allocation_panics() {
        IsoAllocator::new(1).alloc(0, NodeId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_home_panics() {
        IsoAllocator::new(1).alloc(1, NodeId(5));
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn home_of_unallocated_page_panics() {
        IsoAllocator::new(1).home_of(PageId(999));
    }

    #[test]
    fn concurrent_allocations_never_overlap() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let alloc = Arc::new(IsoAllocator::new(4));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    let mut ranges = Vec::new();
                    for i in 0..200 {
                        let slots = 1 + (i % 7);
                        let a = alloc.alloc(slots, NodeId(t));
                        ranges.push((a.0, slots as u64));
                    }
                    ranges
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for (start, len) in h.join().unwrap() {
                for s in start..start + len {
                    assert!(seen.insert(s), "slot {s} allocated twice");
                }
            }
        }
    }
}
