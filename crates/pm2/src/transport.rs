//! The pluggable transport layer: how an RPC round trip actually happens.
//!
//! [`Cluster::rpc`] and [`Cluster::rpc_split`] delegate the *mechanics* of a
//! round trip — getting the request to the target node, executing the
//! registered handler there, getting the reply back — to a [`Transport`].
//! Two implementations exist:
//!
//! * [`SimTransport`] (the default): the handler runs inline on the calling
//!   OS thread, exactly as the original single-process simulator did.  No
//!   real I/O takes place.
//! * [`crate::socket::SocketTransport`]: each node runs a real
//!   Unix-domain/TCP(localhost) socket server; the request and reply cross
//!   the wire as length-prefixed frames and the handler runs on the target
//!   node's server thread.
//!
//! Both backends charge the **same modeled virtual-time cost** through
//! the crate-private `charge_round_trip`, and all statistics visible to the
//! protocol layer
//! ([`hyperion_model::NodeStats`], the per-node [`hyperion_model::ServerClock`])
//! are updated on the caller side only.  A run therefore produces identical
//! digests and counters whichever backend carries the bytes — the socket
//! backend merely *also* measures wall-clock round trips, which is what the
//! `bench --transport socket` modeled-vs-measured report compares.

use std::sync::Arc;

use hyperion_model::{NodeStats, ThreadClock, VTime, WireServiceSnapshot};

use crate::cluster::Cluster;
use crate::comm::{ServiceId, MSG_HEADER_BYTES};
use crate::node::NodeId;

/// Which transport implementation a run should use.
///
/// This is the value configuration layers carry around (it is `Copy` and
/// comparable); [`Cluster::for_backend`](crate::Cluster::for_backend) turns
/// it into an actual [`Transport`] instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TransportBackend {
    /// In-process cost-model simulation (the default; no real I/O).
    #[default]
    Sim,
    /// Per-node Unix-domain-socket servers (this machine only).
    UnixSocket,
    /// Per-node TCP servers bound to `127.0.0.1`.
    Tcp,
}

impl TransportBackend {
    /// Stable lower-case name (CLI values, report labels).
    pub fn name(self) -> &'static str {
        match self {
            TransportBackend::Sim => "sim",
            TransportBackend::UnixSocket => "unix",
            TransportBackend::Tcp => "tcp",
        }
    }

    /// Parse a CLI spelling; `socket` is accepted as an alias for `unix`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(TransportBackend::Sim),
            "unix" | "uds" | "socket" => Some(TransportBackend::UnixSocket),
            "tcp" => Some(TransportBackend::Tcp),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an RPC round trip failed.
///
/// The historical behaviour — `panic!("unknown RPC service …")` deep inside
/// `rpc_split` — is unacceptable once requests arrive from a socket peer: a
/// malformed frame must not abort the node.  Every failure mode is a typed
/// variant instead, and the per-connection server loop answers with an error
/// frame rather than unwinding.
#[derive(Debug)]
pub enum TransportError {
    /// The requested service index is not in the cluster's service table.
    UnknownService {
        /// The offending service-table index.
        service: usize,
        /// Number of services registered when the request was handled.
        registered: usize,
    },
    /// A frame could not be decoded (truncated, bad kind tag, bad lengths).
    MalformedFrame(String),
    /// Socket-level I/O failure that persisted through the bounded redial
    /// schedule the socket backend runs.
    Io {
        /// The node whose server could not be reached.
        peer: NodeId,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The remote server reported a failure while executing the handler
    /// (for in-process servers: the handler panicked and was caught).
    Remote(String),
    /// No reply arrived within the caller's RPC timeout — the request or
    /// reply frame was lost in flight (the fault injector's `drop`).
    TimedOut {
        /// The node that never answered.
        peer: NodeId,
    },
    /// The peer has failed fail-stop: it no longer serves RPCs at all.
    /// Non-retryable — the DSM layer reacts by recovering the pages the
    /// dead node homed, not by re-sending the same frame.
    NodeDown {
        /// The failed node.
        peer: NodeId,
    },
    /// The peer answered with `ERR_SHUTDOWN`: its server is alive but
    /// draining for an orderly exit.  Distinguishable from peer death —
    /// callers must not start failure recovery over it.
    Shutdown(String),
}

impl TransportError {
    /// True for transient failures worth re-sending the same frame for
    /// (lost frames, broken sockets, handler panics).  `NodeDown`,
    /// `Shutdown`, and caller bugs (`UnknownService`, `MalformedFrame`)
    /// are not retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TransportError::Io { .. } | TransportError::TimedOut { .. } | TransportError::Remote(_)
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownService {
                service,
                registered,
            } => write!(f, "unknown RPC service {service} ({registered} registered)"),
            TransportError::MalformedFrame(msg) => write!(f, "malformed frame: {msg}"),
            TransportError::Io { peer, error } => {
                write!(f, "I/O error talking to {peer}: {error}")
            }
            TransportError::Remote(msg) => write!(f, "remote handler failure: {msg}"),
            TransportError::TimedOut { peer } => {
                write!(f, "no reply from {peer} within the RPC timeout")
            }
            TransportError::NodeDown { peer } => write!(f, "node {peer} is down"),
            TransportError::Shutdown(msg) => {
                write!(f, "peer is shutting down: {msg}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A transport: the mechanism that executes one RPC round trip.
///
/// Implementations must (a) run the registered handler against the *target
/// node's* state exactly once per successful call and (b) charge the
/// caller's clock the modeled round-trip cost via `charge_round_trip`, so
/// that every backend yields the same virtual-time results and node
/// statistics.
pub trait Transport: Send + Sync {
    /// Execute one round trip in split-transaction form: charge only the
    /// requester-side issue costs to `clock` and return the reply payload
    /// together with the virtual instant the reply arrives back.
    ///
    /// See [`Cluster::rpc_split`] for the full timing contract.
    fn rpc_split(
        &self,
        cluster: &Cluster,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, VTime), TransportError>;

    /// Called once by [`Cluster::with_transport`](crate::Cluster::with_transport)
    /// after the cluster is fully constructed: start any server machinery.
    /// Backends that need a handle back to the cluster should keep a
    /// [`std::sync::Weak`] — the cluster owns the transport, not vice versa.
    fn start(&self, _cluster: &Arc<Cluster>) {}

    /// Stop servers and release resources.  Must be idempotent; called from
    /// `Drop for Cluster`.
    fn shutdown(&self) {}

    /// Backend name for diagnostics and report labels.
    fn name(&self) -> &'static str;

    /// Per-service wire counters, if this backend performs real I/O.
    fn wire_stats(&self) -> Option<Vec<WireServiceSnapshot>> {
        None
    }
}

/// The outcome of [`charge_round_trip`]: when the transaction completes in
/// virtual time, and how long the whole modeled round trip was (completion
/// minus the caller's clock at entry — the span a blocking caller would
/// stall for).
pub(crate) struct RoundTrip {
    pub completion: VTime,
    pub modeled: VTime,
}

/// Charge the modeled cost of one RPC round trip to the caller's clock and
/// the two nodes' statistics, and serialise the request through the target
/// node's service clock.
///
/// This is the single place the paper's RPC cost model lives; both the
/// simulated and the socket transport call it with identical arguments
/// (payload length, reply length, handler-reported service time), which is
/// what keeps the two backends' virtual-time results identical by
/// construction.
pub(crate) fn charge_round_trip(
    cluster: &Cluster,
    clock: &mut ThreadClock,
    from: NodeId,
    to: NodeId,
    request_len: usize,
    reply_len: usize,
    service_time: VTime,
) -> RoundTrip {
    let machine = cluster.machine();
    let cpu = &machine.cpu;
    let net = &machine.net;
    let dsm = &machine.dsm;
    let from_node = cluster.node(from);
    let to_node = cluster.node(to);

    NodeStats::bump(&from_node.stats.rpc_requests);
    NodeStats::bump(&to_node.stats.rpc_served);

    let request_cpu = cpu.cycles(dsm.protocol_request_cycles);
    let server_cpu = cpu.cycles(dsm.protocol_server_cycles);
    let start = clock.now();

    if from == to {
        // Local invocation: protocol software only, nothing to overlap.
        clock.advance(request_cpu + server_cpu + service_time);
        return RoundTrip {
            completion: clock.now(),
            modeled: clock.now() - start,
        };
    }

    let req_bytes = MSG_HEADER_BYTES + request_len as u64;
    let reply_bytes = MSG_HEADER_BYTES + reply_len as u64;

    NodeStats::bump_by(&from_node.stats.bytes_sent, req_bytes);
    NodeStats::bump_by(&to_node.stats.bytes_received, req_bytes);
    NodeStats::bump_by(&to_node.stats.bytes_sent, reply_bytes);
    NodeStats::bump_by(&from_node.stats.bytes_received, reply_bytes);

    // 1. + 2. request leaves the caller and crosses the wire.
    clock.advance(request_cpu + net.send_overhead);
    let arrival = clock.now() + net.latency + net.transfer(req_bytes);

    // 3. service at the home node (serialised).
    let done = to_node.server.serve(arrival, server_cpu + service_time);

    // 4. + 5. reply crosses the wire and is absorbed by the caller.
    let completion = done + net.latency + net.transfer(reply_bytes) + net.recv_overhead;

    RoundTrip {
        completion,
        modeled: completion - start,
    }
}

/// The default in-process transport: the handler runs synchronously on the
/// calling OS thread against the target node's state, and only virtual time
/// is charged.  This is byte-for-byte the behaviour `Cluster::rpc_split` had
/// before the transport was made pluggable.
#[derive(Debug, Default)]
pub struct SimTransport;

impl Transport for SimTransport {
    fn rpc_split(
        &self,
        cluster: &Cluster,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, VTime), TransportError> {
        let handler = cluster
            .handler(service)
            .ok_or_else(|| TransportError::UnknownService {
                service: service.0,
                registered: cluster.num_services(),
            })?;
        // The handler runs on the target node's state regardless of where
        // the calling OS thread happens to be executing.
        let reply = handler.handle(cluster.node(to), from, payload);
        let trip = charge_round_trip(
            cluster,
            clock,
            from,
            to,
            payload.len(),
            reply.data.len(),
            reply.service,
        );
        Ok((reply.data, trip.completion))
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_and_parsing_round_trip() {
        for b in [
            TransportBackend::Sim,
            TransportBackend::UnixSocket,
            TransportBackend::Tcp,
        ] {
            assert_eq!(TransportBackend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(
            TransportBackend::parse("socket"),
            Some(TransportBackend::UnixSocket)
        );
        assert_eq!(TransportBackend::parse("carrier-pigeon"), None);
        assert_eq!(TransportBackend::default(), TransportBackend::Sim);
    }

    #[test]
    fn transport_errors_render_their_context() {
        let e = TransportError::UnknownService {
            service: 42,
            registered: 2,
        };
        assert!(format!("{e}").contains("unknown RPC service 42"));
        assert!(format!("{e}").contains("2 registered"));

        let e = TransportError::MalformedFrame("short header".into());
        assert!(format!("{e}").contains("short header"));

        let e = TransportError::Io {
            peer: NodeId(3),
            error: std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "nope"),
        };
        assert!(format!("{e}").contains("node3"));
        assert!(std::error::Error::source(&e).is_some());

        let e = TransportError::Remote("handler panicked".into());
        assert!(format!("{e}").contains("handler panicked"));
        assert!(std::error::Error::source(&e).is_none());

        let e = TransportError::TimedOut { peer: NodeId(5) };
        assert!(format!("{e}").contains("node5"));
        assert!(e.is_retryable());

        let e = TransportError::NodeDown { peer: NodeId(7) };
        assert!(format!("{e}").contains("node7"));
        assert!(!e.is_retryable());

        let e = TransportError::Shutdown("draining".into());
        assert!(format!("{e}").contains("draining"));
        assert!(!e.is_retryable());
    }
}
