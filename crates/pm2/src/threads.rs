//! Thread identity and per-node thread registry (the "threads subsystem").
//!
//! In the original system Java threads are mapped onto PM2's Marcel
//! user-level threads.  The reproduction maps them onto native OS threads
//! (spawned by the `hyperion` crate's runtime); this module only keeps the
//! bookkeeping: which logical thread lives on which node, so the load
//! balancer and the statistics can reason about placement, and so the
//! thread-migration extension can re-home a thread.

use parking_lot::Mutex;

use crate::node::NodeId;

/// Identifier of a Hyperion (Java) thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u64);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct ThreadInfo {
    node: NodeId,
    alive: bool,
}

/// Registry of every Hyperion thread created during a run.
#[derive(Debug, Default)]
pub struct ThreadRegistry {
    threads: Mutex<Vec<ThreadInfo>>,
}

impl ThreadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new thread placed on `node`; returns its id.
    pub fn register(&self, node: NodeId) -> ThreadId {
        let mut threads = self.threads.lock();
        threads.push(ThreadInfo { node, alive: true });
        ThreadId(threads.len() as u64 - 1)
    }

    /// Node a thread currently lives on.
    ///
    /// # Panics
    /// Panics if the thread id is unknown.
    pub fn node_of(&self, thread: ThreadId) -> NodeId {
        self.threads.lock()[thread.0 as usize].node
    }

    /// Move a thread to a different node (the PM2 thread-migration
    /// extension).  Returns the previous node.
    pub fn migrate(&self, thread: ThreadId, to: NodeId) -> NodeId {
        let mut threads = self.threads.lock();
        let info = &mut threads[thread.0 as usize];
        std::mem::replace(&mut info.node, to)
    }

    /// Mark a thread as terminated.
    pub fn mark_terminated(&self, thread: ThreadId) {
        self.threads.lock()[thread.0 as usize].alive = false;
    }

    /// Whether a thread is still alive.
    pub fn is_alive(&self, thread: ThreadId) -> bool {
        self.threads.lock()[thread.0 as usize].alive
    }

    /// Total number of threads ever registered.
    pub fn total(&self) -> usize {
        self.threads.lock().len()
    }

    /// Number of live threads currently placed on `node`.
    pub fn live_on(&self, node: NodeId) -> usize {
        self.threads
            .lock()
            .iter()
            .filter(|t| t.alive && t.node == node)
            .count()
    }

    /// Per-node live-thread counts for a cluster of `num_nodes` nodes.
    pub fn placement(&self, num_nodes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_nodes];
        for t in self.threads.lock().iter() {
            if t.alive && t.node.index() < num_nodes {
                counts[t.node.index()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_query() {
        let reg = ThreadRegistry::new();
        let t0 = reg.register(NodeId(0));
        let t1 = reg.register(NodeId(1));
        assert_eq!(t0, ThreadId(0));
        assert_eq!(t1, ThreadId(1));
        assert_eq!(reg.node_of(t1), NodeId(1));
        assert_eq!(reg.total(), 2);
        assert!(reg.is_alive(t0));
        assert_eq!(format!("{t1}"), "thread1");
    }

    #[test]
    fn migration_re_homes_a_thread() {
        let reg = ThreadRegistry::new();
        let t = reg.register(NodeId(0));
        let prev = reg.migrate(t, NodeId(2));
        assert_eq!(prev, NodeId(0));
        assert_eq!(reg.node_of(t), NodeId(2));
        assert_eq!(reg.live_on(NodeId(0)), 0);
        assert_eq!(reg.live_on(NodeId(2)), 1);
    }

    #[test]
    fn termination_and_placement_counts() {
        let reg = ThreadRegistry::new();
        let a = reg.register(NodeId(0));
        let _b = reg.register(NodeId(1));
        let _c = reg.register(NodeId(1));
        assert_eq!(reg.placement(3), vec![1, 2, 0]);
        reg.mark_terminated(a);
        assert!(!reg.is_alive(a));
        assert_eq!(reg.placement(3), vec![0, 2, 0]);
        assert_eq!(reg.live_on(NodeId(1)), 2);
    }
}
