//! The cluster: a fixed set of homogeneous nodes plus the RPC service table.

use std::sync::Arc;

use hyperion_model::{MachineModel, StatsSnapshot, ThreadClock, VTime};
use parking_lot::RwLock;

use crate::comm::{RpcHandler, ServiceId, MSG_HEADER_BYTES};
use crate::node::{Node, NodeId};
use crate::socket::SocketTransport;
use crate::transport::{SimTransport, Transport, TransportBackend, TransportError};

/// A cluster executing a single distributed JVM image.
///
/// The cluster owns the machine model (both of the paper's clusters are
/// homogeneous), one [`Node`] per cluster node, the table of registered RPC
/// services, and the [`Transport`] that carries RPC round trips.  By default
/// the transport is the in-process [`SimTransport`]; see
/// [`Cluster::with_transport`] and [`Cluster::for_backend`] for running the
/// same cluster over real sockets.
pub struct Cluster {
    machine: MachineModel,
    nodes: Vec<Arc<Node>>,
    services: RwLock<Vec<Arc<dyn RpcHandler>>>,
    transport: Arc<dyn Transport>,
}

impl Cluster {
    /// Build a cluster of `num_nodes` identical nodes on the default
    /// in-process [`SimTransport`].
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn new(machine: MachineModel, num_nodes: usize) -> Arc<Self> {
        Self::with_transport(machine, num_nodes, Arc::new(SimTransport))
    }

    /// Build a cluster of `num_nodes` identical nodes over an explicit
    /// [`Transport`].  The transport's [`Transport::start`] hook runs once
    /// the cluster is fully constructed, and [`Transport::shutdown`] runs
    /// when the cluster is dropped.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn with_transport(
        machine: MachineModel,
        num_nodes: usize,
        transport: Arc<dyn Transport>,
    ) -> Arc<Self> {
        assert!(num_nodes > 0, "a cluster needs at least one node");
        let nodes = (0..num_nodes)
            .map(|i| Arc::new(Node::new(NodeId(i as u32))))
            .collect();
        let cluster = Arc::new(Cluster {
            machine,
            nodes,
            services: RwLock::new(Vec::new()),
            transport,
        });
        cluster.transport.start(&cluster);
        cluster
    }

    /// Build a cluster for a [`TransportBackend`] selector: the simulated
    /// transport, or per-node Unix-domain/TCP(localhost) socket servers.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero, or if a socket backend cannot bind its
    /// per-node servers.
    pub fn for_backend(
        machine: MachineModel,
        num_nodes: usize,
        backend: TransportBackend,
    ) -> Arc<Self> {
        match backend {
            TransportBackend::Sim => Self::new(machine, num_nodes),
            TransportBackend::UnixSocket | TransportBackend::Tcp => Self::with_transport(
                machine,
                num_nodes,
                Arc::new(SocketTransport::for_backend(backend)),
            ),
        }
    }

    /// Like [`Cluster::for_backend`], with the chosen transport wrapped in a
    /// [`FaultyTransport`](crate::fault::FaultyTransport) replaying `fault`.
    /// A `None` (or no-op) spec skips the wrapper entirely, so the fault-free
    /// path stays byte-identical to [`Cluster::for_backend`].
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero, or if a socket backend cannot bind its
    /// per-node servers.
    pub fn for_backend_with_faults(
        machine: MachineModel,
        num_nodes: usize,
        backend: TransportBackend,
        fault: Option<crate::fault::FaultSpec>,
    ) -> Arc<Self> {
        let spec = match fault {
            Some(spec) if !spec.is_noop() => spec,
            _ => return Self::for_backend(machine, num_nodes, backend),
        };
        let inner: Arc<dyn Transport> = match backend {
            TransportBackend::Sim => Arc::new(SimTransport),
            TransportBackend::UnixSocket | TransportBackend::Tcp => {
                Arc::new(SocketTransport::for_backend(backend))
            }
        };
        Self::with_transport(
            machine,
            num_nodes,
            Arc::new(crate::fault::FaultyTransport::new(inner, spec)),
        )
    }

    /// The machine model shared by every node.
    #[inline]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The transport carrying this cluster's RPC round trips.
    #[inline]
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Number of nodes in this cluster.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate over all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().map(|n| n.as_ref())
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32).map(NodeId).collect()
    }

    /// Register an RPC service; the returned [`ServiceId`] is what callers
    /// pass to [`Cluster::rpc`].
    pub fn register_service(&self, handler: Arc<dyn RpcHandler>) -> ServiceId {
        let mut services = self.services.write();
        services.push(handler);
        ServiceId(services.len() - 1)
    }

    /// Number of registered services.
    pub fn num_services(&self) -> usize {
        self.services.read().len()
    }

    /// Look up a registered handler (used by transports to dispatch).
    pub(crate) fn handler(&self, service: ServiceId) -> Option<Arc<dyn RpcHandler>> {
        self.services.read().get(service.0).map(Arc::clone)
    }

    /// Human-readable name of a registered service (`"unknown-service"` for
    /// an out-of-range id).
    pub fn service_name(&self, service: ServiceId) -> &'static str {
        self.services
            .read()
            .get(service.0)
            .map(|h| h.name())
            .unwrap_or("unknown-service")
    }

    /// Names of every registered service, in service-table order.
    pub fn service_names(&self) -> Vec<&'static str> {
        self.services.read().iter().map(|h| h.name()).collect()
    }

    /// Invoke service `service` on node `to` on behalf of a thread running on
    /// node `from`, charging the full virtual-time cost of the round trip to
    /// `clock`.
    ///
    /// Timing model (for `from != to`):
    ///
    /// 1. requester: marshalling + protocol software + NIC send overhead;
    /// 2. wire: one-way latency + header/payload transfer;
    /// 3. target node: the request is serialised through the node's service
    ///    clock; service time = fixed protocol handler cost + the handler's
    ///    own reported [`RpcReply::service`](crate::comm::RpcReply::service);
    /// 4. wire back: latency + reply transfer;
    /// 5. requester: NIC receive overhead.
    ///
    /// A local invocation (`from == to`) only pays the protocol software
    /// costs — no wire, no NIC overheads, no service-clock occupancy.
    ///
    /// # Errors
    /// Returns a [`TransportError`] for an unregistered service, a malformed
    /// frame from a socket peer, an unrecoverable socket I/O failure, or a
    /// remote handler failure.  The in-process [`SimTransport`] can only
    /// fail with [`TransportError::UnknownService`].
    pub fn rpc(
        &self,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<Vec<u8>, TransportError> {
        let (data, completion) = self.rpc_split(clock, from, to, service, payload)?;
        clock.merge(completion);
        Ok(data)
    }

    /// Split-transaction form of [`Cluster::rpc`]: issue the request,
    /// charging only the requester-side issue costs (marshalling, protocol
    /// software, NIC send overhead) to `clock`, and return the reply payload
    /// together with the virtual instant at which the reply *arrives back*
    /// at the requester.
    ///
    /// The caller decides when the transaction completes: a blocking caller
    /// merges the completion time immediately (that is what [`Cluster::rpc`]
    /// does), an overlapping caller keeps computing and merges it at the
    /// first real use of the reply, paying only the residual latency.  The
    /// reply *bytes* are available immediately — every transport executes
    /// the handler synchronously within the call — but consuming them before
    /// merging the completion time would let a thread observe data "from the
    /// future" in virtual time, so don't.
    ///
    /// # Errors
    /// See [`Cluster::rpc`].
    pub fn rpc_split(
        &self,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Result<(Vec<u8>, VTime), TransportError> {
        self.transport
            .rpc_split(self, clock, from, to, service, payload)
    }

    /// One-way virtual cost of a minimal control message between two distinct
    /// nodes (used for remote thread creation and monitor signalling).
    pub fn control_message_cost(&self) -> VTime {
        self.machine.net.one_way(MSG_HEADER_BYTES)
    }

    /// Snapshot of a single node's statistics.
    pub fn node_stats(&self, id: NodeId) -> StatsSnapshot {
        self.node(id).stats.snapshot()
    }

    /// Per-node statistics snapshots, in node order.
    pub fn all_stats(&self) -> Vec<StatsSnapshot> {
        self.nodes.iter().map(|n| n.stats.snapshot()).collect()
    }

    /// Cluster-wide statistics total.
    pub fn total_stats(&self) -> StatsSnapshot {
        StatsSnapshot::total(self.all_stats().iter())
    }

    /// Reset every node's per-run state (between experiment runs).
    pub fn reset(&self) {
        for n in &self.nodes {
            n.reset();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Socket transports own server threads holding a Weak to this
        // cluster; stop them before the nodes go away.  Idempotent, and a
        // no-op for the simulated transport.
        self.transport.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("machine", &self.machine.name)
            .field("num_nodes", &self.nodes.len())
            .field("num_services", &self.num_services())
            .field("transport", &self.transport.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RpcReply;
    use hyperion_model::myrinet_200;

    fn test_cluster(nodes: usize) -> Arc<Cluster> {
        Cluster::new(myrinet_200().machine, nodes)
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_is_rejected() {
        let _ = test_cluster(0);
    }

    #[test]
    fn cluster_exposes_nodes_and_machine() {
        let c = test_cluster(4);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.machine().name, "200MHz/Myrinet");
        assert_eq!(c.node(NodeId(2)).id(), NodeId(2));
        assert_eq!(
            c.node_ids(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(c.nodes().count(), 4);
        assert_eq!(c.transport().name(), "sim");
        assert!(c.transport().wire_stats().is_none());
    }

    #[test]
    fn local_rpc_charges_only_software_cost() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, p: &[u8]| {
            RpcReply::with_data(p.to_vec(), VTime::ZERO)
        }));
        let mut clock = ThreadClock::new();
        let out = c
            .rpc(&mut clock, NodeId(0), NodeId(0), svc, &[9, 9])
            .expect("local rpc");
        assert_eq!(out, vec![9, 9]);
        let expected = c.machine().cpu.cycles(
            c.machine().dsm.protocol_request_cycles + c.machine().dsm.protocol_server_cycles,
        );
        assert_eq!(clock.now(), expected);
        // No wire traffic for a local call.
        assert_eq!(c.node_stats(NodeId(0)).bytes_sent, 0);
    }

    #[test]
    fn remote_rpc_charges_wire_and_service_costs() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::with_data(vec![0u8; 4096], VTime::from_us(5))
        }));
        let mut clock = ThreadClock::new();
        let out = c
            .rpc(&mut clock, NodeId(0), NodeId(1), svc, &[0u8; 16])
            .expect("remote rpc");
        assert_eq!(out.len(), 4096);

        let m = c.machine();
        // Lower bound: two latencies, the page transfer and the fault-free
        // service time must all be included.
        let lower = m.net.latency.times(2)
            + m.net.transfer(4096)
            + VTime::from_us(5)
            + m.net.send_overhead
            + m.net.recv_overhead;
        assert!(clock.now() >= lower, "{} < {}", clock.now(), lower);

        let s0 = c.node_stats(NodeId(0));
        let s1 = c.node_stats(NodeId(1));
        assert_eq!(s0.rpc_requests, 1);
        assert_eq!(s1.rpc_served, 1);
        assert!(s0.bytes_sent >= 16 + MSG_HEADER_BYTES);
        assert!(s0.bytes_received >= 4096 + MSG_HEADER_BYTES);
        assert_eq!(s1.bytes_received, s0.bytes_sent);
        assert_eq!(s1.bytes_sent, s0.bytes_received);
    }

    #[test]
    fn concurrent_rpcs_to_one_home_are_serialised() {
        let c = test_cluster(3);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::ack(VTime::from_us(100))
        }));
        // Two different callers target node 2 at the same virtual time; the
        // second to be served must finish at least 100us after the first.
        let mut c1 = ThreadClock::new();
        let mut c2 = ThreadClock::new();
        c.rpc(&mut c1, NodeId(0), NodeId(2), svc, &[]).unwrap();
        c.rpc(&mut c2, NodeId(1), NodeId(2), svc, &[]).unwrap();
        let (early, late) = if c1.now() < c2.now() {
            (c1.now(), c2.now())
        } else {
            (c2.now(), c1.now())
        };
        assert!(late >= early + VTime::from_us(100));
    }

    #[test]
    fn unknown_service_is_a_typed_error_not_a_panic() {
        let c = test_cluster(1);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::ack(VTime::ZERO)
        }));
        let mut clock = ThreadClock::new();
        let err = c
            .rpc(&mut clock, NodeId(0), NodeId(0), ServiceId(42), &[])
            .unwrap_err();
        match err {
            TransportError::UnknownService {
                service,
                registered,
            } => {
                assert_eq!(service, 42);
                assert_eq!(registered, 1);
            }
            other => panic!("expected UnknownService, got {other}"),
        }
        // The failed lookup charged nothing and the node still serves.
        assert_eq!(clock.now(), VTime::ZERO);
        assert_eq!(c.node_stats(NodeId(0)).rpc_requests, 0);
        assert!(c.rpc(&mut clock, NodeId(0), NodeId(0), svc, &[]).is_ok());
    }

    #[test]
    fn service_names_are_exposed() {
        let c = test_cluster(1);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::ack(VTime::ZERO)
        }));
        assert_eq!(c.service_name(svc), "anonymous-service");
        assert_eq!(c.service_name(ServiceId(7)), "unknown-service");
        assert_eq!(c.service_names(), vec!["anonymous-service"]);
        assert_eq!(svc.index(), 0);
    }

    #[test]
    fn reset_clears_all_node_state() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::ack(VTime::from_us(1))
        }));
        let mut clock = ThreadClock::new();
        c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1, 2, 3])
            .unwrap();
        assert!(c.total_stats().rpc_requests > 0);
        c.reset();
        assert_eq!(c.total_stats().rpc_requests, 0);
        assert_eq!(c.node(NodeId(1)).server.free_at(), VTime::ZERO);
        // Services survive a reset.
        assert_eq!(c.num_services(), 1);
    }

    #[test]
    fn rpc_split_defers_the_completion_merge() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::with_data(vec![7u8; 64], VTime::from_us(5))
        }));

        // Blocking reference call.
        let mut blocking = ThreadClock::new();
        let _ = c.rpc(&mut blocking, NodeId(0), NodeId(1), svc, &[1]);

        // Split call from a fresh, identical state (reset the server clock
        // so both calls see an idle home).
        c.reset();
        let mut split = ThreadClock::new();
        let (data, completion) = c
            .rpc_split(&mut split, NodeId(0), NodeId(1), svc, &[1])
            .expect("split rpc");
        assert_eq!(data, vec![7u8; 64]);
        // Only the issue costs were charged; the completion matches the
        // blocking call's final time exactly.
        assert!(split.now() < completion);
        assert_eq!(completion, blocking.now());
        split.merge(completion);
        assert_eq!(split.now(), blocking.now());

        // Local split calls complete immediately.
        let mut local = ThreadClock::new();
        let (_, done) = c
            .rpc_split(&mut local, NodeId(1), NodeId(1), svc, &[])
            .expect("local split rpc");
        assert_eq!(done, local.now());
    }

    #[test]
    fn control_message_cost_is_positive_and_latency_bounded() {
        let c = test_cluster(2);
        let cost = c.control_message_cost();
        assert!(cost >= c.machine().net.latency);
    }
}
