//! The cluster: a fixed set of homogeneous nodes plus the RPC service table.

use std::sync::Arc;

use hyperion_model::{MachineModel, NodeStats, StatsSnapshot, ThreadClock, VTime};
use parking_lot::RwLock;

use crate::comm::{RpcHandler, ServiceId, MSG_HEADER_BYTES};
use crate::node::{Node, NodeId};

/// A simulated cluster executing a single distributed JVM image.
///
/// The cluster owns the machine model (both of the paper's clusters are
/// homogeneous), one [`Node`] per cluster node, and the table of registered
/// RPC services.
pub struct Cluster {
    machine: MachineModel,
    nodes: Vec<Arc<Node>>,
    services: RwLock<Vec<Arc<dyn RpcHandler>>>,
}

impl Cluster {
    /// Build a cluster of `num_nodes` identical nodes.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn new(machine: MachineModel, num_nodes: usize) -> Arc<Self> {
        assert!(num_nodes > 0, "a cluster needs at least one node");
        let nodes = (0..num_nodes)
            .map(|i| Arc::new(Node::new(NodeId(i as u32))))
            .collect();
        Arc::new(Cluster {
            machine,
            nodes,
            services: RwLock::new(Vec::new()),
        })
    }

    /// The machine model shared by every node.
    #[inline]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Number of nodes in this cluster.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate over all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().map(|n| n.as_ref())
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32).map(NodeId).collect()
    }

    /// Register an RPC service; the returned [`ServiceId`] is what callers
    /// pass to [`Cluster::rpc`].
    pub fn register_service(&self, handler: Arc<dyn RpcHandler>) -> ServiceId {
        let mut services = self.services.write();
        services.push(handler);
        ServiceId(services.len() - 1)
    }

    /// Number of registered services.
    pub fn num_services(&self) -> usize {
        self.services.read().len()
    }

    /// Invoke service `service` on node `to` on behalf of a thread running on
    /// node `from`, charging the full virtual-time cost of the round trip to
    /// `clock`.
    ///
    /// Timing model (for `from != to`):
    ///
    /// 1. requester: marshalling + protocol software + NIC send overhead;
    /// 2. wire: one-way latency + header/payload transfer;
    /// 3. target node: the request is serialised through the node's service
    ///    clock; service time = fixed protocol handler cost + the handler's
    ///    own reported [`RpcReply::service`](crate::comm::RpcReply::service);
    /// 4. wire back: latency + reply transfer;
    /// 5. requester: NIC receive overhead.
    ///
    /// A local invocation (`from == to`) only pays the protocol software
    /// costs — no wire, no NIC overheads, no service-clock occupancy.
    pub fn rpc(
        &self,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> Vec<u8> {
        let (data, completion) = self.rpc_split(clock, from, to, service, payload);
        clock.merge(completion);
        data
    }

    /// Split-transaction form of [`Cluster::rpc`]: issue the request,
    /// charging only the requester-side issue costs (marshalling, protocol
    /// software, NIC send overhead) to `clock`, and return the reply payload
    /// together with the virtual instant at which the reply *arrives back*
    /// at the requester.
    ///
    /// The caller decides when the transaction completes: a blocking caller
    /// merges the completion time immediately (that is what [`Cluster::rpc`]
    /// does), an overlapping caller keeps computing and merges it at the
    /// first real use of the reply, paying only the residual latency.  The
    /// reply *bytes* are available immediately — the simulation executes the
    /// handler synchronously — but consuming them before merging the
    /// completion time would let a thread observe data "from the future" in
    /// virtual time, so don't.
    pub fn rpc_split(
        &self,
        clock: &mut ThreadClock,
        from: NodeId,
        to: NodeId,
        service: ServiceId,
        payload: &[u8],
    ) -> (Vec<u8>, VTime) {
        let handler = {
            let services = self.services.read();
            Arc::clone(
                services
                    .get(service.0)
                    .unwrap_or_else(|| panic!("unknown RPC service {:?}", service)),
            )
        };

        let cpu = &self.machine.cpu;
        let net = &self.machine.net;
        let dsm = &self.machine.dsm;
        let from_node = self.node(from);
        let to_node = self.node(to);

        NodeStats::bump(&from_node.stats.rpc_requests);
        NodeStats::bump(&to_node.stats.rpc_served);

        // The handler runs on the target node's state regardless of where
        // the calling OS thread happens to be executing.
        let reply = handler.handle(to_node, from, payload);

        let request_cpu = cpu.cycles(dsm.protocol_request_cycles);
        let server_cpu = cpu.cycles(dsm.protocol_server_cycles);

        if from == to {
            // Local invocation: protocol software only, nothing to overlap.
            clock.advance(request_cpu + server_cpu + reply.service);
            return (reply.data, clock.now());
        }

        let req_bytes = MSG_HEADER_BYTES + payload.len() as u64;
        let reply_bytes = MSG_HEADER_BYTES + reply.data.len() as u64;

        NodeStats::bump_by(&from_node.stats.bytes_sent, req_bytes);
        NodeStats::bump_by(&to_node.stats.bytes_received, req_bytes);
        NodeStats::bump_by(&to_node.stats.bytes_sent, reply_bytes);
        NodeStats::bump_by(&from_node.stats.bytes_received, reply_bytes);

        // 1. + 2. request leaves the caller and crosses the wire.
        clock.advance(request_cpu + net.send_overhead);
        let arrival = clock.now() + net.latency + net.transfer(req_bytes);

        // 3. service at the home node (serialised).
        let done = to_node.server.serve(arrival, server_cpu + reply.service);

        // 4. + 5. reply crosses the wire and is absorbed by the caller.
        let reply_arrival = done + net.latency + net.transfer(reply_bytes) + net.recv_overhead;

        (reply.data, reply_arrival)
    }

    /// One-way virtual cost of a minimal control message between two distinct
    /// nodes (used for remote thread creation and monitor signalling).
    pub fn control_message_cost(&self) -> VTime {
        self.machine.net.one_way(MSG_HEADER_BYTES)
    }

    /// Snapshot of a single node's statistics.
    pub fn node_stats(&self, id: NodeId) -> StatsSnapshot {
        self.node(id).stats.snapshot()
    }

    /// Per-node statistics snapshots, in node order.
    pub fn all_stats(&self) -> Vec<StatsSnapshot> {
        self.nodes.iter().map(|n| n.stats.snapshot()).collect()
    }

    /// Cluster-wide statistics total.
    pub fn total_stats(&self) -> StatsSnapshot {
        StatsSnapshot::total(self.all_stats().iter())
    }

    /// Reset every node's per-run state (between experiment runs).
    pub fn reset(&self) {
        for n in &self.nodes {
            n.reset();
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("machine", &self.machine.name)
            .field("num_nodes", &self.nodes.len())
            .field("num_services", &self.num_services())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RpcReply;
    use hyperion_model::myrinet_200;

    fn test_cluster(nodes: usize) -> Arc<Cluster> {
        Cluster::new(myrinet_200().machine, nodes)
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_is_rejected() {
        let _ = test_cluster(0);
    }

    #[test]
    fn cluster_exposes_nodes_and_machine() {
        let c = test_cluster(4);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.machine().name, "200MHz/Myrinet");
        assert_eq!(c.node(NodeId(2)).id(), NodeId(2));
        assert_eq!(
            c.node_ids(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(c.nodes().count(), 4);
    }

    #[test]
    fn local_rpc_charges_only_software_cost() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, p: &[u8]| {
            RpcReply::with_data(p.to_vec(), VTime::ZERO)
        }));
        let mut clock = ThreadClock::new();
        let out = c.rpc(&mut clock, NodeId(0), NodeId(0), svc, &[9, 9]);
        assert_eq!(out, vec![9, 9]);
        let expected = c.machine().cpu.cycles(
            c.machine().dsm.protocol_request_cycles + c.machine().dsm.protocol_server_cycles,
        );
        assert_eq!(clock.now(), expected);
        // No wire traffic for a local call.
        assert_eq!(c.node_stats(NodeId(0)).bytes_sent, 0);
    }

    #[test]
    fn remote_rpc_charges_wire_and_service_costs() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::with_data(vec![0u8; 4096], VTime::from_us(5))
        }));
        let mut clock = ThreadClock::new();
        let out = c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[0u8; 16]);
        assert_eq!(out.len(), 4096);

        let m = c.machine();
        // Lower bound: two latencies, the page transfer and the fault-free
        // service time must all be included.
        let lower = m.net.latency.times(2)
            + m.net.transfer(4096)
            + VTime::from_us(5)
            + m.net.send_overhead
            + m.net.recv_overhead;
        assert!(clock.now() >= lower, "{} < {}", clock.now(), lower);

        let s0 = c.node_stats(NodeId(0));
        let s1 = c.node_stats(NodeId(1));
        assert_eq!(s0.rpc_requests, 1);
        assert_eq!(s1.rpc_served, 1);
        assert!(s0.bytes_sent >= 16 + MSG_HEADER_BYTES);
        assert!(s0.bytes_received >= 4096 + MSG_HEADER_BYTES);
        assert_eq!(s1.bytes_received, s0.bytes_sent);
        assert_eq!(s1.bytes_sent, s0.bytes_received);
    }

    #[test]
    fn concurrent_rpcs_to_one_home_are_serialised() {
        let c = test_cluster(3);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::ack(VTime::from_us(100))
        }));
        // Two different callers target node 2 at the same virtual time; the
        // second to be served must finish at least 100us after the first.
        let mut c1 = ThreadClock::new();
        let mut c2 = ThreadClock::new();
        c.rpc(&mut c1, NodeId(0), NodeId(2), svc, &[]);
        c.rpc(&mut c2, NodeId(1), NodeId(2), svc, &[]);
        let (early, late) = if c1.now() < c2.now() {
            (c1.now(), c2.now())
        } else {
            (c2.now(), c1.now())
        };
        assert!(late >= early + VTime::from_us(100));
    }

    #[test]
    #[should_panic(expected = "unknown RPC service")]
    fn unknown_service_panics() {
        let c = test_cluster(1);
        let mut clock = ThreadClock::new();
        c.rpc(&mut clock, NodeId(0), NodeId(0), ServiceId(42), &[]);
    }

    #[test]
    fn reset_clears_all_node_state() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::ack(VTime::from_us(1))
        }));
        let mut clock = ThreadClock::new();
        c.rpc(&mut clock, NodeId(0), NodeId(1), svc, &[1, 2, 3]);
        assert!(c.total_stats().rpc_requests > 0);
        c.reset();
        assert_eq!(c.total_stats().rpc_requests, 0);
        assert_eq!(c.node(NodeId(1)).server.free_at(), VTime::ZERO);
        // Services survive a reset.
        assert_eq!(c.num_services(), 1);
    }

    #[test]
    fn rpc_split_defers_the_completion_merge() {
        let c = test_cluster(2);
        let svc = c.register_service(Arc::new(|_n: &Node, _c: NodeId, _p: &[u8]| {
            RpcReply::with_data(vec![7u8; 64], VTime::from_us(5))
        }));

        // Blocking reference call.
        let mut blocking = ThreadClock::new();
        let _ = c.rpc(&mut blocking, NodeId(0), NodeId(1), svc, &[1]);

        // Split call from a fresh, identical state (reset the server clock
        // so both calls see an idle home).
        c.reset();
        let mut split = ThreadClock::new();
        let (data, completion) = c.rpc_split(&mut split, NodeId(0), NodeId(1), svc, &[1]);
        assert_eq!(data, vec![7u8; 64]);
        // Only the issue costs were charged; the completion matches the
        // blocking call's final time exactly.
        assert!(split.now() < completion);
        assert_eq!(completion, blocking.now());
        split.merge(completion);
        assert_eq!(split.now(), blocking.now());

        // Local split calls complete immediately.
        let mut local = ThreadClock::new();
        let (_, done) = c.rpc_split(&mut local, NodeId(1), NodeId(1), svc, &[]);
        assert_eq!(done, local.now());
    }

    #[test]
    fn control_message_cost_is_positive_and_latency_bounded() {
        let c = test_cluster(2);
        let cost = c.control_message_cost();
        assert!(cost >= c.machine().net.latency);
    }
}
