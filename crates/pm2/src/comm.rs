//! The communication subsystem: PM2-style RPCs.
//!
//! PM2's programming interface lets threads invoke the remote execution of
//! user-defined services; on the remote node the invocation is handled by a
//! message handler (an "active message").  The reproduction keeps exactly
//! that interface: the DSM layer registers handlers for page fetches, diff
//! application and remote monitor acquisition, and calls
//! [`crate::Cluster::rpc`] to invoke them.
//!
//! Handlers run on the calling OS thread but operate on the *target node's*
//! state; the virtual-time accounting (send overhead, wire latency, payload
//! transfer, home-node service occupancy, reply transfer) is what makes the
//! call "remote".

use hyperion_model::VTime;

use crate::node::{Node, NodeId};

/// Identifier of a registered RPC service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ServiceId(pub(crate) usize);

impl ServiceId {
    /// Index of the service in the cluster's service table (matches
    /// [`hyperion_model::WireServiceSnapshot::service`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Fixed per-message header size charged on the wire in addition to the
/// payload (request ids, service ids, page numbers...).
pub const MSG_HEADER_BYTES: u64 = 64;

/// The reply produced by an RPC handler.
#[derive(Debug, Default)]
pub struct RpcReply {
    /// Reply payload carried back to the caller.
    pub data: Vec<u8>,
    /// Additional service time spent by the handler on the target node, on
    /// top of the machine model's fixed per-request protocol cost (e.g. the
    /// time to copy a page or apply a diff).
    pub service: VTime,
}

impl RpcReply {
    /// An empty acknowledgement with a given service time.
    pub fn ack(service: VTime) -> Self {
        RpcReply {
            data: Vec::new(),
            service,
        }
    }

    /// A reply carrying `data`, with a given service time.
    pub fn with_data(data: Vec<u8>, service: VTime) -> Self {
        RpcReply { data, service }
    }
}

/// A message handler ("service" in PM2 terminology).
///
/// `target` is the node the message was addressed to — the handler must only
/// touch state belonging to that node — and `caller` identifies the
/// requesting node.
pub trait RpcHandler: Send + Sync {
    /// Service a request.
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply;

    /// Human-readable service name (for diagnostics).
    fn name(&self) -> &'static str {
        "anonymous-service"
    }
}

/// Blanket implementation so plain closures can be registered as services in
/// tests and small tools.
impl<F> RpcHandler for F
where
    F: Fn(&Node, NodeId, &[u8]) -> RpcReply + Send + Sync,
{
    fn handle(&self, target: &Node, caller: NodeId, payload: &[u8]) -> RpcReply {
        self(target, caller, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_reply_constructors() {
        let a = RpcReply::ack(VTime::from_us(1));
        assert!(a.data.is_empty());
        assert_eq!(a.service, VTime::from_us(1));

        let d = RpcReply::with_data(vec![1, 2, 3], VTime::ZERO);
        assert_eq!(d.data, vec![1, 2, 3]);
        assert_eq!(d.service, VTime::ZERO);
    }

    #[test]
    fn closures_implement_rpc_handler() {
        let handler = |_node: &Node, caller: NodeId, payload: &[u8]| {
            RpcReply::with_data(vec![caller.0 as u8, payload.len() as u8], VTime::ZERO)
        };
        let node = Node::new(NodeId(0));
        let reply = RpcHandler::handle(&handler, &node, NodeId(7), &[1, 2, 3]);
        assert_eq!(reply.data, vec![7, 3]);
        assert_eq!(RpcHandler::name(&handler), "anonymous-service");
    }
}
