//! Node-group topology: the two-level cluster shape behind hierarchical
//! home routing.
//!
//! The paper's cluster is four nodes and every layer of the original
//! reproduction assumed that scale: a flat per-page home map, per-node
//! directory state, and every fetch/diff RPC travelling directly to the
//! page's home.  At 64 nodes a barrier exchange or pivot-row broadcast
//! serialises all arrivals on one home node.  [`Topology`] introduces the
//! structural fix: nodes are partitioned into equal-size **groups**, each
//! with a **leader** (its lowest-numbered member) that can coalesce its
//! members' same-home traffic into one upstream RPC (see `dsm::combine`).
//!
//! The default is **flat**: `group_size == 1`, every node is its own group
//! and its own leader.  In that shape `group_of(n) == n` and no relay ever
//! happens, so existing 4-node behaviour is byte-identical by construction
//! — the grouped code paths are only reachable when `group_size >= 2`.

use crate::node::NodeId;

/// The cluster's node-group shape: `nodes` nodes partitioned into
/// consecutive groups of `group_size` (which must divide `nodes`).
///
/// Group `g` contains nodes `g*group_size .. (g+1)*group_size`; its leader
/// is the lowest-numbered member.  With `group_size == 1` (the flat
/// default) every node is its own self-led group, group indices coincide
/// with node indices, and the topology is inert.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    nodes: usize,
    group_size: usize,
}

impl Topology {
    /// The flat single-node-groups topology (the inert default).
    pub fn flat(nodes: usize) -> Topology {
        Topology {
            nodes,
            group_size: 1,
        }
    }

    /// A grouped topology: `nodes` partitioned into consecutive groups of
    /// `group_size`.  Returns `None` unless `group_size` is nonzero and
    /// divides `nodes` — validation layers map that to a typed error.
    pub fn grouped(nodes: usize, group_size: usize) -> Option<Topology> {
        if group_size == 0 || nodes == 0 || nodes % group_size != 0 {
            return None;
        }
        Some(Topology { nodes, group_size })
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Nodes per group (1 in the flat topology).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.nodes / self.group_size
    }

    /// True when the topology actually groups nodes (`group_size >= 2`);
    /// all relay/combining paths are gated on this.
    pub fn is_grouped(&self) -> bool {
        self.group_size > 1
    }

    /// The group a node belongs to.
    pub fn group_of(&self, node: NodeId) -> usize {
        node.index() / self.group_size
    }

    /// The leader (lowest-numbered member) of a group.
    pub fn leader_of(&self, group: usize) -> NodeId {
        NodeId((group * self.group_size) as u32)
    }

    /// True when `node` leads its own group (always true when flat).
    pub fn is_leader(&self, node: NodeId) -> bool {
        self.leader_of(self.group_of(node)) == node
    }

    /// The members of a group, in node order.
    pub fn members(&self, group: usize) -> impl Iterator<Item = NodeId> {
        let first = group * self.group_size;
        (first..first + self.group_size).map(|n| NodeId(n as u32))
    }

    /// True when two nodes share a group (a member reaches such homes
    /// directly; only cross-group traffic is relayed via the leader).
    pub fn same_group(&self, a: NodeId, b: NodeId) -> bool {
        self.group_of(a) == self.group_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_is_identity() {
        let t = Topology::flat(4);
        assert!(!t.is_grouped());
        assert_eq!(t.num_groups(), 4);
        for n in 0..4u32 {
            assert_eq!(t.group_of(NodeId(n)), n as usize);
            assert_eq!(t.leader_of(n as usize), NodeId(n));
            assert!(t.is_leader(NodeId(n)));
        }
        assert_eq!(t.members(2).collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn grouped_topology_partitions_consecutively() {
        let t = Topology::grouped(8, 4).unwrap();
        assert!(t.is_grouped());
        assert_eq!(t.num_groups(), 2);
        assert_eq!(t.group_of(NodeId(3)), 0);
        assert_eq!(t.group_of(NodeId(4)), 1);
        assert_eq!(t.leader_of(1), NodeId(4));
        assert!(t.is_leader(NodeId(0)));
        assert!(t.is_leader(NodeId(4)));
        assert!(!t.is_leader(NodeId(5)));
        assert!(t.same_group(NodeId(5), NodeId(7)));
        assert!(!t.same_group(NodeId(3), NodeId(4)));
        assert_eq!(
            t.members(1).collect::<Vec<_>>(),
            vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
        );
    }

    #[test]
    fn grouped_rejects_non_dividing_sizes() {
        assert!(Topology::grouped(8, 0).is_none());
        assert!(Topology::grouped(8, 3).is_none());
        assert!(Topology::grouped(0, 2).is_none());
        assert!(Topology::grouped(64, 8).is_some());
    }
}
