//! The Hyperion runtime: configuration, the shared cluster image, thread
//! contexts and the run harness.
//!
//! A [`HyperionRuntime`] is the Rust analogue of "one distributed JVM over
//! the cluster": it owns the cluster model, the iso-address allocator, the
//! DSM system configured with one of the two access-detection protocols, the
//! thread registry and the load balancer.  [`HyperionRuntime::run`] executes
//! a program — a closure playing the role of `main` — on node 0 and returns
//! both the program's result and a [`RunReport`] with the virtual execution
//! time and the per-node event statistics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hyperion_dsm::policy::validate_adaptive;
use hyperion_dsm::{
    AdaptiveParams, DsmStore, DsmSystem, Locality, PolicyError, PolicySpec, ProtocolKind,
    TransportConfig,
};
use hyperion_model::vtime::TimeWatermark;
use hyperion_model::{
    ClusterSpec, CpuModel, MachineModel, NodeStats, OpCounts, StatsSnapshot, ThreadClock, VTime,
    WireServiceSnapshot, WorkEstimate,
};
use hyperion_pm2::{
    Cluster, GlobalAddr, IsoAllocator, NodeId, ThreadId, ThreadRegistry, TransportBackend,
};

use crate::thread::{HThreadHandle, LoadBalancer};

/// Configuration of a Hyperion execution.
#[derive(Clone, Debug)]
pub struct HyperionConfig {
    /// Which of the paper's clusters (or a custom one) to model.
    pub cluster: ClusterSpec,
    /// How many of the cluster's nodes to use for this run.
    pub nodes: usize,
    /// Access-detection protocol (`java_ic`, `java_pf` or `java_ad`).
    pub protocol: ProtocolKind,
    /// Policy knobs of the adaptive protocol (ignored unless `protocol` is
    /// [`ProtocolKind::JavaAd`]): switching-hysteresis multiples of the
    /// machine model's break-even and the batched-fetch window.
    pub adaptive: AdaptiveParams,
    /// Split-transaction transport configuration: overlapped page fetches,
    /// batched diff flushing and home migration.  Applies to every protocol
    /// (the mechanisms are semantics-preserving).
    pub transport: TransportConfig,
    /// Explicit policy selection.  `None` (the default) derives the
    /// [`PolicySpec`] from `protocol`, `adaptive` and the `transport` flags
    /// via [`PolicySpec::from_config`]; `Some` chooses the policy object per
    /// decision point directly.  An explicit spec must agree with `protocol`
    /// on the detection choice ([`ConfigError::PolicyMismatch`] otherwise).
    pub policies: Option<PolicySpec>,
    /// Application threads per node.  The paper uses one ("we used only one
    /// application thread per node", §4.3); larger values exercise the
    /// computation/communication-overlap extension.
    pub threads_per_node: usize,
    /// Conservative virtual-time pacing window.
    ///
    /// Threads are real OS threads but time is virtual, so without pacing the
    /// host scheduler — not the modelled cluster — would decide how work from
    /// dynamically balanced queues (TSP, Barnes-Hut) is divided.  At every
    /// monitor acquisition a thread whose virtual clock is more than this
    /// window ahead of the slowest runnable thread yields the host CPU until
    /// the laggards catch up.  `None` disables pacing (fine for programs with
    /// static work division).
    pub pacing_window: Option<VTime>,
}

impl HyperionConfig {
    /// A configuration with one application thread per node and the default
    /// pacing window.
    ///
    /// Equivalent to
    /// `HyperionConfig::builder().cluster(..).nodes(..).protocol(..).build()`
    /// except that no validation is performed until
    /// [`HyperionConfig::validate`] / [`HyperionRuntime::new`].
    pub fn new(cluster: ClusterSpec, nodes: usize, protocol: ProtocolKind) -> Self {
        HyperionConfig {
            cluster,
            nodes,
            protocol,
            adaptive: AdaptiveParams::default(),
            transport: TransportConfig::default(),
            policies: None,
            threads_per_node: 1,
            pacing_window: Some(VTime::from_us(500)),
        }
    }

    /// Start building a configuration.
    ///
    /// The builder is the canonical way to assemble a run configuration:
    /// `cluster`, `nodes` and `protocol` are mandatory, everything else has
    /// the defaults of [`HyperionConfig::new`], and [`ConfigBuilder::build`]
    /// validates the result before handing it out.
    ///
    /// ```
    /// use hyperion::prelude::*;
    ///
    /// let config = HyperionConfig::builder()
    ///     .cluster(myrinet_200())
    ///     .nodes(4)
    ///     .protocol(ProtocolKind::JavaPf)
    ///     .threads_per_node(2)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.total_app_threads(), 8);
    /// ```
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Builder-style override of [`HyperionConfig::threads_per_node`].
    pub fn with_threads_per_node(mut self, threads: usize) -> Self {
        self.threads_per_node = threads;
        self
    }

    /// Builder-style override of [`HyperionConfig::pacing_window`].
    pub fn with_pacing_window(mut self, window: Option<VTime>) -> Self {
        self.pacing_window = window;
        self
    }

    /// Builder-style override of [`HyperionConfig::adaptive`].
    pub fn with_adaptive(mut self, adaptive: AdaptiveParams) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Builder-style override of [`HyperionConfig::transport`].
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Builder-style override of [`HyperionConfig::policies`].
    pub fn with_policies(mut self, policies: PolicySpec) -> Self {
        self.policies = Some(policies);
        self
    }

    /// The effective policy selection of this run: the explicit
    /// [`HyperionConfig::policies`] spec if one was set, otherwise the spec
    /// the legacy flag surface describes ([`PolicySpec::from_config`]).
    pub fn policy_spec(&self) -> PolicySpec {
        self.policies.clone().unwrap_or_else(|| {
            PolicySpec::from_config(self.protocol, &self.adaptive, &self.transport)
        })
    }

    /// Total number of application (computation) threads the standard SPMD
    /// benchmarks create.
    pub fn total_app_threads(&self) -> usize {
        self.nodes * self.threads_per_node
    }

    /// Check the configuration for obvious mistakes.
    ///
    /// Structural errors (node counts, cluster size, backend limits) keep
    /// their dedicated variants.  Every policy-level error — adaptive
    /// hysteresis bands, batch ceilings, hint windows, migration streaks,
    /// hints without overlapped fetches — is a typed
    /// [`PolicyError`] wrapped in [`ConfigError::Policy`], produced by
    /// [`PolicySpec::validate`] on the effective policy spec.  A zero knob
    /// on a *disabled* feature (e.g. `migration_streak == 0` with
    /// `home_migration` off) maps to a `Noop` policy and is therefore no
    /// longer an error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if self.threads_per_node == 0 {
            return Err(ConfigError::ZeroThreadsPerNode);
        }
        if self.nodes > self.cluster.max_nodes {
            return Err(ConfigError::ExceedsCluster {
                requested: self.nodes,
                available: self.cluster.max_nodes,
            });
        }
        // Adaptive tunables are checked whichever protocol runs (a sweep
        // harness sharing one `AdaptiveParams` should fail fast), then the
        // effective spec validates each selected policy.
        validate_adaptive(&self.adaptive)?;
        if let Some(explicit) = &self.policies {
            if explicit.detection.kind() != self.protocol {
                return Err(ConfigError::PolicyMismatch {
                    protocol: self.protocol,
                    policies: explicit.detection.kind(),
                });
            }
        }
        let spec = self.policy_spec();
        spec.validate(self.transport.overlapped_fetches)?;
        // Topology shape checks need the node count and the fault schedule,
        // which the policy spec itself does not carry.
        spec.topology
            .validate(self.nodes, self.transport.fault.as_ref())?;
        if self.transport.backend != TransportBackend::Sim {
            // Socket backends keep a connection per peer a node talks to.
            // Under the flat topology every node talks to every other node;
            // a grouped topology routes members through their leader, so a
            // node's fan-in is bounded by its group size (members) or the
            // group count (a leader talking to other homes) — whichever is
            // larger.
            let topology = spec.topology.build(self.nodes);
            let fan_in = if topology.is_grouped() {
                topology.group_size().max(topology.num_groups())
            } else {
                self.nodes
            };
            if fan_in > SOCKET_FAN_IN_BOUND {
                return Err(ConfigError::SocketFanIn {
                    degree: fan_in,
                    bound: SOCKET_FAN_IN_BOUND,
                });
            }
        }
        self.transport
            .retry
            .validate()
            .map_err(ConfigError::InvalidTransport)?;
        if let Some(fault) = &self.transport.fault {
            fault
                .validate(self.nodes)
                .map_err(ConfigError::InvalidTransport)?;
        }
        Ok(())
    }
}

/// Step-by-step construction of a [`HyperionConfig`].
///
/// Created by [`HyperionConfig::builder`]; see there for an example.
#[derive(Clone, Debug, Default)]
pub struct ConfigBuilder {
    cluster: Option<ClusterSpec>,
    nodes: Option<usize>,
    protocol: Option<ProtocolKind>,
    adaptive: Option<AdaptiveParams>,
    transport: Option<TransportConfig>,
    policies: Option<PolicySpec>,
    threads_per_node: Option<usize>,
    pacing_window: Option<Option<VTime>>,
}

impl ConfigBuilder {
    /// Which of the paper's clusters (or a custom one) to model.  Mandatory.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// How many of the cluster's nodes to use.  Mandatory.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Access-detection protocol (`java_ic`, `java_pf` or `java_ad`).
    /// Mandatory.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// Policy knobs for `java_ad` (thresholds, batching window).  Defaults
    /// to [`AdaptiveParams::default`]; ignored by the other protocols.
    pub fn adaptive(mut self, adaptive: AdaptiveParams) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Split-transaction transport configuration (overlapped fetches,
    /// batched diff flushing, home migration).  Defaults to
    /// [`TransportConfig::default`].
    pub fn transport(mut self, transport: TransportConfig) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Explicit per-decision-point policy selection (see
    /// [`HyperionConfig::policies`]).  Defaults to the spec derived from the
    /// `protocol`, `adaptive` and `transport` fields; an explicit spec must
    /// agree with `protocol` on the detection choice.
    pub fn policies(mut self, policies: PolicySpec) -> Self {
        self.policies = Some(policies);
        self
    }

    /// Application threads per node.  Defaults to 1, as in the paper.
    pub fn threads_per_node(mut self, threads: usize) -> Self {
        self.threads_per_node = Some(threads);
        self
    }

    /// Conservative virtual-time pacing window; `None` disables pacing.
    /// Defaults to the 500 µs window of [`HyperionConfig::new`].
    pub fn pacing_window(mut self, window: Option<VTime>) -> Self {
        self.pacing_window = Some(window);
        self
    }

    /// Assemble and validate the configuration.
    ///
    /// Fails with [`ConfigError::MissingField`] if `cluster`, `nodes` or
    /// `protocol` was never set, and with the [`HyperionConfig::validate`]
    /// errors on out-of-range values.
    pub fn build(self) -> Result<HyperionConfig, ConfigError> {
        let cluster = self.cluster.ok_or(ConfigError::MissingField("cluster"))?;
        let nodes = self.nodes.ok_or(ConfigError::MissingField("nodes"))?;
        let protocol = self.protocol.ok_or(ConfigError::MissingField("protocol"))?;
        // Start from `new()` so the defaults live in exactly one place.
        let mut config = HyperionConfig::new(cluster, nodes, protocol);
        if let Some(adaptive) = self.adaptive {
            config.adaptive = adaptive;
        }
        if let Some(transport) = self.transport {
            config.transport = transport;
        }
        if let Some(policies) = self.policies {
            config.policies = Some(policies);
        }
        if let Some(threads) = self.threads_per_node {
            config.threads_per_node = threads;
        }
        if let Some(window) = self.pacing_window {
            config.pacing_window = window;
        }
        config.validate()?;
        Ok(config)
    }
}

/// Errors produced by [`HyperionConfig::validate`] and
/// [`ConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A mandatory builder field was never set.
    MissingField(&'static str),
    /// `nodes` was zero.
    ZeroNodes,
    /// `threads_per_node` was zero.
    ZeroThreadsPerNode,
    /// More nodes were requested than the modelled cluster has.
    ExceedsCluster {
        /// Nodes requested by the configuration.
        requested: usize,
        /// Nodes available in the cluster model.
        available: usize,
    },
    /// An illegal policy selection (adaptive tunables, batch ceilings, hint
    /// windows, migration streaks): the typed verdict of
    /// [`PolicySpec::validate`].
    Policy(PolicyError),
    /// An explicit [`HyperionConfig::policies`] spec whose detection choice
    /// disagrees with the `protocol` field.
    PolicyMismatch {
        /// The protocol the configuration names.
        protocol: ProtocolKind,
        /// The detection protocol the explicit policy spec selects.
        policies: ProtocolKind,
    },
    /// The transport parameters are out of range.
    InvalidTransport(&'static str),
    /// A socket backend whose per-node connection fan-in exceeds the bound
    /// (flat topologies keep one connection per peer; group the topology
    /// via [`TransportConfig::group_size`] to shrink the fan-in).
    SocketFanIn {
        /// Connections one node would have to keep open.
        degree: usize,
        /// The backend's per-node connection bound.
        bound: usize,
    },
}

/// Largest per-node connection fan-in the socket backends accept.  The old
/// rule capped socket clusters at 64 *nodes* outright; leader-routed
/// grouped topologies keep every node's fan-in at `max(group_size,
/// num_groups)`, so e.g. 256 nodes in groups of 16 are fine.
const SOCKET_FAN_IN_BOUND: usize = 64;

impl From<PolicyError> for ConfigError {
    fn from(err: PolicyError) -> Self {
        ConfigError::Policy(err)
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MissingField(field) => {
                write!(f, "configuration builder is missing the `{field}` field")
            }
            ConfigError::ZeroNodes => write!(f, "a run needs at least one node"),
            ConfigError::ZeroThreadsPerNode => {
                write!(f, "a run needs at least one application thread per node")
            }
            ConfigError::ExceedsCluster {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} nodes but the modelled cluster has only {available}"
            ),
            ConfigError::Policy(err) => {
                write!(f, "invalid policy selection: {err}")
            }
            ConfigError::PolicyMismatch { protocol, policies } => write!(
                f,
                "explicit policies select {} detection but the configuration's protocol is {}",
                policies.name(),
                protocol.name()
            ),
            ConfigError::InvalidTransport(reason) => {
                write!(f, "invalid transport parameters: {reason}")
            }
            ConfigError::SocketFanIn { degree, bound } => write!(
                f,
                "socket backends bound the per-node connection fan-in: this topology needs \
                 {degree} connections per node but at most {bound} are supported; set \
                 `TransportConfig::group_size` to route through group leaders"
            ),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Policy(err) => Some(err),
            _ => None,
        }
    }
}

/// Published virtual-time progress of every thread, used by the conservative
/// pacing scheme (see [`HyperionConfig::pacing_window`]).  A slot holding
/// [`ProgressTable::INACTIVE`] means the thread is terminated or blocked on
/// another thread and therefore places no constraint on the others.
#[derive(Default)]
pub(crate) struct ProgressTable {
    slots: parking_lot::RwLock<Vec<Arc<std::sync::atomic::AtomicU64>>>,
}

impl ProgressTable {
    pub(crate) const INACTIVE: u64 = u64::MAX;

    fn slot(&self, thread: ThreadId) -> Arc<std::sync::atomic::AtomicU64> {
        let idx = thread.0 as usize;
        {
            let slots = self.slots.read();
            if let Some(s) = slots.get(idx) {
                return Arc::clone(s);
            }
        }
        let mut slots = self.slots.write();
        while slots.len() <= idx {
            slots.push(Arc::new(std::sync::atomic::AtomicU64::new(Self::INACTIVE)));
        }
        Arc::clone(&slots[idx])
    }

    pub(crate) fn publish(&self, thread: ThreadId, now_ps: u64) {
        self.slot(thread).store(now_ps, Ordering::Relaxed);
    }

    pub(crate) fn set_inactive(&self, thread: ThreadId) {
        self.slot(thread).store(Self::INACTIVE, Ordering::Relaxed);
    }

    /// Smallest published time over all active threads, if any.
    pub(crate) fn min_active(&self) -> Option<u64> {
        let slots = self.slots.read();
        slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&v| v != Self::INACTIVE)
            .min()
    }
}

/// The state shared by every thread of a run (the "single JVM image").
pub(crate) struct RuntimeShared {
    pub(crate) config: HyperionConfig,
    pub(crate) cluster: Arc<Cluster>,
    pub(crate) allocator: Arc<IsoAllocator>,
    pub(crate) dsm: Arc<DsmSystem>,
    pub(crate) registry: ThreadRegistry,
    pub(crate) balancer: LoadBalancer,
    pub(crate) finish: TimeWatermark,
    pub(crate) active_children: AtomicUsize,
    pub(crate) progress: ProgressTable,
    /// Modeled per-operation latencies (picoseconds) recorded by
    /// [`ThreadCtx::record_serving_op`]; folded into the report's tail
    /// percentiles when the run ends.
    pub(crate) serving_latencies: parking_lot::Mutex<Vec<u64>>,
}

/// The distributed JVM image for one experiment run.
pub struct HyperionRuntime {
    shared: Arc<RuntimeShared>,
}

impl HyperionRuntime {
    /// Build a runtime from a validated configuration.
    pub fn new(config: HyperionConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let cluster = Cluster::for_backend_with_faults(
            config.cluster.machine.clone(),
            config.nodes,
            config.transport.backend,
            config.transport.fault,
        );
        let allocator = Arc::new(IsoAllocator::new(config.nodes));
        // Build through the effective policy spec: identical to the legacy
        // `with_config` path when `config.policies` is `None`, and the typed
        // override when it is `Some`.  The spec's topology shapes the store
        // (directory keying, version tracking) — `validate` above has
        // already rejected non-dividing group sizes.
        let spec = config.policy_spec();
        let store =
            DsmStore::with_topology(Arc::clone(&allocator), spec.topology.build(config.nodes));
        let policies = spec.build(cluster.machine(), config.nodes);
        let dsm = DsmSystem::with_policies(
            Arc::clone(&cluster),
            store,
            config.protocol,
            &config.adaptive,
            &config.transport,
            policies,
        );
        let balancer = LoadBalancer::new(config.nodes);
        Ok(HyperionRuntime {
            shared: Arc::new(RuntimeShared {
                config,
                cluster,
                allocator,
                dsm,
                registry: ThreadRegistry::new(),
                balancer,
                finish: TimeWatermark::new(),
                active_children: AtomicUsize::new(0),
                progress: ProgressTable::default(),
                serving_latencies: parking_lot::Mutex::new(Vec::new()),
            }),
        })
    }

    /// The run's configuration.
    pub fn config(&self) -> &HyperionConfig {
        &self.shared.config
    }

    /// Number of nodes in this run.
    pub fn nodes(&self) -> usize {
        self.shared.config.nodes
    }

    /// The access-detection protocol of this run.
    pub fn protocol(&self) -> ProtocolKind {
        self.shared.config.protocol
    }

    /// The underlying cluster (for inspection in tests and tools).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.shared.cluster
    }

    /// The underlying DSM system (for inspection in tests and tools).
    pub fn dsm(&self) -> &Arc<DsmSystem> {
        &self.shared.dsm
    }

    /// Execute a program.
    ///
    /// `main` runs on node 0 with a fresh virtual clock.  It may allocate
    /// shared objects, spawn Hyperion threads (which the load balancer places
    /// round-robin across the nodes, §2.1 Table 1) and join them.  When
    /// `main` returns, the harness waits for any threads that were not
    /// explicitly joined, then assembles the [`RunReport`].
    ///
    /// Each `HyperionRuntime` is intended to measure a single run; build a
    /// fresh runtime per data point.
    pub fn run<R>(&self, main: impl FnOnce(&mut ThreadCtx) -> R) -> RunOutcome<R> {
        let shared = &self.shared;
        let main_node = NodeId(0);
        let tid = shared.registry.register(main_node);
        NodeStats::bump(&shared.cluster.node(main_node).stats.threads_spawned);
        shared.progress.publish(tid, 0);
        let mut ctx = ThreadCtx {
            shared: Arc::clone(shared),
            thread: tid,
            node: main_node,
            clock: ThreadClock::new(),
        };

        let result = main(&mut ctx);
        // Program termination is a release point.
        shared.dsm.update_main_memory(main_node, &mut ctx.clock);

        // Wait (in real time) for threads the program did not join; their
        // final virtual times are already folded into the finish watermark.
        shared.progress.set_inactive(tid);
        while shared.active_children.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        shared.registry.mark_terminated(tid);
        shared.finish.record(ctx.clock.now());

        let node_stats = shared.cluster.all_stats();
        // Wire traffic exists only on socket backends; `SimTransport`
        // reports `None` and the report carries an empty table.
        let service_names = shared.cluster.service_names();
        let wire = shared
            .cluster
            .transport()
            .wire_stats()
            .unwrap_or_default()
            .into_iter()
            .map(|snap| {
                let name = service_names
                    .get(snap.service)
                    .copied()
                    .unwrap_or("unknown-service");
                (name.to_string(), snap)
            })
            .collect();
        // Exact tail percentile over every serving operation the program
        // recorded: sort once at run end rather than maintaining a digest
        // structure — op counts are bounded by the workload parameters.
        let serving_p99 = {
            let mut latencies = shared.serving_latencies.lock();
            if latencies.is_empty() {
                VTime::ZERO
            } else {
                latencies.sort_unstable();
                let rank = (latencies.len() as f64 * 0.99).ceil() as usize;
                VTime::from_ps(latencies[rank.clamp(1, latencies.len()) - 1])
            }
        };
        let report = RunReport {
            protocol: shared.config.protocol,
            cluster_label: shared.config.cluster.label().to_string(),
            nodes: shared.config.nodes,
            threads: shared.registry.total(),
            execution_time: shared.finish.max(),
            main_thread_time: ctx.clock.now(),
            node_stats,
            transport: shared.cluster.transport().name(),
            wire,
            serving_p99,
        };
        RunOutcome { result, report }
    }
}

impl std::fmt::Debug for HyperionRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyperionRuntime")
            .field("cluster", &self.shared.config.cluster.label())
            .field("nodes", &self.shared.config.nodes)
            .field("protocol", &self.shared.config.protocol.name())
            .finish()
    }
}

/// The result of a run: the program's return value plus the report.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// Whatever the program's `main` closure returned.
    pub result: R,
    /// Execution time and statistics.
    pub report: RunReport,
}

/// Virtual execution time and event statistics of one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Protocol used.
    pub protocol: ProtocolKind,
    /// Cluster label ("200MHz/Myrinet" or "450MHz/SCI").
    pub cluster_label: String,
    /// Number of nodes used.
    pub nodes: usize,
    /// Number of threads created (including `main`).
    pub threads: usize,
    /// Virtual execution time: the latest finishing time over all threads.
    pub execution_time: VTime,
    /// Virtual finishing time of the `main` thread.
    pub main_thread_time: VTime,
    /// Per-node statistics, indexed by node id.
    pub node_stats: Vec<StatsSnapshot>,
    /// Name of the transport backend that carried the RPCs ("sim",
    /// "unix-socket" or "tcp-socket").
    pub transport: &'static str,
    /// Per-service wire-traffic counters, `(service name, counters)` —
    /// empty under the in-process [`hyperion_pm2::SimTransport`], populated
    /// by socket backends with real byte counts and wall-clock round-trip
    /// times next to the modeled virtual-time spans.
    pub wire: Vec<(String, WireServiceSnapshot)>,
    /// Modeled 99th-percentile latency over every serving operation the
    /// program recorded via [`ThreadCtx::record_serving_op`]
    /// ([`VTime::ZERO`] when the program recorded none).
    pub serving_p99: VTime,
}

impl RunReport {
    /// Cluster-wide statistics total.
    pub fn total_stats(&self) -> StatsSnapshot {
        StatsSnapshot::total(self.node_stats.iter())
    }

    /// Execution time in virtual seconds (the unit of the paper's figures).
    pub fn seconds(&self) -> f64 {
        self.execution_time.as_secs_f64()
    }

    /// Serving operations completed cluster-wide (zero unless the program
    /// recorded operations via [`ThreadCtx::record_serving_op`]).
    pub fn serving_ops(&self) -> u64 {
        self.total_stats().serving_ops
    }

    /// Serving throughput in operations per modeled second.
    pub fn serving_ops_per_sec(&self) -> f64 {
        let secs = self.seconds();
        if secs <= 0.0 {
            0.0
        } else {
            self.serving_ops() as f64 / secs
        }
    }

    /// A short multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let t = self.total_stats();
        format!(
            "{} on {} × {} nodes: {}\n  checks={} faults={} mprotect={} page_loads={} diffs={} \
             bytes={} monitors={}/{}",
            self.protocol.name(),
            self.cluster_label,
            self.nodes,
            self.execution_time,
            t.locality_checks,
            t.page_faults,
            t.mprotect_calls,
            t.page_loads,
            t.diff_messages,
            t.bytes_moved(),
            t.monitor_enters,
            t.monitor_exits,
        )
    }
}

/// The per-thread execution context: the thread's placement, its virtual
/// clock and its view of the shared runtime.
///
/// Every Hyperion API call an application kernel makes — field accesses,
/// monitor operations, thread creation, explicit compute charging — goes
/// through a `ThreadCtx`, which is how the virtual-time accounting reaches
/// the right clock.
pub struct ThreadCtx {
    pub(crate) shared: Arc<RuntimeShared>,
    pub(crate) thread: ThreadId,
    pub(crate) node: NodeId,
    pub(crate) clock: ThreadClock,
}

impl ThreadCtx {
    /// The node this thread runs on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This thread's id.
    #[inline]
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// Current virtual time of this thread.
    #[inline]
    pub fn now(&self) -> VTime {
        self.clock.now()
    }

    /// Virtual time explicitly charged to this thread (excludes waiting).
    #[inline]
    pub fn charged(&self) -> VTime {
        self.clock.charged()
    }

    /// The access-detection protocol of this run.
    #[inline]
    pub fn protocol(&self) -> ProtocolKind {
        self.shared.config.protocol
    }

    /// The transport configuration of this run.  Kernels consult it for
    /// transport-aware restructurings (e.g. issuing a fetch a
    /// statement-window early only pays off when the transport can split
    /// the transaction).
    #[inline]
    pub fn transport(&self) -> &TransportConfig {
        &self.shared.config.transport
    }

    /// Number of nodes in this run.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.shared.config.nodes
    }

    /// Application threads per node configured for this run.
    #[inline]
    pub fn threads_per_node(&self) -> usize {
        self.shared.config.threads_per_node
    }

    /// The machine model of the cluster.
    #[inline]
    pub fn machine(&self) -> &MachineModel {
        self.shared.cluster.machine()
    }

    /// The CPU model of the cluster's nodes.
    #[inline]
    pub fn cpu(&self) -> &CpuModel {
        &self.shared.cluster.machine().cpu
    }

    /// Mutable access to the thread clock (used by the runtime layers).
    #[inline]
    pub(crate) fn clock_mut(&mut self) -> &mut ThreadClock {
        &mut self.clock
    }

    /// Synchronise this thread's clock with an externally observed virtual
    /// instant (the clock only ever moves forward).
    ///
    /// This is how synchronisation constructs propagate ordering: a thread
    /// that logically waits for an event occurring at time `t` can never
    /// proceed before `t`.  Application kernels rarely need it directly.
    #[inline]
    pub fn observe(&mut self, t: VTime) {
        self.clock.merge(t);
    }

    /// Publish this thread's current virtual time to the pacing table.
    pub(crate) fn publish_progress(&self) {
        self.shared
            .progress
            .publish(self.thread, self.clock.now().as_ps());
    }

    /// Mark this thread as blocked (it places no pacing constraint on the
    /// other threads until it publishes progress again).
    pub(crate) fn mark_blocked(&self) {
        self.shared.progress.set_inactive(self.thread);
    }

    /// Conservative virtual-time pacing (see
    /// [`HyperionConfig::pacing_window`]): if this thread has run more than
    /// the pacing window ahead of the slowest active thread, yield the host
    /// CPU until the laggards catch up.  Called by the monitor on every
    /// acquisition — the points where real-time scheduling would otherwise
    /// decide how dynamically balanced work is divided.
    ///
    /// The wait is bounded (≈100 ms of host time) so a mis-used nested
    /// monitor can degrade pacing but never deadlock the run.
    pub(crate) fn pace(&mut self) {
        let Some(window) = self.shared.config.pacing_window else {
            return;
        };
        self.publish_progress();
        let my = self.clock.now().as_ps();
        let limit = window.as_ps();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(100);
        let mut spins = 0u32;
        loop {
            match self.shared.progress.min_active() {
                None => break,
                Some(min) if my <= min.saturating_add(limit) => break,
                Some(_) => {}
            }
            if std::time::Instant::now() >= deadline {
                break;
            }
            spins += 1;
            if spins % 64 == 0 {
                // Give the host CPU to the laggards outright now and then.
                std::thread::sleep(std::time::Duration::from_micros(50));
            } else {
                std::thread::yield_now();
            }
        }
    }

    // ----- compute charging -------------------------------------------------

    /// Charge an explicit duration of local computation.
    #[inline]
    pub fn charge(&mut self, d: VTime) {
        self.clock.advance(d);
    }

    /// Charge `cycles` of local computation on this node's CPU.
    #[inline]
    pub fn charge_cycles(&mut self, cycles: f64) {
        let d = self.shared.cluster.machine().cpu.cycles(cycles);
        self.clock.advance(d);
    }

    /// Charge one execution of a pre-estimated kernel body.
    #[inline]
    pub fn charge_work(&mut self, work: &WorkEstimate) {
        self.clock.advance(work.per_iteration());
    }

    /// Charge `n` executions of a pre-estimated kernel body.
    #[inline]
    pub fn charge_iters(&mut self, work: &WorkEstimate, n: u64) {
        self.clock.advance(work.for_iterations(n));
    }

    /// Charge one execution of an instruction mix.
    pub fn charge_mix(&mut self, mix: &OpCounts) {
        let d = self.shared.cluster.machine().cpu.duration_for(mix);
        self.clock.advance(d);
    }

    /// Pre-compute the per-iteration duration of an instruction mix on this
    /// cluster's CPU.
    pub fn estimate(&self, mix: &OpCounts) -> WorkEstimate {
        self.shared.cluster.machine().cpu.estimate(mix)
    }

    /// Record one completed serving-style operation (a KV request, a vertex
    /// update) whose modeled latency was `latency` — the span of this
    /// thread's virtual clock across the operation.
    ///
    /// The counters feed the serving-throughput report rows; the raw
    /// latencies are kept until run end and folded into the exact
    /// 99th-percentile of [`RunReport::serving_p99`].
    pub fn record_serving_op(&mut self, latency: VTime) {
        let stats = &self.shared.cluster.node(self.node).stats;
        NodeStats::bump(&stats.serving_ops);
        NodeStats::bump_by(&stats.serving_op_ps_total, latency.as_ps());
        self.shared.serving_latencies.lock().push(latency.as_ps());
    }

    // ----- raw DSM access (Table 2 primitives) ------------------------------

    /// Read an 8-byte slot through the DSM (`get` of Table 2).
    #[inline]
    pub fn get_slot(&mut self, addr: GlobalAddr) -> u64 {
        self.shared.dsm.get(self.node, &mut self.clock, addr)
    }

    /// Write an 8-byte slot through the DSM (`put` of Table 2).
    #[inline]
    pub fn put_slot(&mut self, addr: GlobalAddr, value: u64) {
        self.shared.dsm.put(self.node, &mut self.clock, addr, value);
    }

    /// Explicitly prefetch the page containing `addr` (`loadIntoCache`).
    pub fn load_into_cache(&mut self, addr: GlobalAddr) {
        self.shared
            .dsm
            .load_into_cache(self.node, &mut self.clock, addr.page());
    }

    /// Prefetch every page of the `slots` consecutive slots starting at
    /// `addr`: one `loadIntoCache` per touched page.
    ///
    /// Under the blocking transport this pays each fetch up front, exactly
    /// as fetching at first use would; under
    /// [`hyperion_dsm::TransportConfig::overlapped_fetches`] the fetches are
    /// issued as split transactions and only their *residual* latency is
    /// charged when the data is first really used — this is the call a
    /// latency-hiding kernel places as early as its consistency window
    /// allows (right after the acquire that invalidated the cache).
    pub fn prefetch_slots(&mut self, addr: GlobalAddr, slots: usize) {
        if slots == 0 {
            return;
        }
        let first = addr.page();
        let last = addr.offset(slots as u64 - 1).page();
        self.shared
            .dsm
            .prefetch_span(self.node, &mut self.clock, first, last.0 - first.0 + 1);
    }

    /// Classify the locality of `addr` as seen from this thread's node.
    ///
    /// Under `java_ic` this *is* one in-line locality check and is charged
    /// (and counted) as such — the program performs exactly the check the
    /// compiled code would, but keeps the answer.  Under `java_pf` and
    /// `java_ad` locality is a free page-table lookup (those runtimes
    /// already maintain per-page state, so resident accesses cost nothing).
    ///
    /// A [`Locality::is_resident`] answer is a *snapshot*: it stays valid
    /// until this node's next cache invalidation (monitor entry, `join`,
    /// migration), after which remote pages must be re-detected.
    pub fn locality(&mut self, addr: GlobalAddr) -> Locality {
        let loc = self.shared.dsm.locality(self.node, addr.page());
        if self.shared.config.protocol == ProtocolKind::JavaIc {
            let node_ref = self.shared.cluster.node(self.node);
            NodeStats::bump(&node_ref.stats.locality_checks);
            let check = self.shared.cluster.machine().cpu.locality_check();
            self.clock.advance(check);
        }
        loc
    }

    /// Bulk read of `out.len()` consecutive slots starting at `addr`,
    /// paying access detection once per touched page instead of once per
    /// slot (the raw form of [`crate::object::HArray::read_slice`]).
    pub fn read_slots(&mut self, addr: GlobalAddr, out: &mut [u64]) {
        self.shared
            .dsm
            .read_slice(self.node, &mut self.clock, addr, out);
    }

    /// Bulk write of `values` to consecutive slots starting at `addr`,
    /// paying access detection once per touched page instead of once per
    /// slot (the raw form of [`crate::object::HArray::write_slice`]).
    pub fn write_slots(&mut self, addr: GlobalAddr, values: &[u64]) {
        self.shared
            .dsm
            .write_slice(self.node, &mut self.clock, addr, values);
    }

    /// Allocate `slots` contiguous 8-byte slots homed on `home`.
    pub fn alloc_slots(&mut self, slots: usize, home: NodeId) -> GlobalAddr {
        self.shared.allocator.alloc(slots, home)
    }

    /// Allocate `slots` slots on fresh pages homed on `home` (never shares a
    /// page with other allocations).
    pub fn alloc_slots_page_aligned(&mut self, slots: usize, home: NodeId) -> GlobalAddr {
        self.shared.allocator.alloc_page_aligned(slots, home)
    }

    /// Home node of the page containing `addr`.
    pub fn home_of(&self, addr: GlobalAddr) -> NodeId {
        self.shared.allocator.home_of_addr(addr)
    }

    // ----- thread management -------------------------------------------------

    /// Create a Hyperion thread, letting the load balancer pick its node
    /// (round-robin, as in the paper's Table 1).
    pub fn spawn(&mut self, body: impl FnOnce(&mut ThreadCtx) + Send + 'static) -> HThreadHandle {
        let node = self.shared.balancer.assign();
        self.spawn_on(node, body)
    }

    /// Create a Hyperion thread on a specific node.
    pub fn spawn_on(
        &mut self,
        node: NodeId,
        body: impl FnOnce(&mut ThreadCtx) + Send + 'static,
    ) -> HThreadHandle {
        assert!(
            node.index() < self.shared.config.nodes,
            "cannot place a thread on {node}: the run uses {} nodes",
            self.shared.config.nodes
        );
        // `Thread.start()` establishes a happens-before edge from the parent
        // to the child: flush the parent's pending modifications so the child
        // (running on another node's cache) observes them.
        self.shared
            .dsm
            .update_main_memory(self.node, &mut self.clock);

        let machine = self.shared.cluster.machine();
        let create_cost = machine.cpu.cycles(machine.dsm.thread_create_cycles);

        // Parent-side cost of the creation request.
        self.clock.advance(create_cost);
        let mut start = self.clock.now();
        if node != self.node {
            // The creation request travels to the target node.
            start += self.shared.cluster.control_message_cost();
        }
        // Child-side initialisation before user code runs.
        start += create_cost;

        let tid = self.shared.registry.register(node);
        NodeStats::bump(&self.shared.cluster.node(node).stats.threads_spawned);
        self.shared.active_children.fetch_add(1, Ordering::AcqRel);
        // Publish the child's starting time before the OS thread exists so
        // threads that are already running cannot race past it unpaced.
        self.shared.progress.publish(tid, start.as_ps());

        let shared = Arc::clone(&self.shared);
        let os_handle = std::thread::Builder::new()
            .name(format!("hyperion-{}", tid))
            .spawn(move || {
                let mut ctx = ThreadCtx {
                    shared: Arc::clone(&shared),
                    thread: tid,
                    node,
                    clock: ThreadClock::starting_at(start),
                };
                body(&mut ctx);
                // Thread termination is a release point: the child's writes
                // must reach main memory so a joining thread can observe them.
                shared.dsm.update_main_memory(node, &mut ctx.clock);
                let end = ctx.clock.now();
                shared.registry.mark_terminated(tid);
                shared.finish.record(end);
                shared.progress.set_inactive(tid);
                shared.active_children.fetch_sub(1, Ordering::AcqRel);
                end
            })
            .expect("failed to spawn OS thread for Hyperion thread");

        HThreadHandle::new(tid, node, os_handle)
    }

    /// Join a Hyperion thread: blocks (in real time) until the thread has
    /// finished and merges its final virtual time into this thread's clock.
    pub fn join(&mut self, handle: HThreadHandle) -> VTime {
        let machine = self.shared.cluster.machine();
        // While blocked on the child this thread places no pacing constraint
        // on the others.
        self.shared.progress.set_inactive(self.thread);
        let end = handle.into_end_time();
        self.shared
            .progress
            .publish(self.thread, self.clock.now().as_ps());
        self.clock.merge(end);
        self.clock
            .advance(machine.cpu.cycles(machine.dsm.monitor_local_cycles));
        // `Thread.join()` is an acquire point: invalidate this node's cache
        // so reads after the join observe everything the joined thread wrote.
        self.shared.dsm.invalidate_cache(self.node, &mut self.clock);
        end
    }

    /// Migrate this thread to another node (PM2 thread-migration extension).
    ///
    /// Subsequent accesses are performed from the new node; the move pays a
    /// control-message round trip plus a thread-creation-sized cost on the
    /// destination.
    pub fn migrate_to(&mut self, node: NodeId) {
        assert!(
            node.index() < self.shared.config.nodes,
            "cannot migrate to {node}: the run uses {} nodes",
            self.shared.config.nodes
        );
        if node == self.node {
            return;
        }
        // Leaving a node is a release point (pending writes must not be
        // stranded in the old node's cache) and arriving on a node is an
        // acquire point (the thread must not read values staler than what it
        // could already observe).
        self.shared
            .dsm
            .update_main_memory(self.node, &mut self.clock);
        let machine = self.shared.cluster.machine();
        let cost = self.shared.cluster.control_message_cost().times(2)
            + machine.cpu.cycles(machine.dsm.thread_create_cycles);
        self.clock.advance(cost);
        NodeStats::bump(&self.shared.cluster.node(self.node).stats.threads_migrated);
        self.shared.registry.migrate(self.thread, node);
        self.node = node;
        self.shared.dsm.invalidate_cache(self.node, &mut self.clock);
    }
}

impl std::fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("thread", &self.thread)
            .field("node", &self.node)
            .field("now", &self.clock.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperion_model::myrinet_200;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    fn config_validation_catches_mistakes() {
        assert_eq!(
            config(0, ProtocolKind::JavaIc).validate(),
            Err(ConfigError::ZeroNodes)
        );
        assert_eq!(
            config(13, ProtocolKind::JavaIc).validate(),
            Err(ConfigError::ExceedsCluster {
                requested: 13,
                available: 12
            })
        );
        let mut c = config(2, ProtocolKind::JavaPf);
        c.threads_per_node = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroThreadsPerNode));
        assert!(config(12, ProtocolKind::JavaPf).validate().is_ok());
        assert_eq!(
            config(4, ProtocolKind::JavaIc)
                .with_threads_per_node(2)
                .total_app_threads(),
            8
        );
        // Errors render.
        assert!(format!("{}", ConfigError::ZeroNodes).contains("at least one node"));
    }

    #[test]
    fn builder_assembles_and_validates_configs() {
        let built = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(4)
            .protocol(ProtocolKind::JavaPf)
            .build()
            .unwrap();
        let legacy = config(4, ProtocolKind::JavaPf);
        assert_eq!(built.nodes, legacy.nodes);
        assert_eq!(built.protocol, legacy.protocol);
        assert_eq!(built.threads_per_node, legacy.threads_per_node);
        assert_eq!(built.pacing_window, legacy.pacing_window);

        let custom = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(2)
            .protocol(ProtocolKind::JavaIc)
            .threads_per_node(3)
            .pacing_window(None)
            .build()
            .unwrap();
        assert_eq!(custom.total_app_threads(), 6);
        assert_eq!(custom.pacing_window, None);
    }

    #[test]
    fn builder_reports_missing_and_invalid_fields() {
        assert_eq!(
            HyperionConfig::builder().build().unwrap_err(),
            ConfigError::MissingField("cluster")
        );
        assert_eq!(
            HyperionConfig::builder()
                .cluster(myrinet_200())
                .build()
                .unwrap_err(),
            ConfigError::MissingField("nodes")
        );
        assert_eq!(
            HyperionConfig::builder()
                .cluster(myrinet_200())
                .nodes(2)
                .build()
                .unwrap_err(),
            ConfigError::MissingField("protocol")
        );
        assert_eq!(
            HyperionConfig::builder()
                .cluster(myrinet_200())
                .nodes(0)
                .protocol(ProtocolKind::JavaIc)
                .build()
                .unwrap_err(),
            ConfigError::ZeroNodes
        );
        assert_eq!(
            HyperionConfig::builder()
                .cluster(myrinet_200())
                .nodes(13)
                .protocol(ProtocolKind::JavaIc)
                .build()
                .unwrap_err(),
            ConfigError::ExceedsCluster {
                requested: 13,
                available: 12
            }
        );
        assert!(format!("{}", ConfigError::MissingField("protocol")).contains("protocol"));
    }

    #[test]
    fn adaptive_params_flow_from_builder_to_the_dsm_engine() {
        let tuned = AdaptiveParams {
            hi_multiple: 3.0,
            lo_multiple: 1.0,
            max_batch_pages: 4,
            min_prefetch_streak: 1,
            online_thresholds: false,
        };
        let built = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(2)
            .protocol(ProtocolKind::JavaAd)
            .adaptive(tuned.clone())
            .build()
            .unwrap();
        assert_eq!(built.adaptive, tuned);
        let rt = HyperionRuntime::new(built).unwrap();
        let n_star = myrinet_200().machine.adaptive_break_even();
        let (hi, lo) = rt.dsm().adaptive_thresholds();
        assert_eq!(hi, (n_star as f64 * 3.0).ceil() as u64);
        assert_eq!(lo, n_star);

        // Defaults apply when the builder field is left alone.
        let default_config = config(2, ProtocolKind::JavaAd);
        assert_eq!(default_config.adaptive, AdaptiveParams::default());
        assert_eq!(default_config.with_adaptive(tuned.clone()).adaptive, tuned);
    }

    #[test]
    fn adaptive_param_validation_rejects_nonsense() {
        let mut c = config(2, ProtocolKind::JavaAd);
        c.adaptive.max_batch_pages = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Policy(PolicyError::ZeroAdaptiveBatch))
        );
        let mut c = config(2, ProtocolKind::JavaAd);
        c.adaptive.lo_multiple = 2.0; // >= hi_multiple
        assert_eq!(
            c.validate(),
            Err(ConfigError::Policy(PolicyError::InvalidHysteresis))
        );
        assert!(format!("{}", c.validate().unwrap_err()).contains("hysteresis"));
        // The wrapped policy error is exposed as the error's source.
        use std::error::Error as _;
        assert!(c.validate().unwrap_err().source().is_some());
    }

    #[test]
    fn policy_validation_rejects_illegal_selections_with_named_variants() {
        // Zero knobs on *enabled* features are policy errors...
        let mut c = config(2, ProtocolKind::JavaPf);
        c.transport = TransportConfig::latency_hiding();
        c.transport.migration_streak = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Policy(PolicyError::ZeroMigrationStreak))
        );
        let mut c = config(2, ProtocolKind::JavaPf);
        c.transport = TransportConfig::directory();
        c.transport.hint_window = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Policy(PolicyError::ZeroHintWindow))
        );
        let mut c = config(2, ProtocolKind::JavaPf);
        c.transport.max_flush_batch_pages = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Policy(PolicyError::ZeroFlushBatch))
        );
        let mut c = config(2, ProtocolKind::JavaPf);
        c.transport.prefetch_hints = true;
        c.transport.overlapped_fetches = false;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Policy(
                PolicyError::HintsRequireOverlappedFetches
            ))
        );
        // ...while a zero knob on a *disabled* feature selects a Noop policy
        // and is fine.
        let mut c = config(2, ProtocolKind::JavaPf);
        c.transport.migration_streak = 0;
        assert!(!c.transport.home_migration);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn explicit_policies_flow_from_builder_to_the_engine() {
        use hyperion_dsm::policy::{
            DetectionSpec, FlushSpec, MigrationSpec, PredictorSpec, ReplicationSpec, TopologySpec,
        };
        let spec = PolicySpec {
            detection: DetectionSpec::PageProtect,
            predictor: PredictorSpec::Noop,
            migration: MigrationSpec::MajorityVote { streak: 2 },
            flush: FlushSpec::Batched { max_pages: 4 },
            replication: ReplicationSpec::Noop,
            topology: TopologySpec::Flat,
        };
        let built = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(2)
            .protocol(ProtocolKind::JavaPf)
            .policies(spec.clone())
            .build()
            .unwrap();
        assert_eq!(built.policy_spec(), spec);
        let rt = HyperionRuntime::new(built).unwrap();
        assert_eq!(rt.dsm().policies().migration.name(), "mig");
        assert_eq!(rt.dsm().policies().predictor.name(), "nohints");
        assert_eq!(rt.dsm().policies().flush.name(), "sync");
        assert_eq!(rt.dsm().policies().detection.name(), "java_pf");

        // A spec whose detection choice disagrees with `protocol` is
        // rejected before any cluster state exists.
        let mismatched = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(2)
            .protocol(ProtocolKind::JavaIc)
            .policies(spec)
            .build()
            .unwrap_err();
        assert_eq!(
            mismatched,
            ConfigError::PolicyMismatch {
                protocol: ProtocolKind::JavaIc,
                policies: ProtocolKind::JavaPf,
            }
        );
        assert!(format!("{mismatched}").contains("java_pf"));
    }

    #[test]
    fn adaptive_runtime_runs_programs_end_to_end() {
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaAd)).unwrap();
        assert_eq!(rt.protocol(), ProtocolKind::JavaAd);
        let out = rt.run(|ctx| {
            let a = ctx.alloc_slots(4, NodeId(1));
            ctx.put_slot(a, 77);
            ctx.get_slot(a)
        });
        assert_eq!(out.result, 77);
        assert!(out.report.summary().contains("java_ad"));
    }

    #[test]
    fn locality_query_classifies_and_charges_per_protocol() {
        // java_pf: the query is free.
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaPf)).unwrap();
        rt.run(|ctx| {
            let local = ctx.alloc_slots(4, NodeId(0));
            let remote = ctx.alloc_slots(4, NodeId(1));
            let t0 = ctx.now();
            assert_eq!(ctx.locality(local), Locality::Local);
            assert_eq!(ctx.locality(remote), Locality::Remote);
            assert_eq!(ctx.now(), t0, "pf locality queries are free");
            let _ = ctx.get_slot(remote); // fault + fetch
            assert_eq!(ctx.locality(remote), Locality::CachedRemote);
        });
        assert_eq!(rt.cluster().total_stats().locality_checks, 0);

        // java_ic: the query is one in-line check, charged and counted.
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaIc)).unwrap();
        rt.run(|ctx| {
            let remote = ctx.alloc_slots(4, NodeId(1));
            let t0 = ctx.now();
            assert_eq!(ctx.locality(remote), Locality::Remote);
            assert!(ctx.now() > t0, "ic locality queries cost one check");
        });
        assert_eq!(rt.cluster().total_stats().locality_checks, 1);
    }

    #[test]
    fn bulk_slot_transfers_round_trip_through_the_dsm() {
        for protocol in ProtocolKind::all() {
            let rt = HyperionRuntime::new(config(2, protocol)).unwrap();
            let out = rt.run(|ctx| {
                let addr = ctx.alloc_slots(64, NodeId(1));
                let values: Vec<u64> = (0..64u64).map(|v| v * v).collect();
                ctx.write_slots(addr, &values);
                let mut back = vec![0u64; 64];
                ctx.read_slots(addr, &mut back);
                (values, back)
            });
            let (values, back) = out.result;
            assert_eq!(values, back, "{protocol:?}");
            let total = out.report.total_stats();
            assert_eq!(total.bulk_reads, 1);
            assert_eq!(total.bulk_writes, 1);
            assert_eq!(total.field_reads, 64);
            assert_eq!(total.field_writes, 64);
        }
    }

    #[test]
    fn runtime_rejects_invalid_config() {
        assert!(HyperionRuntime::new(config(0, ProtocolKind::JavaIc)).is_err());
        let rt = HyperionRuntime::new(config(3, ProtocolKind::JavaPf)).unwrap();
        assert_eq!(rt.nodes(), 3);
        assert_eq!(rt.protocol(), ProtocolKind::JavaPf);
        assert_eq!(rt.cluster().num_nodes(), 3);
    }

    #[test]
    fn run_reports_main_thread_time_and_stats() {
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaIc)).unwrap();
        let out = rt.run(|ctx| {
            ctx.charge(VTime::from_ms(5));
            let a = ctx.alloc_slots(4, NodeId(1));
            ctx.put_slot(a, 99);
            ctx.get_slot(a)
        });
        assert_eq!(out.result, 99);
        assert_eq!(out.report.nodes, 2);
        assert_eq!(out.report.threads, 1);
        assert!(out.report.execution_time >= VTime::from_ms(5));
        assert_eq!(out.report.execution_time, out.report.main_thread_time);
        let total = out.report.total_stats();
        assert_eq!(total.field_writes, 1);
        assert_eq!(total.field_reads, 1);
        assert_eq!(total.locality_checks, 2);
        assert!(out.report.summary().contains("java_ic"));
        assert!(out.report.seconds() >= 0.005);
    }

    #[test]
    fn spawned_threads_extend_execution_time_beyond_main() {
        let rt = HyperionRuntime::new(config(4, ProtocolKind::JavaPf)).unwrap();
        let out = rt.run(|ctx| {
            let mut handles = Vec::new();
            for i in 0..4u32 {
                handles.push(ctx.spawn_on(NodeId(i), move |worker| {
                    worker.charge(VTime::from_ms(10 * (i as u64 + 1)));
                }));
            }
            for h in handles {
                ctx.join(h);
            }
        });
        // The slowest worker charged 40 ms; everything else is overhead on
        // top of that.
        assert!(out.report.execution_time >= VTime::from_ms(40));
        assert_eq!(out.report.threads, 5);
        // Main joined everyone, so its clock includes the slowest worker.
        assert_eq!(out.report.main_thread_time, out.report.execution_time);
        // One thread was spawned on each node (plus main on node 0).
        let spawned: Vec<u64> = out
            .report
            .node_stats
            .iter()
            .map(|s| s.threads_spawned)
            .collect();
        assert_eq!(spawned, vec![2, 1, 1, 1]);
    }

    #[test]
    fn unjoined_threads_are_still_waited_for_and_counted() {
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaIc)).unwrap();
        let out = rt.run(|ctx| {
            let _ = ctx.spawn(|worker| {
                worker.charge(VTime::from_ms(25));
            });
            // Dropped handle: main does not join.
            ctx.charge(VTime::from_ms(1));
        });
        assert!(out.report.execution_time >= VTime::from_ms(25));
        // Main's own time does not include the worker.
        assert!(out.report.main_thread_time < out.report.execution_time);
    }

    #[test]
    fn load_balancer_places_spawned_threads_round_robin() {
        let rt = HyperionRuntime::new(config(3, ProtocolKind::JavaIc)).unwrap();
        let out = rt.run(|ctx| {
            let handles: Vec<_> = (0..6).map(|_| ctx.spawn(|_| {})).collect();
            let nodes: Vec<u32> = handles.iter().map(|h| h.node().0).collect();
            for h in handles {
                ctx.join(h);
            }
            nodes
        });
        assert_eq!(out.result, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn remote_spawn_costs_more_than_local_spawn() {
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaPf)).unwrap();
        let out = rt.run(|ctx| {
            let before = ctx.now();
            let h_local = ctx.spawn_on(NodeId(0), |_| {});
            let after_local = ctx.now();
            let h_remote = ctx.spawn_on(NodeId(1), |_| {});
            let after_remote = ctx.now();
            ctx.join(h_local);
            ctx.join(h_remote);
            (after_local - before, after_remote - after_local)
        });
        let (local_cost, remote_cost) = out.result;
        // Parent-side charge is identical; the difference is in the child's
        // start time, so here both should be equal...
        assert_eq!(local_cost, remote_cost);
        // ...but the remote child starts later than a local child would.
        assert!(out.report.execution_time >= remote_cost);
    }

    #[test]
    #[should_panic(expected = "cannot place a thread")]
    fn spawning_on_nonexistent_node_panics() {
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaIc)).unwrap();
        rt.run(|ctx| {
            let _ = ctx.spawn_on(NodeId(5), |_| {});
        });
    }

    #[test]
    fn migration_changes_the_accessing_node() {
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaPf)).unwrap();
        let out = rt.run(|ctx| {
            let a = ctx.alloc_slots(4, NodeId(1));
            ctx.put_slot(a, 5); // remote access from node 0: one fault
            let faults_before = ctx.shared.cluster.node_stats(NodeId(0)).page_faults;
            ctx.migrate_to(NodeId(1));
            assert_eq!(ctx.node(), NodeId(1));
            let v = ctx.get_slot(a); // now local to the home: no new fault
            (faults_before, v)
        });
        let (faults_before, v) = out.result;
        assert_eq!(faults_before, 1);
        assert_eq!(v, 5);
        let s = out.report.node_stats[0];
        assert_eq!(s.page_faults, 1);
        assert_eq!(s.threads_migrated, 1);
    }

    #[test]
    fn migrating_to_the_same_node_is_free() {
        let rt = HyperionRuntime::new(config(2, ProtocolKind::JavaIc)).unwrap();
        let out = rt.run(|ctx| {
            let before = ctx.now();
            ctx.migrate_to(NodeId(0));
            ctx.now() - before
        });
        assert_eq!(out.result, VTime::ZERO);
    }

    #[test]
    fn charge_helpers_agree_with_the_cpu_model() {
        let rt = HyperionRuntime::new(config(1, ProtocolKind::JavaIc)).unwrap();
        let out = rt.run(|ctx| {
            let mix = OpCounts::new().with(hyperion_model::Op::FpAdd, 4.0);
            let est = ctx.estimate(&mix);
            let t0 = ctx.now();
            ctx.charge_mix(&mix);
            let t1 = ctx.now();
            ctx.charge_work(&est);
            let t2 = ctx.now();
            ctx.charge_iters(&est, 10);
            let t3 = ctx.now();
            ctx.charge_cycles(200.0);
            let t4 = ctx.now();
            (t1 - t0, t2 - t1, t3 - t2, t4 - t3)
        });
        let (a, b, c, d) = out.result;
        assert_eq!(a, b);
        assert_eq!(c, b.times(10));
        // 200 cycles at 200 MHz is exactly 1 us.
        assert_eq!(d, VTime::from_us(1));
    }
}
