//! The memory subsystem façade: the five primitives of the paper's Table 2.
//!
//! | Primitive          | Function                         |
//! |--------------------|----------------------------------|
//! | `loadIntoCache`    | [`load_into_cache`]              |
//! | `invalidateCache`  | [`invalidate_cache`]             |
//! | `updateMainMemory` | [`update_main_memory`]           |
//! | `get`              | [`get`] / [`ThreadCtx::get_slot`]|
//! | `put`              | [`put`] / [`ThreadCtx::put_slot`]|
//!
//! Application code normally uses the typed object layer
//! ([`crate::object`]) and the monitors ([`crate::monitor`]) — which call
//! these primitives internally — but the raw surface is exposed both for
//! completeness and for the micro-benchmarks that measure each primitive in
//! isolation (`benches/primitives.rs`).

use hyperion_pm2::GlobalAddr;

use crate::runtime::ThreadCtx;

/// `get`: read an 8-byte slot through the DSM.
#[inline]
pub fn get(ctx: &mut ThreadCtx, addr: GlobalAddr) -> u64 {
    ctx.get_slot(addr)
}

/// `put`: write an 8-byte slot through the DSM.
#[inline]
pub fn put(ctx: &mut ThreadCtx, addr: GlobalAddr, value: u64) {
    ctx.put_slot(addr, value)
}

/// `loadIntoCache`: prefetch the page containing `addr` into the calling
/// node's cache.
pub fn load_into_cache(ctx: &mut ThreadCtx, addr: GlobalAddr) {
    ctx.load_into_cache(addr)
}

/// `invalidateCache`: invalidate every cached (non-home) page on the calling
/// node.  Performed automatically on monitor entry.
pub fn invalidate_cache(ctx: &mut ThreadCtx) {
    crate::jmm::acquire(ctx)
}

/// `updateMainMemory`: flush all recorded modifications to their home nodes.
/// Performed automatically on monitor exit.
pub fn update_main_memory(ctx: &mut ThreadCtx) {
    crate::jmm::release(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;
    use hyperion_pm2::NodeId;

    #[test]
    fn table2_primitives_compose_into_a_producer_consumer_exchange() {
        for protocol in ProtocolKind::all() {
            let rt = HyperionRuntime::new(HyperionConfig::new(myrinet_200(), 2, protocol)).unwrap();
            let out = rt.run(|ctx| {
                let addr = ctx.alloc_slots(4, NodeId(1));
                // Producer side (running on node 0, writing remote memory).
                load_into_cache(ctx, addr);
                put(ctx, addr, 7);
                put(ctx, addr.offset(1), 8);
                update_main_memory(ctx);
                // Consumer side re-reads from main memory.
                invalidate_cache(ctx);
                get(ctx, addr) + get(ctx, addr.offset(1))
            });
            assert_eq!(out.result, 15, "{protocol:?}");
            let total = out.report.total_stats();
            assert!(total.page_loads >= 1);
            assert_eq!(total.diff_slots_flushed, 2);
        }
    }
}
