//! Java Memory Model actions.
//!
//! Hyperion implements the (pre-JSR-133) Java Memory Model as a variant of
//! release consistency (§3.1): threads may work on locally cached copies of
//! objects, and consistency is enforced at monitor boundaries:
//!
//! * **acquire** (monitor entry): the node's cache of remote objects is
//!   invalidated, so every object read inside the critical section is
//!   guaranteed to be re-fetched from (and therefore as recent as) main
//!   memory;
//! * **release** (monitor exit): all modifications recorded since the last
//!   flush are transmitted to the objects' home nodes with field
//!   granularity.
//!
//! Both access-detection protocols share these actions; they differ only in
//! the mechanics (and cost) of detecting the first access to an invalidated
//! page afterwards.  This module centralises the two actions so the monitor,
//! `Thread.join` and the barrier all apply identical semantics.

use hyperion_dsm::DeferredFlush;

use crate::runtime::ThreadCtx;

/// The consistency action performed at a synchronisation boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JmmAction {
    /// Monitor entry / lock acquisition.
    Acquire,
    /// Monitor exit / lock release.
    Release,
}

/// Perform the acquire action for the calling thread: invalidate the node's
/// cache of remote objects (`invalidateCache` of Table 2).
pub fn acquire(ctx: &mut ThreadCtx) {
    let node = ctx.node();
    let shared = std::sync::Arc::clone(&ctx.shared);
    shared.dsm.invalidate_cache(node, ctx.clock_mut());
}

/// Perform the release action for the calling thread: flush all recorded
/// modifications to their home nodes (`updateMainMemory` of Table 2).
pub fn release(ctx: &mut ThreadCtx) {
    let node = ctx.node();
    let shared = std::sync::Arc::clone(&ctx.shared);
    shared.dsm.update_main_memory(node, ctx.clock_mut());
}

/// Perform the release action with deferred flushing: the diff batches are
/// issued as split transactions and only the issue path is charged here.
/// The returned [`DeferredFlush`] (if any) must be stored on the monitor
/// being released so its *next acquire* merges the completion — the JMM's
/// release/acquire edge is per-monitor, which is exactly why the deferral
/// is legal.  Only the monitor layer may call this; every release with a
/// thread-level happens-before edge (`Thread.start`, `join`, migration,
/// program termination) uses the blocking [`release`].
pub fn release_deferred(ctx: &mut ThreadCtx) -> Option<DeferredFlush> {
    let node = ctx.node();
    let shared = std::sync::Arc::clone(&ctx.shared);
    shared
        .dsm
        .update_main_memory_deferred(node, ctx.clock_mut())
}

/// Perform one of the two actions (convenience for tests and tools).
pub fn perform(ctx: &mut ThreadCtx, action: JmmAction) {
    match action {
        JmmAction::Acquire => acquire(ctx),
        JmmAction::Release => release(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;
    use hyperion_pm2::NodeId;

    fn runtime(protocol: ProtocolKind) -> HyperionRuntime {
        HyperionRuntime::new(HyperionConfig::new(myrinet_200(), 2, protocol)).unwrap()
    }

    #[test]
    fn release_then_acquire_makes_remote_writes_visible() {
        for protocol in ProtocolKind::all() {
            let rt = runtime(protocol);
            let out = rt.run(|ctx| {
                let cell = ctx.alloc_object(1, NodeId(1));
                // Cache the page locally, then write through the cache.
                cell.put(ctx, 0, 41u64);
                cell.put(ctx, 0, 42u64);
                release(ctx);
                // Home now holds the value; invalidate and re-read.
                acquire(ctx);
                cell.get::<u64>(ctx, 0)
            });
            assert_eq!(out.result, 42, "{protocol:?}");
            let total = out.report.total_stats();
            assert!(total.diff_messages >= 1);
            assert_eq!(total.diff_slots_flushed, 1);
        }
    }

    #[test]
    fn acquire_invalidates_cached_remote_pages() {
        let rt = runtime(ProtocolKind::JavaPf);
        let out = rt.run(|ctx| {
            let arr = ctx.alloc_array::<u64>(4, NodeId(1));
            let _ = arr.get(ctx, 0); // one fault + load
            acquire(ctx); // drops the copy
            let _ = arr.get(ctx, 0); // second fault + load
            perform(ctx, JmmAction::Release); // nothing dirty: no diffs
        });
        let s = out.report.node_stats[0];
        assert_eq!(s.page_loads, 2);
        assert_eq!(s.page_faults, 2);
        assert_eq!(s.cache_invalidations, 1);
        assert_eq!(s.diff_messages, 0);
    }

    #[test]
    fn actions_have_distinct_effects_on_stats() {
        let rt = runtime(ProtocolKind::JavaIc);
        let out = rt.run(|ctx| {
            let arr = ctx.alloc_array::<u64>(4, NodeId(1));
            arr.put(ctx, 1, 5);
            perform(ctx, JmmAction::Release);
            perform(ctx, JmmAction::Acquire);
        });
        let s = out.report.node_stats[0];
        assert_eq!(s.diff_messages, 1);
        assert_eq!(s.cache_invalidations, 1);
        assert_eq!(s.pages_invalidated, 1);
    }
}
