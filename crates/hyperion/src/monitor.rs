//! Java monitors with Java-Memory-Model semantics.
//!
//! Every `synchronized` block of the original Java benchmarks becomes an
//! [`HMonitor::enter`] / [`HMonitor::exit`] pair (or the scoped
//! [`HMonitor::synchronized`] helper); `Object.wait` / `Object.notifyAll`
//! map to [`HMonitor::wait_monitor`] / [`HMonitor::notify_all`].
//!
//! Two pieces of accounting make the monitors faithful to the paper:
//!
//! * **Consistency actions** — entry performs the acquire action
//!   (invalidate the node's object cache), exit performs the release action
//!   (flush field-granularity diffs), as described in §3.1.  Under `java_pf`
//!   the entry-side invalidation additionally re-protects the cached pages,
//!   which is where the protocol's `mprotect` traffic comes from.
//! * **Virtual-time ordering** — the monitor carries the virtual release
//!   time of its previous holder; a thread entering the monitor can never be
//!   earlier than that, so critical sections are serialised in virtual time
//!   just as they are in real time.
//!
//! A monitor lives on a home node (the home of the Java object it guards);
//! acquiring it from another node pays a control-message round trip.

use std::sync::Arc;

use hyperion_model::{NodeStats, VTime};
use hyperion_pm2::NodeId;
use parking_lot::{Condvar, Mutex};

use crate::jmm;
use crate::runtime::ThreadCtx;

#[derive(Debug)]
struct MonitorState {
    held: bool,
    last_release: VTime,
    notify_epoch: u64,
    notify_time: VTime,
    /// Deferred release flushing: per-home `(issue, completion)` watermarks
    /// of flush RPCs handed off by previous releases of this monitor and
    /// not yet absorbed by an acquire.  Kept per home so one slow home's
    /// completion does not mask how much of every *other* home's round
    /// trip the overlap hid.  Empty means nothing is pending.
    deferred: Vec<hyperion_dsm::HomeFlushMark>,
}

impl MonitorState {
    /// Take the pending deferred-flush marks, leaving none behind.  The
    /// caller (an acquiring thread) must merge every completion into its
    /// clock — this is the hand-off where the residual latency is charged.
    fn take_deferred(&mut self) -> Vec<hyperion_dsm::HomeFlushMark> {
        std::mem::take(&mut self.deferred)
    }

    /// Stack one more deferred flush onto the pending record, merging its
    /// per-home marks into any already parked for the same homes.
    fn push_deferred(&mut self, d: hyperion_dsm::DeferredFlush) {
        for mark in d.homes {
            match self.deferred.iter_mut().find(|m| m.home == mark.home) {
                Some(m) => {
                    m.issue = m.issue.max(mark.issue);
                    m.completion = m.completion.max(mark.completion);
                }
                None => self.deferred.push(mark),
            }
        }
    }
}

/// Merge the pending deferred-flush completions into the acquiring thread's
/// clock, crediting per home the cycles the overlap hid (the part of each
/// home's flush round trip that elapsed before the hand-off).
fn absorb_deferred(ctx: &mut ThreadCtx, marks: Vec<hyperion_dsm::HomeFlushMark>) {
    if marks.is_empty() {
        return;
    }
    let now = ctx.now();
    let mut hidden_ps = 0u64;
    let mut completion = VTime::ZERO;
    for m in &marks {
        hidden_ps += now
            .as_ps()
            .min(m.completion.as_ps())
            .saturating_sub(m.issue.as_ps());
        completion = completion.max(m.completion);
    }
    if hidden_ps > 0 {
        let cycles = hidden_ps as f64 / ctx.cpu().ps_per_cycle();
        let node_ref = ctx.shared.cluster.node(ctx.node());
        NodeStats::bump_by(
            &node_ref.stats.flush_overlap_cycles_hidden,
            (cycles as u64).max(1),
        );
    }
    ctx.clock_mut().merge(completion);
}

#[derive(Debug)]
struct MonitorInner {
    home: NodeId,
    state: Mutex<MonitorState>,
    cv: Condvar,
}

/// A Java monitor (the lock + wait-set associated with a Java object).
#[derive(Clone, Debug)]
pub struct HMonitor {
    inner: Arc<MonitorInner>,
}

impl HMonitor {
    /// Create a monitor homed on `home`.  Prefer
    /// [`ThreadCtx::new_monitor`](crate::runtime::ThreadCtx) in application
    /// code.
    pub fn new(home: NodeId) -> Self {
        HMonitor {
            inner: Arc::new(MonitorInner {
                home,
                state: Mutex::new(MonitorState {
                    held: false,
                    last_release: VTime::ZERO,
                    notify_epoch: 0,
                    notify_time: VTime::ZERO,
                    deferred: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// The node this monitor lives on.
    pub fn home(&self) -> NodeId {
        self.inner.home
    }

    /// Enter the monitor (`monitorenter`): acquire the lock, then perform the
    /// JMM acquire action.
    pub fn enter(&self, ctx: &mut ThreadCtx) {
        // Conservative pacing: do not let this thread race (in host time)
        // past the slowest active thread, otherwise the host scheduler — not
        // virtual time — would decide who wins contended acquisitions such
        // as the TSP work queue or the Barnes-Hut chunk counter.
        ctx.pace();
        let machine = ctx.machine().clone();
        let node_ref = ctx.shared.cluster.node(ctx.node());
        NodeStats::bump(&node_ref.stats.monitor_enters);

        if self.inner.home != ctx.node() {
            // Lock acquisition request travels to the monitor's home node and
            // the grant travels back.
            NodeStats::bump(&node_ref.stats.remote_monitor_acquires);
            let round_trip = ctx.shared.cluster.control_message_cost().times(2)
                + machine.cpu.cycles(machine.dsm.protocol_server_cycles);
            ctx.charge(round_trip);
        }

        {
            let mut st = self.inner.state.lock();
            while st.held {
                self.inner.cv.wait(&mut st);
            }
            st.held = true;
            let release = st.last_release;
            // Deferred release flushing: a flush handed off by a previous
            // release of *this* monitor must complete no later than this
            // acquire — merge its completions here, charging the residual.
            let pending = st.take_deferred();
            drop(st);
            ctx.clock_mut().merge(release);
            absorb_deferred(ctx, pending);
        }
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));

        jmm::acquire(ctx);
    }

    /// Exit the monitor (`monitorexit`): perform the JMM release action, then
    /// release the lock.
    ///
    /// Under [`hyperion_dsm::TransportConfig::deferred_flush`] the release
    /// flush is issued as split transactions and its completion watermark is
    /// parked on this monitor; the releasing thread keeps computing and the
    /// *next acquire of this monitor* pays whatever latency compute did not
    /// hide.
    pub fn exit(&self, ctx: &mut ThreadCtx) {
        let deferred = jmm::release_deferred(ctx);
        let machine = ctx.machine().clone();
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));

        let node_ref = ctx.shared.cluster.node(ctx.node());
        NodeStats::bump(&node_ref.stats.monitor_exits);

        let mut st = self.inner.state.lock();
        assert!(st.held, "exit of a monitor that is not held");
        st.held = false;
        st.last_release = st.last_release.max(ctx.now());
        if let Some(d) = deferred {
            st.push_deferred(d);
        }
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Execute `body` inside the monitor (a `synchronized` block).
    pub fn synchronized<R>(
        &self,
        ctx: &mut ThreadCtx,
        body: impl FnOnce(&mut ThreadCtx) -> R,
    ) -> R {
        self.enter(ctx);
        let r = body(ctx);
        self.exit(ctx);
        r
    }

    /// `Object.wait()`: atomically release the monitor and wait for a
    /// notification, then re-acquire it.  The caller must hold the monitor.
    pub fn wait_monitor(&self, ctx: &mut ThreadCtx) {
        // Release actions first: our writes must be visible to whoever will
        // notify us.  Like `exit`, the flush may be deferred onto this
        // monitor — the thread that acquires it next absorbs the completion.
        let deferred = jmm::release_deferred(ctx);
        let machine = ctx.machine().clone();
        // Waiting on a notification places no pacing constraint on others.
        ctx.mark_blocked();

        let (release_seen, notify_seen, pending) = {
            let mut st = self.inner.state.lock();
            assert!(st.held, "wait on a monitor that is not held");
            st.held = false;
            st.last_release = st.last_release.max(ctx.now());
            if let Some(d) = deferred {
                st.push_deferred(d);
            }
            let my_epoch = st.notify_epoch;
            self.inner.cv.notify_all();

            // Wait for a notification...
            while st.notify_epoch == my_epoch {
                self.inner.cv.wait(&mut st);
            }
            let notify_seen = st.notify_time;
            // ...then re-acquire the lock.
            while st.held {
                self.inner.cv.wait(&mut st);
            }
            st.held = true;
            // Re-acquisition is an acquire of this monitor: any flush still
            // deferred on it (possibly our own) completes here.
            (st.last_release, notify_seen, st.take_deferred())
        };
        ctx.clock_mut().merge(release_seen);
        ctx.clock_mut().merge(notify_seen);
        absorb_deferred(ctx, pending);
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));
        ctx.publish_progress();

        // Re-acquisition is an acquire action.
        jmm::acquire(ctx);
    }

    /// `Object.notifyAll()`: wake every thread waiting on this monitor.  The
    /// caller must hold the monitor.
    pub fn notify_all(&self, ctx: &mut ThreadCtx) {
        let machine = ctx.machine().clone();
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));
        let mut st = self.inner.state.lock();
        assert!(st.held, "notify on a monitor that is not held");
        st.notify_epoch += 1;
        st.notify_time = st.notify_time.max(ctx.now());
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Virtual time of the most recent release (diagnostics / tests).
    pub fn last_release(&self) -> VTime {
        self.inner.state.lock().last_release
    }
}

impl ThreadCtx {
    /// Create a monitor homed on `home`.
    pub fn new_monitor(&mut self, home: NodeId) -> HMonitor {
        assert!(
            home.index() < self.num_nodes(),
            "monitor home {home} out of range"
        );
        HMonitor::new(home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;

    fn runtime(nodes: usize, protocol: ProtocolKind) -> HyperionRuntime {
        HyperionRuntime::new(HyperionConfig::new(myrinet_200(), nodes, protocol)).unwrap()
    }

    #[test]
    fn synchronized_counter_is_exact_across_threads() {
        for protocol in ProtocolKind::all() {
            let rt = runtime(4, protocol);
            let out = rt.run(|ctx| {
                let cell = ctx.alloc_object(1, NodeId(0));
                let monitor = ctx.new_monitor(NodeId(0));
                let mut handles = Vec::new();
                for i in 0..4u32 {
                    let m = monitor.clone();
                    handles.push(ctx.spawn_on(NodeId(i), move |t| {
                        for _ in 0..50 {
                            m.synchronized(t, |t| {
                                let v: u64 = cell.get(t, 0);
                                cell.put(t, 0, v + 1);
                            });
                        }
                    }));
                }
                for h in handles {
                    ctx.join(h);
                }
                monitor.synchronized(ctx, |ctx| cell.get::<u64>(ctx, 0))
            });
            assert_eq!(out.result, 200, "{protocol:?}");
            let total = out.report.total_stats();
            assert_eq!(total.monitor_enters, total.monitor_exits);
            assert!(total.monitor_enters >= 201);
            // Three of the four workers acquired the monitor remotely.
            assert!(total.remote_monitor_acquires >= 150);
        }
    }

    #[test]
    fn monitor_serialises_critical_sections_in_virtual_time() {
        let rt = runtime(2, ProtocolKind::JavaPf);
        let out = rt.run(|ctx| {
            let monitor = ctx.new_monitor(NodeId(0));
            let m1 = monitor.clone();
            let m2 = monitor.clone();
            let h1 = ctx.spawn_on(NodeId(0), move |t| {
                m1.synchronized(t, |t| t.charge(VTime::from_ms(10)));
            });
            let h2 = ctx.spawn_on(NodeId(1), move |t| {
                m2.synchronized(t, |t| t.charge(VTime::from_ms(10)));
            });
            ctx.join(h1);
            ctx.join(h2);
            monitor.last_release()
        });
        // Two 10ms critical sections cannot overlap: the last release is at
        // least 20ms.
        assert!(out.result >= VTime::from_ms(20));
        assert!(out.report.execution_time >= VTime::from_ms(20));
    }

    #[test]
    fn monitor_entry_invalidates_and_exit_flushes() {
        let rt = runtime(2, ProtocolKind::JavaPf);
        let out = rt.run(|ctx| {
            let arr = ctx.alloc_array::<u64>(8, NodeId(1));
            let monitor = ctx.new_monitor(NodeId(0));
            let _ = arr.get(ctx, 0); // cache the remote page
            monitor.enter(ctx); // acquire: invalidation + mprotect
            arr.put(ctx, 1, 7); // fault again, write through cache
            monitor.exit(ctx); // release: diff flush
        });
        let s = out.report.node_stats[0];
        assert_eq!(s.cache_invalidations, 1);
        assert_eq!(s.pages_invalidated, 1);
        assert_eq!(s.page_faults, 2);
        assert_eq!(s.diff_messages, 1);
        assert_eq!(s.diff_slots_flushed, 1);
    }

    #[test]
    fn remote_monitor_acquisition_costs_a_round_trip() {
        let rt = runtime(2, ProtocolKind::JavaIc);
        let out = rt.run(|ctx| {
            let local = ctx.new_monitor(NodeId(0));
            let remote = ctx.new_monitor(NodeId(1));
            let t0 = ctx.now();
            local.synchronized(ctx, |_| {});
            let t1 = ctx.now();
            remote.synchronized(ctx, |_| {});
            let t2 = ctx.now();
            (t1 - t0, t2 - t1)
        });
        let (local_cost, remote_cost) = out.result;
        assert!(remote_cost > local_cost);
        let total = out.report.total_stats();
        assert_eq!(total.remote_monitor_acquires, 1);
    }

    #[test]
    fn wait_and_notify_hand_off_virtual_time() {
        let rt = runtime(2, ProtocolKind::JavaIc);
        let out = rt.run(|ctx| {
            let flag = ctx.alloc_object(1, NodeId(0));
            let monitor = ctx.new_monitor(NodeId(0));
            let m_waiter = monitor.clone();
            let m_notifier = monitor.clone();

            let waiter = ctx.spawn_on(NodeId(1), move |t| {
                m_waiter.enter(t);
                while flag.get::<u64>(t, 0) == 0 {
                    m_waiter.wait_monitor(t);
                }
                m_waiter.exit(t);
            });
            let notifier = ctx.spawn_on(NodeId(0), move |t| {
                t.charge(VTime::from_ms(50));
                m_notifier.synchronized(t, |t| {
                    flag.put(t, 0, 1u64);
                    m_notifier.notify_all(t);
                });
            });
            ctx.join(waiter);
            ctx.join(notifier);
        });
        // The waiter cannot finish before the notifier's 50ms of work.
        assert!(out.report.execution_time >= VTime::from_ms(50));
    }

    fn deferred_runtime(nodes: usize, protocol: ProtocolKind) -> HyperionRuntime {
        let config = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(nodes)
            .protocol(protocol)
            .transport(hyperion_dsm::TransportConfig::directory())
            .build()
            .unwrap();
        HyperionRuntime::new(config).unwrap()
    }

    #[test]
    fn deferred_flush_completes_exactly_at_the_next_acquire() {
        // One thread, two nodes: write through the cache inside a critical
        // section, release (deferred flush), compute, re-acquire the same
        // monitor.  The blocking transport charges the flush at the exit;
        // the deferred transport must charge it no later than the next
        // acquire — and, because the single-threaded sequence is
        // deterministic, at exactly the same virtual completion instant.
        let run = |rt: &HyperionRuntime| {
            rt.run(|ctx| {
                let cell = ctx.alloc_object(1, NodeId(1));
                let monitor = ctx.new_monitor(NodeId(0));
                monitor.enter(ctx);
                cell.put(ctx, 0, 5u64);
                monitor.exit(ctx);
                let after_exit = ctx.now();
                ctx.charge(VTime::from_us(2));
                monitor.enter(ctx);
                let after_acquire = ctx.now();
                monitor.exit(ctx);
                (after_exit, after_acquire)
            })
        };
        let blocking = runtime(2, ProtocolKind::JavaPf);
        let deferred = deferred_runtime(2, ProtocolKind::JavaPf);
        let b = run(&blocking);
        let d = run(&deferred);
        let (b_exit, _) = b.result;
        let (d_exit, d_acquire) = d.result;

        let machine = myrinet_200().machine;
        let monitor_local = machine.cpu.cycles(machine.dsm.monitor_local_cycles);
        // The deferred release does not stall on the flush...
        assert!(
            d_exit < b_exit,
            "deferred exit must not stall: {d_exit} vs {b_exit}"
        );
        // ...and the flush completion (== the blocking exit minus its
        // trailing monitor bookkeeping) is merged exactly at the next
        // acquire of the same monitor, not later.
        let completion = b_exit - monitor_local;
        assert!(
            d_acquire >= completion,
            "acquire must wait for the deferred flush: {d_acquire} < {completion}"
        );
        let s = d.report.total_stats();
        assert_eq!(s.deferred_flushes, 1);
        assert!(
            s.flush_overlap_cycles_hidden > 0,
            "2us of compute hid part of the flush"
        );
        assert_eq!(b.report.total_stats().deferred_flushes, 0);
    }

    #[test]
    fn deferred_release_preserves_happens_before_in_a_two_node_ping_pong() {
        // Two workers on two nodes alternate through the same monitor; each
        // increments a shared cell.  Every acquire must observe the previous
        // holder's deferred-flushed write (JMM release→acquire edge), so the
        // final count is exact and every observed value is fresh.
        for protocol in ProtocolKind::all_extended() {
            let rt = deferred_runtime(2, protocol);
            let rounds = 25u64;
            let out = rt.run(|ctx| {
                let cell = ctx.alloc_object(1, NodeId(0));
                let monitor = ctx.new_monitor(NodeId(0));
                let mut handles = Vec::new();
                for node in 0..2u32 {
                    let m = monitor.clone();
                    handles.push(ctx.spawn_on(NodeId(node), move |t| {
                        for _ in 0..rounds {
                            m.synchronized(t, |t| {
                                let v: u64 = cell.get(t, 0);
                                cell.put(t, 0, v + 1);
                            });
                        }
                    }));
                }
                for h in handles {
                    ctx.join(h);
                }
                monitor.synchronized(ctx, |ctx| cell.get::<u64>(ctx, 0))
            });
            assert_eq!(out.result, 2 * rounds, "{protocol:?}");
            let total = out.report.total_stats();
            // The remote worker's releases really were deferred...
            assert!(total.deferred_flushes > 0, "{protocol:?}");
            // ...and the hand-off credited hidden flush latency.
            assert!(total.flush_overlap_cycles_hidden > 0, "{protocol:?}");
        }
    }

    #[test]
    fn deferred_transport_never_slows_the_synchronized_counter() {
        let blocking = runtime(2, ProtocolKind::JavaPf);
        let deferred = deferred_runtime(2, ProtocolKind::JavaPf);
        let run = |rt: &HyperionRuntime| {
            rt.run(|ctx| {
                let cell = ctx.alloc_object(1, NodeId(1));
                let monitor = ctx.new_monitor(NodeId(0));
                for _ in 0..20 {
                    monitor.synchronized(ctx, |ctx| {
                        let v: u64 = cell.get(ctx, 0);
                        cell.put(ctx, 0, v + 1);
                    });
                    // Compute between critical sections is what the deferred
                    // flush hides behind.
                    ctx.charge(VTime::from_us(30));
                }
                cell.get::<u64>(ctx, 0)
            })
        };
        let b = run(&blocking);
        let d = run(&deferred);
        assert_eq!(b.result, d.result);
        assert!(
            d.report.execution_time < b.report.execution_time,
            "hidden flush latency must shorten the run: {} vs {}",
            d.report.execution_time,
            b.report.execution_time
        );
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn exiting_an_unheld_monitor_panics() {
        let rt = runtime(1, ProtocolKind::JavaIc);
        rt.run(|ctx| {
            let monitor = ctx.new_monitor(NodeId(0));
            monitor.exit(ctx);
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn monitor_home_must_exist() {
        let rt = runtime(1, ProtocolKind::JavaIc);
        rt.run(|ctx| {
            let _ = ctx.new_monitor(NodeId(3));
        });
    }
}
