//! Java monitors with Java-Memory-Model semantics.
//!
//! Every `synchronized` block of the original Java benchmarks becomes an
//! [`HMonitor::enter`] / [`HMonitor::exit`] pair (or the scoped
//! [`HMonitor::synchronized`] helper); `Object.wait` / `Object.notifyAll`
//! map to [`HMonitor::wait_monitor`] / [`HMonitor::notify_all`].
//!
//! Two pieces of accounting make the monitors faithful to the paper:
//!
//! * **Consistency actions** — entry performs the acquire action
//!   (invalidate the node's object cache), exit performs the release action
//!   (flush field-granularity diffs), as described in §3.1.  Under `java_pf`
//!   the entry-side invalidation additionally re-protects the cached pages,
//!   which is where the protocol's `mprotect` traffic comes from.
//! * **Virtual-time ordering** — the monitor carries the virtual release
//!   time of its previous holder; a thread entering the monitor can never be
//!   earlier than that, so critical sections are serialised in virtual time
//!   just as they are in real time.
//!
//! A monitor lives on a home node (the home of the Java object it guards);
//! acquiring it from another node pays a control-message round trip.

use std::sync::Arc;

use hyperion_model::{NodeStats, VTime};
use hyperion_pm2::NodeId;
use parking_lot::{Condvar, Mutex};

use crate::jmm;
use crate::runtime::ThreadCtx;

#[derive(Debug)]
struct MonitorState {
    held: bool,
    last_release: VTime,
    notify_epoch: u64,
    notify_time: VTime,
}

#[derive(Debug)]
struct MonitorInner {
    home: NodeId,
    state: Mutex<MonitorState>,
    cv: Condvar,
}

/// A Java monitor (the lock + wait-set associated with a Java object).
#[derive(Clone, Debug)]
pub struct HMonitor {
    inner: Arc<MonitorInner>,
}

impl HMonitor {
    /// Create a monitor homed on `home`.  Prefer
    /// [`ThreadCtx::new_monitor`](crate::runtime::ThreadCtx) in application
    /// code.
    pub fn new(home: NodeId) -> Self {
        HMonitor {
            inner: Arc::new(MonitorInner {
                home,
                state: Mutex::new(MonitorState {
                    held: false,
                    last_release: VTime::ZERO,
                    notify_epoch: 0,
                    notify_time: VTime::ZERO,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// The node this monitor lives on.
    pub fn home(&self) -> NodeId {
        self.inner.home
    }

    /// Enter the monitor (`monitorenter`): acquire the lock, then perform the
    /// JMM acquire action.
    pub fn enter(&self, ctx: &mut ThreadCtx) {
        // Conservative pacing: do not let this thread race (in host time)
        // past the slowest active thread, otherwise the host scheduler — not
        // virtual time — would decide who wins contended acquisitions such
        // as the TSP work queue or the Barnes-Hut chunk counter.
        ctx.pace();
        let machine = ctx.machine().clone();
        let node_ref = ctx.shared.cluster.node(ctx.node());
        NodeStats::bump(&node_ref.stats.monitor_enters);

        if self.inner.home != ctx.node() {
            // Lock acquisition request travels to the monitor's home node and
            // the grant travels back.
            NodeStats::bump(&node_ref.stats.remote_monitor_acquires);
            let round_trip = ctx.shared.cluster.control_message_cost().times(2)
                + machine.cpu.cycles(machine.dsm.protocol_server_cycles);
            ctx.charge(round_trip);
        }

        {
            let mut st = self.inner.state.lock();
            while st.held {
                self.inner.cv.wait(&mut st);
            }
            st.held = true;
            let release = st.last_release;
            drop(st);
            ctx.clock_mut().merge(release);
        }
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));

        jmm::acquire(ctx);
    }

    /// Exit the monitor (`monitorexit`): perform the JMM release action, then
    /// release the lock.
    pub fn exit(&self, ctx: &mut ThreadCtx) {
        jmm::release(ctx);
        let machine = ctx.machine().clone();
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));

        let node_ref = ctx.shared.cluster.node(ctx.node());
        NodeStats::bump(&node_ref.stats.monitor_exits);

        let mut st = self.inner.state.lock();
        assert!(st.held, "exit of a monitor that is not held");
        st.held = false;
        st.last_release = st.last_release.max(ctx.now());
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Execute `body` inside the monitor (a `synchronized` block).
    pub fn synchronized<R>(
        &self,
        ctx: &mut ThreadCtx,
        body: impl FnOnce(&mut ThreadCtx) -> R,
    ) -> R {
        self.enter(ctx);
        let r = body(ctx);
        self.exit(ctx);
        r
    }

    /// `Object.wait()`: atomically release the monitor and wait for a
    /// notification, then re-acquire it.  The caller must hold the monitor.
    pub fn wait_monitor(&self, ctx: &mut ThreadCtx) {
        // Release actions first: our writes must be visible to whoever will
        // notify us.
        jmm::release(ctx);
        let machine = ctx.machine().clone();
        // Waiting on a notification places no pacing constraint on others.
        ctx.mark_blocked();

        let (release_seen, notify_seen) = {
            let mut st = self.inner.state.lock();
            assert!(st.held, "wait on a monitor that is not held");
            st.held = false;
            st.last_release = st.last_release.max(ctx.now());
            let my_epoch = st.notify_epoch;
            self.inner.cv.notify_all();

            // Wait for a notification...
            while st.notify_epoch == my_epoch {
                self.inner.cv.wait(&mut st);
            }
            let notify_seen = st.notify_time;
            // ...then re-acquire the lock.
            while st.held {
                self.inner.cv.wait(&mut st);
            }
            st.held = true;
            (st.last_release, notify_seen)
        };
        ctx.clock_mut().merge(release_seen);
        ctx.clock_mut().merge(notify_seen);
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));
        ctx.publish_progress();

        // Re-acquisition is an acquire action.
        jmm::acquire(ctx);
    }

    /// `Object.notifyAll()`: wake every thread waiting on this monitor.  The
    /// caller must hold the monitor.
    pub fn notify_all(&self, ctx: &mut ThreadCtx) {
        let machine = ctx.machine().clone();
        ctx.charge(machine.cpu.cycles(machine.dsm.monitor_local_cycles));
        let mut st = self.inner.state.lock();
        assert!(st.held, "notify on a monitor that is not held");
        st.notify_epoch += 1;
        st.notify_time = st.notify_time.max(ctx.now());
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Virtual time of the most recent release (diagnostics / tests).
    pub fn last_release(&self) -> VTime {
        self.inner.state.lock().last_release
    }
}

impl ThreadCtx {
    /// Create a monitor homed on `home`.
    pub fn new_monitor(&mut self, home: NodeId) -> HMonitor {
        assert!(
            home.index() < self.num_nodes(),
            "monitor home {home} out of range"
        );
        HMonitor::new(home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;

    fn runtime(nodes: usize, protocol: ProtocolKind) -> HyperionRuntime {
        HyperionRuntime::new(HyperionConfig::new(myrinet_200(), nodes, protocol)).unwrap()
    }

    #[test]
    fn synchronized_counter_is_exact_across_threads() {
        for protocol in ProtocolKind::all() {
            let rt = runtime(4, protocol);
            let out = rt.run(|ctx| {
                let cell = ctx.alloc_object(1, NodeId(0));
                let monitor = ctx.new_monitor(NodeId(0));
                let mut handles = Vec::new();
                for i in 0..4u32 {
                    let m = monitor.clone();
                    handles.push(ctx.spawn_on(NodeId(i), move |t| {
                        for _ in 0..50 {
                            m.synchronized(t, |t| {
                                let v: u64 = cell.get(t, 0);
                                cell.put(t, 0, v + 1);
                            });
                        }
                    }));
                }
                for h in handles {
                    ctx.join(h);
                }
                monitor.synchronized(ctx, |ctx| cell.get::<u64>(ctx, 0))
            });
            assert_eq!(out.result, 200, "{protocol:?}");
            let total = out.report.total_stats();
            assert_eq!(total.monitor_enters, total.monitor_exits);
            assert!(total.monitor_enters >= 201);
            // Three of the four workers acquired the monitor remotely.
            assert!(total.remote_monitor_acquires >= 150);
        }
    }

    #[test]
    fn monitor_serialises_critical_sections_in_virtual_time() {
        let rt = runtime(2, ProtocolKind::JavaPf);
        let out = rt.run(|ctx| {
            let monitor = ctx.new_monitor(NodeId(0));
            let m1 = monitor.clone();
            let m2 = monitor.clone();
            let h1 = ctx.spawn_on(NodeId(0), move |t| {
                m1.synchronized(t, |t| t.charge(VTime::from_ms(10)));
            });
            let h2 = ctx.spawn_on(NodeId(1), move |t| {
                m2.synchronized(t, |t| t.charge(VTime::from_ms(10)));
            });
            ctx.join(h1);
            ctx.join(h2);
            monitor.last_release()
        });
        // Two 10ms critical sections cannot overlap: the last release is at
        // least 20ms.
        assert!(out.result >= VTime::from_ms(20));
        assert!(out.report.execution_time >= VTime::from_ms(20));
    }

    #[test]
    fn monitor_entry_invalidates_and_exit_flushes() {
        let rt = runtime(2, ProtocolKind::JavaPf);
        let out = rt.run(|ctx| {
            let arr = ctx.alloc_array::<u64>(8, NodeId(1));
            let monitor = ctx.new_monitor(NodeId(0));
            let _ = arr.get(ctx, 0); // cache the remote page
            monitor.enter(ctx); // acquire: invalidation + mprotect
            arr.put(ctx, 1, 7); // fault again, write through cache
            monitor.exit(ctx); // release: diff flush
        });
        let s = out.report.node_stats[0];
        assert_eq!(s.cache_invalidations, 1);
        assert_eq!(s.pages_invalidated, 1);
        assert_eq!(s.page_faults, 2);
        assert_eq!(s.diff_messages, 1);
        assert_eq!(s.diff_slots_flushed, 1);
    }

    #[test]
    fn remote_monitor_acquisition_costs_a_round_trip() {
        let rt = runtime(2, ProtocolKind::JavaIc);
        let out = rt.run(|ctx| {
            let local = ctx.new_monitor(NodeId(0));
            let remote = ctx.new_monitor(NodeId(1));
            let t0 = ctx.now();
            local.synchronized(ctx, |_| {});
            let t1 = ctx.now();
            remote.synchronized(ctx, |_| {});
            let t2 = ctx.now();
            (t1 - t0, t2 - t1)
        });
        let (local_cost, remote_cost) = out.result;
        assert!(remote_cost > local_cost);
        let total = out.report.total_stats();
        assert_eq!(total.remote_monitor_acquires, 1);
    }

    #[test]
    fn wait_and_notify_hand_off_virtual_time() {
        let rt = runtime(2, ProtocolKind::JavaIc);
        let out = rt.run(|ctx| {
            let flag = ctx.alloc_object(1, NodeId(0));
            let monitor = ctx.new_monitor(NodeId(0));
            let m_waiter = monitor.clone();
            let m_notifier = monitor.clone();

            let waiter = ctx.spawn_on(NodeId(1), move |t| {
                m_waiter.enter(t);
                while flag.get::<u64>(t, 0) == 0 {
                    m_waiter.wait_monitor(t);
                }
                m_waiter.exit(t);
            });
            let notifier = ctx.spawn_on(NodeId(0), move |t| {
                t.charge(VTime::from_ms(50));
                m_notifier.synchronized(t, |t| {
                    flag.put(t, 0, 1u64);
                    m_notifier.notify_all(t);
                });
            });
            ctx.join(waiter);
            ctx.join(notifier);
        });
        // The waiter cannot finish before the notifier's 50ms of work.
        assert!(out.report.execution_time >= VTime::from_ms(50));
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn exiting_an_unheld_monitor_panics() {
        let rt = runtime(1, ProtocolKind::JavaIc);
        rt.run(|ctx| {
            let monitor = ctx.new_monitor(NodeId(0));
            monitor.exit(ctx);
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn monitor_home_must_exist() {
        let rt = runtime(1, ProtocolKind::JavaIc);
        rt.run(|ctx| {
            let _ = ctx.new_monitor(NodeId(3));
        });
    }
}
