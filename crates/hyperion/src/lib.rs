//! # hyperion
//!
//! The core runtime of **Hyperion-RS**, a Rust reproduction of the system
//! evaluated in *"Remote object detection in cluster-based Java"* (Gabriel
//! Antoniu and Phil Hatcher, JavaPDC workshop, IPDPS 2001).
//!
//! The original Hyperion executed unmodified multithreaded Java programs on a
//! PC cluster as if the cluster were a single shared-memory JVM: a
//! bytecode-to-C compiler turned field accesses into runtime `get`/`put`
//! primitives, and a DSM layer (DSM-PM2) kept node-local object caches
//! consistent with the Java Memory Model.  The paper compares two ways of
//! detecting accesses to *remote* objects — explicit in-line locality checks
//! (`java_ic`) versus page faults on protected pages (`java_pf`) — across
//! five applications and two clusters.
//!
//! This crate assembles the reproduction's runtime out of the substrate
//! crates and exposes the API the benchmark programs are written against:
//!
//! * [`runtime`] — [`HyperionRuntime`], [`HyperionConfig`], [`ThreadCtx`],
//!   [`RunReport`]: build a cluster, run a program, read the virtual
//!   execution time and the per-node event statistics.
//! * [`object`] — typed shared objects, arrays, Java-style 2-D arrays and
//!   the locality-aware view/bulk-transfer layer.
//! * [`layout`] — typed field layouts ([`object_layout!`], [`HStruct`]).
//! * [`monitor`] — Java monitors with acquire/release consistency actions.
//! * [`jmm`] — the acquire/release actions themselves.
//! * [`memory`] — the raw Table 2 primitives (`get`, `put`, `loadIntoCache`,
//!   `invalidateCache`, `updateMainMemory`).
//! * [`api`] — the small "Java API subsystem": barrier, shared counter,
//!   `arraycopy`.
//! * [`thread`] — the round-robin load balancer and thread handles.
//!
//! ## Quick start
//!
//! ```
//! use hyperion::prelude::*;
//!
//! // Two nodes of the paper's Myrinet cluster, page-fault protocol.
//! let config = HyperionConfig::new(myrinet_200(), 2, ProtocolKind::JavaPf);
//! let runtime = HyperionRuntime::new(config).unwrap();
//!
//! let outcome = runtime.run(|ctx| {
//!     // A shared array homed on node 1, written by a thread on node 1,
//!     // read back by main (on node 0) after joining.
//!     let data = ctx.alloc_array::<i64>(8, NodeId(1));
//!     let worker = ctx.spawn_on(NodeId(1), move |t| {
//!         for i in 0..8 {
//!             data.put(t, i, (i * i) as i64);
//!         }
//!     });
//!     ctx.join(worker);
//!     data.get(ctx, 7)
//! });
//! assert_eq!(outcome.result, 49);
//! assert!(outcome.report.execution_time > hyperion::VTime::ZERO);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod api;
pub mod jmm;
pub mod layout;
pub mod memory;
pub mod monitor;
pub mod object;
pub mod runtime;
pub mod thread;

pub use api::{arraycopy, JBarrier, SharedCounter};
pub use layout::{Field, HStruct, ObjectLayout};
pub use monitor::HMonitor;
pub use object::{
    Array2, ArrayView, ArrayViewMut, HArray, HMatrix, HObject, MatrixRows, SlotValue,
};
pub use runtime::{
    ConfigBuilder, ConfigError, HyperionConfig, HyperionRuntime, RunOutcome, RunReport, ThreadCtx,
};
pub use thread::{HThreadHandle, LoadBalancer};

// Re-export the pieces of the lower layers that appear in this crate's API.
pub use hyperion_dsm::policy;
pub use hyperion_dsm::{
    AdaptiveParams, DeferredFlush, HomeFlushMark, Locality, PolicyError, PolicySpec, ProtocolKind,
    TransportConfig,
};
pub use hyperion_model::{
    myrinet_200, scaled_cluster, sci_450, ClusterSpec, MachineModel, Op, OpCounts, StatsSnapshot,
    VTime, WireServiceSnapshot, WorkEstimate,
};
pub use hyperion_pm2::{
    FaultKill, FaultSpec, GlobalAddr, NodeId, RetryPolicy, ThreadId, Topology, TransportBackend,
};

/// Everything an application kernel typically imports.
pub mod prelude {
    pub use crate::api::{arraycopy, JBarrier, SharedCounter};
    pub use crate::layout::{Field, HStruct, ObjectLayout};
    pub use crate::monitor::HMonitor;
    pub use crate::object::{
        Array2, ArrayView, ArrayViewMut, HArray, HMatrix, HObject, MatrixRows, SlotValue,
    };
    pub use crate::runtime::{
        ConfigBuilder, HyperionConfig, HyperionRuntime, RunOutcome, RunReport, ThreadCtx,
    };
    pub use hyperion_dsm::{
        AdaptiveParams, DeferredFlush, Locality, ProtocolKind, TransportConfig,
    };
    pub use hyperion_model::{
        myrinet_200, scaled_cluster, sci_450, ClusterSpec, Op, OpCounts, VTime, WorkEstimate,
    };
    pub use hyperion_pm2::{NodeId, Topology, TransportBackend};
}
