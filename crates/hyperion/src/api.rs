//! The "Java API subsystem": the small class-library subset the benchmarks
//! need (Table 1).
//!
//! The original Hyperion implemented a subset of the JDK 1.1 native methods
//! and compiled the rest of the class library with its bytecode-to-C
//! translator.  The reproduction provides the classes the five benchmark
//! programs rely on, all built *on top of* the public runtime API (objects,
//! monitors), so they pay exactly the protocol costs a compiled Java class
//! would:
//!
//! * [`JBarrier`] — a cyclic barrier built from a monitor and a shared state
//!   object (`wait`/`notifyAll` underneath), used by Jacobi and ASP;
//! * [`SharedCounter`] — a monitor-protected counter, used for the dynamic
//!   body assignment in Barnes-Hut and the central work queue index in TSP;
//! * [`arraycopy`] — the `System.arraycopy` analogue.

use hyperion_model::{NodeStats, Op, OpCounts, VTime};
use hyperion_pm2::NodeId;

use crate::layout::HStruct;
use crate::monitor::HMonitor;
use crate::object::{HArray, SlotValue};
use crate::object_layout;
use crate::runtime::ThreadCtx;

object_layout! {
    /// Field layout of the barrier state object (one generation counter and
    /// a double-buffered arrival watermark, as a hand-written Java barrier
    /// class would carry).
    pub struct BarrierState {
        /// Number of parties the barrier waits for.
        PARTIES: u64,
        /// Parties arrived in the current generation.
        COUNT: u64,
        /// Generation counter (increments when the barrier opens).
        GENERATION: u64,
        /// Latest virtual arrival time of an even generation (picoseconds).
        MAX_ARRIVAL_EVEN: u64,
        /// Latest virtual arrival time of an odd generation (picoseconds).
        MAX_ARRIVAL_ODD: u64,
    }
}

/// A cyclic barrier for a fixed number of parties.
///
/// All state lives in the DSM and all signalling goes through a Java
/// monitor, so a barrier episode performs the same acquire/release traffic a
/// hand-written Java barrier class would (this is where the per-timestep
/// cache invalidations of Jacobi and ASP come from).
#[derive(Clone, Debug)]
pub struct JBarrier {
    monitor: HMonitor,
    state: HStruct<BarrierState>,
    parties: u64,
}

impl JBarrier {
    /// Create a barrier for `parties` threads, homed on `home`.
    ///
    /// # Panics
    /// Panics if `parties` is zero.
    pub fn new(ctx: &mut ThreadCtx, parties: usize, home: NodeId) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        let state: HStruct<BarrierState> = ctx.alloc_struct(home);
        state.put(ctx, BarrierState::PARTIES, parties as u64);
        state.put(ctx, BarrierState::COUNT, 0);
        state.put(ctx, BarrierState::GENERATION, 0);
        state.put(ctx, BarrierState::MAX_ARRIVAL_EVEN, 0);
        state.put(ctx, BarrierState::MAX_ARRIVAL_ODD, 0);
        JBarrier {
            monitor: HMonitor::new(home),
            state,
            parties: parties as u64,
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.parties as usize
    }

    /// Arrive at the barrier and wait (in both real and virtual time) until
    /// all parties have arrived.
    pub fn arrive(&self, ctx: &mut ThreadCtx) {
        let machine = ctx.machine().clone();
        self.monitor.enter(ctx);

        let gen = self.state.get(ctx, BarrierState::GENERATION);
        let max_field = if gen % 2 == 0 {
            BarrierState::MAX_ARRIVAL_EVEN
        } else {
            BarrierState::MAX_ARRIVAL_ODD
        };

        // Record this thread's virtual arrival time.
        let arrival = ctx.now().as_ps();
        let cur = self.state.get(ctx, max_field);
        if arrival > cur {
            self.state.put(ctx, max_field, arrival);
        }

        let count = self.state.get(ctx, BarrierState::COUNT) + 1;
        self.state.put(ctx, BarrierState::COUNT, count);

        if count == self.parties {
            // Last arrival: open the next generation and wake everyone.
            self.state.put(ctx, BarrierState::COUNT, 0);
            self.state.put(ctx, BarrierState::GENERATION, gen + 1);
            // Reset the other generation's arrival watermark for reuse.
            let other = if gen % 2 == 0 {
                BarrierState::MAX_ARRIVAL_ODD
            } else {
                BarrierState::MAX_ARRIVAL_EVEN
            };
            self.state.put(ctx, other, 0);
            let max = self.state.get(ctx, max_field);
            ctx.observe(VTime::from_ps(max));
            self.monitor.notify_all(ctx);
            self.monitor.exit(ctx);
        } else {
            loop {
                self.monitor.wait_monitor(ctx);
                let now_gen = self.state.get(ctx, BarrierState::GENERATION);
                if now_gen != gen {
                    break;
                }
            }
            let max = self.state.get(ctx, max_field);
            ctx.observe(VTime::from_ps(max));
            self.monitor.exit(ctx);
        }

        ctx.charge(machine.cpu.cycles(machine.dsm.barrier_cycles));
        let node_ref = ctx.shared.cluster.node(ctx.node());
        NodeStats::bump(&node_ref.stats.barrier_waits);
    }
}

object_layout! {
    /// Field layout of the shared counter cell.
    pub struct CounterState {
        /// The counter value.
        VALUE: u64,
    }
}

/// A monitor-protected shared counter (the Java idiom
/// `synchronized (lock) { return next++; }`).
#[derive(Clone, Debug)]
pub struct SharedCounter {
    monitor: HMonitor,
    cell: HStruct<CounterState>,
}

impl SharedCounter {
    /// Create a counter homed on `home` with an initial value.
    pub fn new(ctx: &mut ThreadCtx, home: NodeId, initial: u64) -> Self {
        let cell: HStruct<CounterState> = ctx.alloc_struct(home);
        cell.put(ctx, CounterState::VALUE, initial);
        SharedCounter {
            monitor: HMonitor::new(home),
            cell,
        }
    }

    /// Atomically return the current value and add one.
    pub fn next(&self, ctx: &mut ThreadCtx) -> u64 {
        self.next_chunk(ctx, 1)
    }

    /// Atomically return the current value and add `chunk`.
    pub fn next_chunk(&self, ctx: &mut ThreadCtx, chunk: u64) -> u64 {
        self.monitor.synchronized(ctx, |ctx| {
            let v = self.cell.get(ctx, CounterState::VALUE);
            self.cell.put(ctx, CounterState::VALUE, v + chunk);
            v
        })
    }

    /// Atomically add `delta` to the counter.
    pub fn add(&self, ctx: &mut ThreadCtx, delta: u64) {
        let _ = self.next_chunk(ctx, delta);
    }

    /// Read the current value (under the monitor, as Java code would).
    pub fn get(&self, ctx: &mut ThreadCtx) -> u64 {
        self.monitor
            .synchronized(ctx, |ctx| self.cell.get(ctx, CounterState::VALUE))
    }
}

/// `System.arraycopy`: copy `len` elements from `src[src_pos..]` to
/// `dst[dst_pos..]`, charging one load and one store of local work per
/// element on top of the DSM access costs.
///
/// Implemented on the bulk slice transfers, so access detection is paid per
/// touched *page* — the runtime-internal fast path a native `arraycopy`
/// would use — while the per-element copy work is still charged.
///
/// # Panics
/// Panics if either range is out of bounds.
pub fn arraycopy<T: SlotValue>(
    ctx: &mut ThreadCtx,
    src: &HArray<T>,
    src_pos: usize,
    dst: &HArray<T>,
    dst_pos: usize,
    len: usize,
) {
    assert!(src_pos + len <= src.len(), "arraycopy source out of bounds");
    assert!(
        dst_pos + len <= dst.len(),
        "arraycopy destination out of bounds"
    );
    if len == 0 {
        return;
    }
    let per_element = ctx.estimate(&OpCounts::new().with(Op::Load, 1.0).with(Op::Store, 1.0));
    let values = src.read_slice(ctx, src_pos..src_pos + len);
    dst.write_slice(ctx, dst_pos, &values);
    ctx.charge_iters(&per_element, len as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;

    fn runtime(nodes: usize, protocol: ProtocolKind) -> HyperionRuntime {
        HyperionRuntime::new(HyperionConfig::new(myrinet_200(), nodes, protocol)).unwrap()
    }

    #[test]
    fn barrier_releases_all_parties_at_or_after_the_slowest() {
        for protocol in ProtocolKind::all() {
            let rt = runtime(4, protocol);
            let out = rt.run(|ctx| {
                let barrier = JBarrier::new(ctx, 4, NodeId(0));
                let results = ctx.alloc_array::<u64>(4, NodeId(0));
                let mut handles = Vec::new();
                for i in 0..4u32 {
                    let b = barrier.clone();
                    handles.push(ctx.spawn_on(NodeId(i), move |t| {
                        // Uneven work before the barrier.
                        t.charge(VTime::from_ms(10 * (i as u64 + 1)));
                        b.arrive(t);
                        results.put(t, i as usize, t.now().as_ps());
                    }));
                }
                for h in handles {
                    ctx.join(h);
                }
                barrier.parties()
            });
            assert_eq!(out.result, 4);
            // No thread can leave the barrier before the slowest arrival
            // (40 ms of pre-barrier work).
            assert!(out.report.execution_time >= VTime::from_ms(40));
            let total = out.report.total_stats();
            assert_eq!(total.barrier_waits, 4);
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let rt = runtime(3, ProtocolKind::JavaPf);
        let out = rt.run(|ctx| {
            let barrier = JBarrier::new(ctx, 3, NodeId(0));
            let hits = ctx.alloc_array::<u64>(3, NodeId(0));
            let mut handles = Vec::new();
            for i in 0..3u32 {
                let b = barrier.clone();
                handles.push(ctx.spawn_on(NodeId(i), move |t| {
                    for _round in 0..5 {
                        b.arrive(t);
                    }
                    hits.put(t, i as usize, 5);
                }));
            }
            for h in handles {
                ctx.join(h);
            }
            hits.to_vec(ctx)
        });
        assert_eq!(out.result, vec![5, 5, 5]);
        assert_eq!(out.report.total_stats().barrier_waits, 15);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_is_rejected() {
        let rt = runtime(1, ProtocolKind::JavaIc);
        rt.run(|ctx| {
            let _ = JBarrier::new(ctx, 0, NodeId(0));
        });
    }

    #[test]
    fn shared_counter_hands_out_each_value_once() {
        let rt = runtime(4, ProtocolKind::JavaIc);
        let out = rt.run(|ctx| {
            let counter = SharedCounter::new(ctx, NodeId(0), 0);
            let seen = ctx.alloc_array::<u64>(4 * 25, NodeId(0));
            let mut handles = Vec::new();
            for i in 0..4u32 {
                let c = counter.clone();
                handles.push(ctx.spawn_on(NodeId(i), move |t| {
                    for k in 0..25usize {
                        let v = c.next(t);
                        seen.put(t, i as usize * 25 + k, v + 1); // +1 so 0 means "missing"
                    }
                }));
            }
            for h in handles {
                ctx.join(h);
            }
            let mut got: Vec<u64> = seen.to_vec(ctx);
            got.sort_unstable();
            (got, counter.get(ctx))
        });
        let (got, final_value) = out.result;
        assert_eq!(final_value, 100);
        let expected: Vec<u64> = (1..=100).collect();
        assert_eq!(
            got, expected,
            "every ticket must be handed out exactly once"
        );
    }

    #[test]
    fn shared_counter_chunked_and_add() {
        let rt = runtime(2, ProtocolKind::JavaPf);
        let out = rt.run(|ctx| {
            let counter = SharedCounter::new(ctx, NodeId(1), 10);
            let first = counter.next_chunk(ctx, 5);
            let second = counter.next_chunk(ctx, 5);
            counter.add(ctx, 100);
            (first, second, counter.get(ctx))
        });
        assert_eq!(out.result, (10, 15, 120));
    }

    #[test]
    fn arraycopy_copies_and_charges() {
        let rt = runtime(2, ProtocolKind::JavaIc);
        let out = rt.run(|ctx| {
            let src = ctx.alloc_array::<i64>(16, NodeId(0));
            let dst = ctx.alloc_array::<i64>(16, NodeId(1));
            for i in 0..16 {
                src.put(ctx, i, i as i64 * 3);
            }
            let before = ctx.now();
            arraycopy(ctx, &src, 4, &dst, 0, 8);
            let elapsed = ctx.now() - before;
            (dst.to_vec(ctx), elapsed)
        });
        let (dst, elapsed) = out.result;
        assert_eq!(&dst[0..8], &[12, 15, 18, 21, 24, 27, 30, 33]);
        assert!(dst[8..].iter().all(|&x| x == 0));
        assert!(elapsed > VTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn arraycopy_checks_bounds() {
        let rt = runtime(1, ProtocolKind::JavaIc);
        rt.run(|ctx| {
            let a = ctx.alloc_array::<i64>(4, NodeId(0));
            let b = ctx.alloc_array::<i64>(4, NodeId(0));
            arraycopy(ctx, &a, 2, &b, 0, 3);
        });
    }
}
