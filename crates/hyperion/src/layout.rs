//! Typed field layouts for shared objects.
//!
//! The seed runtime described object layouts with ad-hoc constant modules
//! (`mod barrier_fields { pub const COUNT: usize = 1; ... }`) and untyped
//! `HObject::get::<T>` calls — the field index and the field type were
//! connected only by convention.  This module promotes the layout into the
//! type system:
//!
//! * a [`Field<T>`] is a field index *carrying its slot type*;
//! * an [`ObjectLayout`] names a class-like layout and its field count;
//! * an [`HStruct<L>`] is an [`HObject`] whose
//!   accessors only accept that layout's fields, with the value type
//!   inferred from the field — `state.get(ctx, BarrierState::COUNT)` cannot
//!   read the wrong slot or the wrong type.
//!
//! Layouts are declared once with [`object_layout!`](crate::object_layout):
//!
//! ```
//! use hyperion::prelude::*;
//!
//! hyperion::object_layout! {
//!     /// A 2-D point with a tag.
//!     pub struct PointLayout {
//!         /// X coordinate.
//!         X: f64,
//!         /// Y coordinate.
//!         Y: f64,
//!         /// Owner tag.
//!         TAG: u64,
//!     }
//! }
//!
//! let config = HyperionConfig::builder()
//!     .cluster(myrinet_200())
//!     .nodes(1)
//!     .protocol(ProtocolKind::JavaIc)
//!     .build()
//!     .unwrap();
//! let outcome = HyperionRuntime::new(config).unwrap().run(|ctx| {
//!     let p: HStruct<PointLayout> = ctx.alloc_struct(NodeId(0));
//!     p.put(ctx, PointLayout::X, 1.5);
//!     p.put(ctx, PointLayout::TAG, 9u64);
//!     (p.get(ctx, PointLayout::X), p.get(ctx, PointLayout::TAG))
//! });
//! assert_eq!(outcome.result, (1.5, 9));
//! ```

use std::marker::PhantomData;

use hyperion_pm2::NodeId;

use crate::object::{HObject, SlotValue};
use crate::runtime::ThreadCtx;

/// A typed field descriptor: the slot index of one field of an
/// [`ObjectLayout`], carrying the field's value type.
pub struct Field<T: SlotValue> {
    index: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SlotValue> Field<T> {
    /// Descriptor for the field at slot `index`.  Normally produced by
    /// [`object_layout!`](crate::object_layout), not written by hand.
    pub const fn at(index: usize) -> Self {
        Field {
            index,
            _marker: PhantomData,
        }
    }

    /// Slot index of the field within its object.
    #[inline]
    pub const fn index(self) -> usize {
        self.index
    }
}

impl<T: SlotValue> Clone for Field<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: SlotValue> Copy for Field<T> {}

impl<T: SlotValue> std::fmt::Debug for Field<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Field").field("index", &self.index).finish()
    }
}

/// A class-like description of a shared object's field layout.
///
/// Implemented by the marker types [`object_layout!`](crate::object_layout) generates; the field
/// descriptors themselves live as associated constants on the marker type.
pub trait ObjectLayout {
    /// Number of slot-sized fields in the layout.
    const NUM_FIELDS: usize;
    /// Class-like name for diagnostics.
    const NAME: &'static str;
}

/// A shared object whose accessors are typed by a layout `L`.
///
/// Wraps an [`HObject`] of exactly `L::NUM_FIELDS` fields; field accesses
/// pay the same protocol costs as the untyped object — the layout only adds
/// compile-time safety, never runtime behaviour.
pub struct HStruct<L: ObjectLayout> {
    object: HObject,
    _marker: PhantomData<fn() -> L>,
}

impl<L: ObjectLayout> Clone for HStruct<L> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<L: ObjectLayout> Copy for HStruct<L> {}

impl<L: ObjectLayout> std::fmt::Debug for HStruct<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HStruct")
            .field("layout", &L::NAME)
            .field("base", &self.object.base())
            .finish()
    }
}

impl<L: ObjectLayout> HStruct<L> {
    /// Wrap an existing object allocation.
    ///
    /// # Panics
    /// Panics if the object's field count does not match the layout.
    pub fn from_object(object: HObject) -> Self {
        assert_eq!(
            object.num_fields(),
            L::NUM_FIELDS,
            "object has {} fields but layout {} declares {}",
            object.num_fields(),
            L::NAME,
            L::NUM_FIELDS
        );
        HStruct {
            object,
            _marker: PhantomData,
        }
    }

    /// The underlying untyped object.
    pub fn object(&self) -> HObject {
        self.object
    }

    /// Read `field`.
    #[inline]
    pub fn get<T: SlotValue>(&self, ctx: &mut ThreadCtx, field: Field<T>) -> T {
        self.object.get(ctx, field.index())
    }

    /// Write `field`.
    #[inline]
    pub fn put<T: SlotValue>(&self, ctx: &mut ThreadCtx, field: Field<T>, value: T) {
        self.object.put(ctx, field.index(), value);
    }
}

impl ThreadCtx {
    /// Allocate a shared object shaped by layout `L`, homed on `home`.
    pub fn alloc_struct<L: ObjectLayout>(&mut self, home: NodeId) -> HStruct<L> {
        HStruct::from_object(self.alloc_object(L::NUM_FIELDS, home))
    }
}

/// Declare an [`ObjectLayout`] marker type together with its typed
/// [`Field`] constants.
///
/// Fields are assigned consecutive slot indices in declaration order; the
/// generated type implements [`ObjectLayout`] with the matching
/// `NUM_FIELDS`.  See the [module docs](crate::layout) for an example.
#[macro_export]
macro_rules! object_layout {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $($(#[$fmeta:meta])* $field:ident : $ty:ty),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug)]
        $vis struct $name;

        impl $name {
            $crate::object_layout!(@fields 0usize; $($(#[$fmeta])* $field : $ty),+);
        }

        impl $crate::layout::ObjectLayout for $name {
            const NUM_FIELDS: usize = $crate::object_layout!(@count $($field),+);
            const NAME: &'static str = stringify!($name);
        }
    };

    (@fields $idx:expr; $(#[$fmeta:meta])* $field:ident : $ty:ty) => {
        $(#[$fmeta])*
        pub const $field: $crate::layout::Field<$ty> = $crate::layout::Field::at($idx);
    };
    (@fields $idx:expr; $(#[$fmeta:meta])* $field:ident : $ty:ty, $($rest:tt)+) => {
        $(#[$fmeta])*
        pub const $field: $crate::layout::Field<$ty> = $crate::layout::Field::at($idx);
        $crate::object_layout!(@fields $idx + 1usize; $($rest)+);
    };
    (@count $($field:ident),+) => {
        0usize $(+ { let _ = stringify!($field); 1usize })+
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;

    crate::object_layout! {
        /// Test layout: three differently typed fields.
        pub struct DemoLayout {
            /// A floating-point field.
            VALUE: f64,
            /// A signed counter.
            COUNT: i64,
            /// A flag.
            READY: bool,
        }
    }

    fn runtime() -> HyperionRuntime {
        HyperionRuntime::new(HyperionConfig::new(myrinet_200(), 2, ProtocolKind::JavaIc)).unwrap()
    }

    #[test]
    fn layout_assigns_indices_in_declaration_order() {
        assert_eq!(DemoLayout::VALUE.index(), 0);
        assert_eq!(DemoLayout::COUNT.index(), 1);
        assert_eq!(DemoLayout::READY.index(), 2);
        assert_eq!(DemoLayout::NUM_FIELDS, 3);
        assert_eq!(DemoLayout::NAME, "DemoLayout");
    }

    #[test]
    fn struct_accessors_are_typed_by_their_fields() {
        let rt = runtime();
        let out = rt.run(|ctx| {
            let s: HStruct<DemoLayout> = ctx.alloc_struct(NodeId(1));
            s.put(ctx, DemoLayout::VALUE, 2.25);
            s.put(ctx, DemoLayout::COUNT, -40);
            s.put(ctx, DemoLayout::READY, true);
            (
                s.get(ctx, DemoLayout::VALUE),
                s.get(ctx, DemoLayout::COUNT),
                s.get(ctx, DemoLayout::READY),
            )
        });
        assert_eq!(out.result, (2.25, -40, true));
        // Typed accesses pay the ordinary protocol costs.
        assert_eq!(out.report.total_stats().field_writes, 3);
        assert_eq!(out.report.total_stats().field_reads, 3);
    }

    #[test]
    fn struct_wraps_and_exposes_its_object() {
        let rt = runtime();
        rt.run(|ctx| {
            let s: HStruct<DemoLayout> = ctx.alloc_struct(NodeId(0));
            assert_eq!(s.object().num_fields(), 3);
            let again = HStruct::<DemoLayout>::from_object(s.object());
            assert_eq!(again.object().base(), s.object().base());
            assert!(format!("{s:?}").contains("DemoLayout"));
        });
    }

    #[test]
    #[should_panic(expected = "declares 3")]
    fn mismatched_object_shape_is_rejected() {
        let rt = runtime();
        rt.run(|ctx| {
            let obj = ctx.alloc_object(2, NodeId(0));
            let _ = HStruct::<DemoLayout>::from_object(obj);
        });
    }
}
