//! The object model: typed views over the DSM's 8-byte slots.
//!
//! The 2001 system compiled Java classes to C structs whose field accesses
//! were rewritten into the runtime's `get`/`put` primitives.  The
//! reproduction plays the role of that generated code with a small set of
//! typed handles:
//!
//! * [`HObject`] — a fixed number of named-by-index fields (a Java object;
//!   see [`crate::layout`] for the typed field-layout layer on top);
//! * [`HArray<T>`] — a one-dimensional array of slot-sized elements;
//! * [`HMatrix<T>`] — a Java-style two-dimensional array: an array of row
//!   references whose row objects can each live on a different home node
//!   (this is how the benchmarks express their block distributions).
//!
//! Every accessor takes the calling thread's [`ThreadCtx`] so the protocol's
//! access-detection cost lands on the right virtual clock.
//!
//! # Locality-aware access
//!
//! Per-element [`HArray::get`]/[`HArray::put`] pay the protocol's access
//! detection on every slot — that is the behaviour the paper studies.  The
//! locality-aware layer amortises detection to once per *page*:
//!
//! * [`HArray::read_slice`] / [`HArray::write_slice`] move a contiguous
//!   range through the DSM with per-page detection;
//! * [`HArray::view`] pins a range into an [`ArrayView`] — a local snapshot
//!   whose reads cost nothing at all;
//! * [`HArray::view_mut`] yields an [`ArrayViewMut`] write buffer whose
//!   [`ArrayViewMut::commit`] flushes the modified range per page;
//! * [`HMatrix::rows_view`] fetches the row-reference vector once into a
//!   [`MatrixRows`] handle cache, instead of re-reading the row-base slot
//!   through the DSM on every `get`/`put`.
//!
//! Views follow the Java Memory Model the same way cached pages do: a view
//! taken between two synchronisation points sees exactly what the
//! element-wise loop would have seen, and like any cached data it must be
//! re-taken after an acquire (monitor entry, `join`) to observe newer
//! writes.

use std::marker::PhantomData;
use std::ops::{Bound, RangeBounds};

use hyperion_pm2::{GlobalAddr, NodeId};

use crate::runtime::ThreadCtx;

/// A value that fits in one 8-byte DSM slot.
pub trait SlotValue: Copy + Send + Sync + 'static {
    /// Encode into a raw slot.
    fn to_slot(self) -> u64;
    /// Decode from a raw slot.
    fn from_slot(raw: u64) -> Self;
}

impl SlotValue for u64 {
    fn to_slot(self) -> u64 {
        self
    }
    fn from_slot(raw: u64) -> Self {
        raw
    }
}

impl SlotValue for i64 {
    fn to_slot(self) -> u64 {
        self as u64
    }
    fn from_slot(raw: u64) -> Self {
        raw as i64
    }
}

impl SlotValue for i32 {
    fn to_slot(self) -> u64 {
        self as i64 as u64
    }
    fn from_slot(raw: u64) -> Self {
        raw as i64 as i32
    }
}

impl SlotValue for f64 {
    fn to_slot(self) -> u64 {
        self.to_bits()
    }
    fn from_slot(raw: u64) -> Self {
        f64::from_bits(raw)
    }
}

impl SlotValue for bool {
    fn to_slot(self) -> u64 {
        self as u64
    }
    fn from_slot(raw: u64) -> Self {
        raw != 0
    }
}

impl SlotValue for GlobalAddr {
    fn to_slot(self) -> u64 {
        self.0
    }
    fn from_slot(raw: u64) -> Self {
        GlobalAddr(raw)
    }
}

/// A shared object with `fields` slot-sized fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HObject {
    base: GlobalAddr,
    fields: usize,
}

impl HObject {
    /// View an existing allocation as an object (used when object references
    /// are stored in other objects' fields).
    pub fn from_raw(base: GlobalAddr, fields: usize) -> Self {
        HObject { base, fields }
    }

    /// Base address of the object.
    pub fn base(&self) -> GlobalAddr {
        self.base
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields
    }

    /// Address of field `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn field_addr(&self, idx: usize) -> GlobalAddr {
        assert!(
            idx < self.fields,
            "field {idx} out of bounds for object with {} fields",
            self.fields
        );
        self.base.offset(idx as u64)
    }

    /// Read field `idx`.
    pub fn get<T: SlotValue>(&self, ctx: &mut ThreadCtx, idx: usize) -> T {
        T::from_slot(ctx.get_slot(self.field_addr(idx)))
    }

    /// Write field `idx`.
    pub fn put<T: SlotValue>(&self, ctx: &mut ThreadCtx, idx: usize, value: T) {
        ctx.put_slot(self.field_addr(idx), value.to_slot());
    }
}

/// A shared one-dimensional array of slot-sized elements.
pub struct HArray<T: SlotValue> {
    base: GlobalAddr,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SlotValue> Clone for HArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: SlotValue> Copy for HArray<T> {}

impl<T: SlotValue> std::fmt::Debug for HArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HArray")
            .field("base", &self.base)
            .field("len", &self.len)
            .finish()
    }
}

impl<T: SlotValue> HArray<T> {
    /// View an existing allocation as an array.
    pub fn from_raw(base: GlobalAddr, len: usize) -> Self {
        HArray {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the array.
    pub fn base(&self) -> GlobalAddr {
        self.base
    }

    /// Address of element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn addr_of(&self, i: usize) -> GlobalAddr {
        assert!(
            i < self.len,
            "index {i} out of bounds for array of length {}",
            self.len
        );
        self.base.offset(i as u64)
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, ctx: &mut ThreadCtx, i: usize) -> T {
        T::from_slot(ctx.get_slot(self.addr_of(i)))
    }

    /// Write element `i`.
    #[inline]
    pub fn put(&self, ctx: &mut ThreadCtx, i: usize, value: T) {
        ctx.put_slot(self.addr_of(i), value.to_slot());
    }

    /// Resolve a range bound against this array's length.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    fn resolve_range(&self, range: impl RangeBounds<usize>) -> (usize, usize) {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for array of length {}",
            self.len
        );
        (start, end)
    }

    /// Prefetch every page this array's elements live on (`loadIntoCache`
    /// per touched page).  A no-op for local and already-cached pages.
    ///
    /// Under the overlapped transport
    /// ([`hyperion_dsm::TransportConfig::overlapped_fetches`]) the fetches
    /// are issued as split transactions, so calling this right after an
    /// acquire point hides the transfer latency behind whatever computation
    /// runs before the data's first real use.
    pub fn prefetch(&self, ctx: &mut ThreadCtx) {
        ctx.prefetch_slots(self.base, self.len);
    }

    /// Bulk-read `range` into a local vector, paying access detection once
    /// per touched page instead of once per element.
    pub fn read_slice(&self, ctx: &mut ThreadCtx, range: impl RangeBounds<usize>) -> Vec<T> {
        let (start, end) = self.resolve_range(range);
        let mut raw = vec![0u64; end - start];
        ctx.read_slots(self.base.offset(start as u64), &mut raw);
        raw.into_iter().map(T::from_slot).collect()
    }

    /// Bulk-write `values` to consecutive elements starting at `start`,
    /// paying access detection once per touched page.  The writes land in
    /// the ordinary dirty-slot bitmaps, so diff flushing keeps its field
    /// granularity.
    ///
    /// # Panics
    /// Panics if the destination range is out of bounds.
    pub fn write_slice(&self, ctx: &mut ThreadCtx, start: usize, values: &[T]) {
        assert!(
            start + values.len() <= self.len,
            "write_slice range {start}..{} out of bounds for array of length {}",
            start + values.len(),
            self.len
        );
        let raw: Vec<u64> = values.iter().map(|v| v.to_slot()).collect();
        ctx.write_slots(self.base.offset(start as u64), &raw);
    }

    /// Pin `range` into a local read view.
    ///
    /// The view performs detection and any page fetches once, up front; its
    /// accessors then read local memory with zero protocol dispatch —
    /// [`ArrayView::get`] does not even need a [`ThreadCtx`].  Take views
    /// *after* an acquire point and within one synchronisation epoch, like
    /// any other cached data.
    pub fn view(&self, ctx: &mut ThreadCtx, range: impl RangeBounds<usize>) -> ArrayView<T> {
        let (start, end) = self.resolve_range(range);
        let mut raw = vec![0u64; end - start];
        ctx.read_slots(self.base.offset(start as u64), &mut raw);
        ArrayView {
            start,
            raw,
            _marker: PhantomData,
        }
    }

    /// Pin `range` into a local read-modify-write buffer.
    ///
    /// The current contents are bulk-read on creation; writes stay local
    /// until [`ArrayViewMut::commit`] flushes the touched sub-range back
    /// through one bulk write.
    pub fn view_mut(&self, ctx: &mut ThreadCtx, range: impl RangeBounds<usize>) -> ArrayViewMut<T> {
        let (start, end) = self.resolve_range(range);
        let mut raw = vec![0u64; end - start];
        ctx.read_slots(self.base.offset(start as u64), &mut raw);
        ArrayViewMut {
            array: *self,
            start,
            written: vec![false; raw.len()],
            raw,
            _marker: PhantomData,
        }
    }

    /// Write `value` into every element (one bulk write).
    pub fn fill(&self, ctx: &mut ThreadCtx, value: T) {
        let values = vec![value; self.len];
        self.write_slice(ctx, 0, &values);
    }

    /// Read the whole array into a local `Vec` (one bulk read).
    pub fn to_vec(&self, ctx: &mut ThreadCtx) -> Vec<T> {
        self.read_slice(ctx, ..)
    }
}

/// A pinned, read-only local snapshot of a range of an [`HArray`].
///
/// Created by [`HArray::view`]; see the module docs for the consistency
/// contract.  Indices are relative to the start of the viewed range.
pub struct ArrayView<T: SlotValue> {
    start: usize,
    raw: Vec<u64>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SlotValue> ArrayView<T> {
    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True if the view covers no elements.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Index (in the parent array) of the view's first element.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Read element `i` of the view — pure local memory, no protocol
    /// dispatch, no [`ThreadCtx`].
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::from_slot(self.raw[i])
    }

    /// Iterate over the viewed elements.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.raw.iter().map(|&r| T::from_slot(r))
    }

    /// Copy the view into a plain vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }
}

impl<T: SlotValue> std::fmt::Debug for ArrayView<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayView")
            .field("start", &self.start)
            .field("len", &self.raw.len())
            .finish()
    }
}

/// A pinned read-modify-write buffer over a range of an [`HArray`].
///
/// Created by [`HArray::view_mut`].  Writes are local until
/// [`ArrayViewMut::commit`]; dropping an uncommitted view discards its
/// writes (there is no implicit flush — a drop cannot charge a clock).
/// Indices are relative to the start of the viewed range.
pub struct ArrayViewMut<T: SlotValue> {
    array: HArray<T>,
    start: usize,
    raw: Vec<u64>,
    /// One flag per element: set since creation / last commit.  Only set
    /// elements are flushed, so a commit can never clobber a concurrent
    /// writer's update to a slot this view merely snapshotted.
    written: Vec<bool>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SlotValue> ArrayViewMut<T> {
    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True if the view covers no elements.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Index (in the parent array) of the view's first element.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Read element `i` of the view (observes local writes).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::from_slot(self.raw[i])
    }

    /// Write element `i` of the view locally.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: T) {
        self.raw[i] = value.to_slot();
        self.written[i] = true;
    }

    /// True if any element has been modified since creation / last commit.
    pub fn is_dirty(&self) -> bool {
        self.written.iter().any(|&w| w)
    }

    /// Flush the modified elements back, one bulk write per contiguous run
    /// of [`ArrayViewMut::set`] elements, and return the view for further
    /// use.  A clean view flushes nothing.
    ///
    /// Only elements actually written through this view are flushed — slots
    /// the view merely snapshotted are left alone, preserving the DSM's
    /// field-granularity no-clobber guarantee exactly as an element-wise
    /// sequence of `put`s would.
    pub fn commit(mut self, ctx: &mut ThreadCtx) -> Self {
        let mut i = 0usize;
        while i < self.written.len() {
            if !self.written[i] {
                i += 1;
                continue;
            }
            let run_start = i;
            while i < self.written.len() && self.written[i] {
                i += 1;
            }
            ctx.write_slots(
                self.array.base.offset((self.start + run_start) as u64),
                &self.raw[run_start..i],
            );
        }
        self.written.fill(false);
        self
    }
}

impl<T: SlotValue> std::fmt::Debug for ArrayViewMut<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayViewMut")
            .field("start", &self.start)
            .field("len", &self.raw.len())
            .field("dirty", &self.is_dirty())
            .finish()
    }
}

/// A Java-style two-dimensional array: a (shared) vector of row references,
/// each row being its own object with its own home node.
///
/// [`HMatrix::get`]/[`HMatrix::put`]/[`HMatrix::row`] perform the row
/// indirection through the DSM on *every call*, exactly like un-hoisted
/// Java `a[r][c]` accesses — after each cache invalidation the row-base
/// slot is detected (and possibly fetched) all over again.  Kernels that
/// touch a matrix repeatedly should take a [`HMatrix::rows_view`] once per
/// synchronisation epoch instead: the row references are immutable after
/// allocation, so caching them is exactly the row-hoisting a Java compiler
/// (or programmer) would do.
pub struct HMatrix<T: SlotValue> {
    rows: HArray<GlobalAddr>,
    cols: usize,
    _marker: PhantomData<fn() -> T>,
}

/// Former name of [`HMatrix`], kept for source compatibility.
pub type Array2<T> = HMatrix<T>;

impl<T: SlotValue> Clone for HMatrix<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: SlotValue> Copy for HMatrix<T> {}

impl<T: SlotValue> std::fmt::Debug for HMatrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HMatrix")
            .field("rows", &self.rows.len())
            .field("cols", &self.cols)
            .finish()
    }
}

impl<T: SlotValue> HMatrix<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fetch the reference to row `r` (a DSM access, exactly like the row
    /// indirection of a Java `double[][]`) and return a handle to the row.
    pub fn row(&self, ctx: &mut ThreadCtx, r: usize) -> HArray<T> {
        let base = self.rows.get(ctx, r);
        HArray::from_raw(base, self.cols)
    }

    /// Read element `(r, c)` through the row indirection.
    pub fn get(&self, ctx: &mut ThreadCtx, r: usize, c: usize) -> T {
        self.row(ctx, r).get(ctx, c)
    }

    /// Write element `(r, c)` through the row indirection.
    pub fn put(&self, ctx: &mut ThreadCtx, r: usize, c: usize, value: T) {
        self.row(ctx, r).put(ctx, c, value);
    }

    /// Fetch *all* row references in one bulk read and return a local
    /// handle cache.
    ///
    /// Row references never change after [`ThreadCtx::alloc_matrix`]
    /// returns, so the cache stays valid for the lifetime of the run — this
    /// is the fix for `get`/`put` re-fetching the row-base slot through the
    /// DSM on every call.  Each calling thread takes its own `rows_view`
    /// (its node still pays the one-time fetch of the row-reference pages,
    /// keeping the protocol accounting honest).
    pub fn rows_view(&self, ctx: &mut ThreadCtx) -> MatrixRows<T> {
        let bases = self.rows.read_slice(ctx, ..);
        MatrixRows {
            bases,
            cols: self.cols,
            _marker: PhantomData,
        }
    }
}

/// A local cache of an [`HMatrix`]'s row handles, created by
/// [`HMatrix::rows_view`].
///
/// Row lookups ([`MatrixRows::row`]) are pure local memory; element accesses
/// still go through the DSM with the protocol's ordinary per-access cost —
/// only the *row indirection* is amortised.
pub struct MatrixRows<T: SlotValue> {
    bases: Vec<GlobalAddr>,
    cols: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SlotValue> MatrixRows<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.bases.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Handle to row `r` — no DSM access, no [`ThreadCtx`].
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> HArray<T> {
        HArray::from_raw(self.bases[r], self.cols)
    }

    /// Read element `(r, c)` using the cached row handle.
    #[inline]
    pub fn get(&self, ctx: &mut ThreadCtx, r: usize, c: usize) -> T {
        self.row(r).get(ctx, c)
    }

    /// Write element `(r, c)` using the cached row handle.
    #[inline]
    pub fn put(&self, ctx: &mut ThreadCtx, r: usize, c: usize, value: T) {
        self.row(r).put(ctx, c, value);
    }

    /// Pin row `r` into a read view (one bulk read of the whole row).
    pub fn row_view(&self, ctx: &mut ThreadCtx, r: usize) -> ArrayView<T> {
        self.row(r).view(ctx, ..)
    }

    /// Pin row `r` into a read-modify-write view.
    pub fn row_view_mut(&self, ctx: &mut ThreadCtx, r: usize) -> ArrayViewMut<T> {
        self.row(r).view_mut(ctx, ..)
    }
}

impl<T: SlotValue> std::fmt::Debug for MatrixRows<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixRows")
            .field("rows", &self.bases.len())
            .field("cols", &self.cols)
            .finish()
    }
}

impl ThreadCtx {
    /// Allocate a shared object with `fields` fields, homed on `home`.
    pub fn alloc_object(&mut self, fields: usize, home: NodeId) -> HObject {
        let base = self.alloc_slots(fields.max(1), home);
        HObject {
            base,
            fields: fields.max(1),
        }
    }

    /// Allocate a shared array of `len` elements homed on `home`.
    pub fn alloc_array<T: SlotValue>(&mut self, len: usize, home: NodeId) -> HArray<T> {
        assert!(len > 0, "cannot allocate an empty array");
        HArray {
            base: self.alloc_slots(len, home),
            len,
            _marker: PhantomData,
        }
    }

    /// Allocate a shared array on fresh pages (no packing with neighbouring
    /// allocations), homed on `home`.
    pub fn alloc_array_page_aligned<T: SlotValue>(
        &mut self,
        len: usize,
        home: NodeId,
    ) -> HArray<T> {
        assert!(len > 0, "cannot allocate an empty array");
        HArray {
            base: self.alloc_slots_page_aligned(len, home),
            len,
            _marker: PhantomData,
        }
    }

    /// Allocate a two-dimensional array with `rows` rows of `cols` elements.
    ///
    /// The row-reference vector is homed on the calling thread's node; each
    /// row object is homed on `home_of_row(r)`, which is how the benchmarks
    /// express their block-of-rows data distributions (Jacobi, ASP).
    pub fn alloc_matrix<T: SlotValue>(
        &mut self,
        rows: usize,
        cols: usize,
        mut home_of_row: impl FnMut(usize) -> NodeId,
    ) -> HMatrix<T> {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let row_refs: HArray<GlobalAddr> = self.alloc_array(rows, self.node());
        let bases: Vec<GlobalAddr> = (0..rows)
            .map(|r| self.alloc_slots(cols, home_of_row(r)))
            .collect();
        row_refs.write_slice(self, 0, &bases);
        HMatrix {
            rows: row_refs,
            cols,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;

    fn runtime(nodes: usize) -> HyperionRuntime {
        HyperionRuntime::new(HyperionConfig::new(
            myrinet_200(),
            nodes,
            ProtocolKind::JavaIc,
        ))
        .unwrap()
    }

    #[test]
    fn slot_value_round_trips() {
        assert_eq!(u64::from_slot(42u64.to_slot()), 42);
        assert_eq!(i64::from_slot((-7i64).to_slot()), -7);
        assert_eq!(i32::from_slot((-123i32).to_slot()), -123);
        assert_eq!(i32::from_slot(i32::MIN.to_slot()), i32::MIN);
        assert_eq!(f64::from_slot(3.25f64.to_slot()), 3.25);
        assert!(f64::from_slot(f64::NAN.to_slot()).is_nan());
        assert!(bool::from_slot(true.to_slot()));
        assert!(!bool::from_slot(false.to_slot()));
        assert_eq!(
            GlobalAddr::from_slot(GlobalAddr(99).to_slot()),
            GlobalAddr(99)
        );
    }

    #[test]
    fn object_fields_are_independent() {
        let rt = runtime(2);
        rt.run(|ctx| {
            let obj = ctx.alloc_object(4, NodeId(1));
            assert_eq!(obj.num_fields(), 4);
            obj.put(ctx, 0, 1.5f64);
            obj.put(ctx, 1, -9i64);
            obj.put(ctx, 2, true);
            assert_eq!(obj.get::<f64>(ctx, 0), 1.5);
            assert_eq!(obj.get::<i64>(ctx, 1), -9);
            assert!(obj.get::<bool>(ctx, 2));
            assert_eq!(obj.get::<i64>(ctx, 3), 0);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn object_field_bounds_are_checked() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let obj = ctx.alloc_object(2, NodeId(0));
            obj.put(ctx, 2, 1u64);
        });
    }

    #[test]
    fn array_round_trip_and_fill() {
        let rt = runtime(2);
        rt.run(|ctx| {
            let arr: HArray<f64> = ctx.alloc_array(10, NodeId(1));
            assert_eq!(arr.len(), 10);
            assert!(!arr.is_empty());
            arr.fill(ctx, 2.5);
            arr.put(ctx, 3, -1.0);
            let v = arr.to_vec(ctx);
            assert_eq!(v.len(), 10);
            assert_eq!(v[3], -1.0);
            assert!(v
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 3)
                .all(|(_, x)| *x == 2.5));
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_are_checked() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let arr: HArray<u64> = ctx.alloc_array(3, NodeId(0));
            let _ = arr.get(ctx, 3);
        });
    }

    #[test]
    fn slice_ops_round_trip_and_bound_check() {
        let rt = runtime(2);
        rt.run(|ctx| {
            let arr: HArray<i64> = ctx.alloc_array(20, NodeId(1));
            let values: Vec<i64> = (0..8).map(|i| i * i - 3).collect();
            arr.write_slice(ctx, 5, &values);
            assert_eq!(arr.read_slice(ctx, 5..13), values);
            assert_eq!(arr.read_slice(ctx, ..).len(), 20);
            assert_eq!(arr.read_slice(ctx, 4..5), vec![0]);
            assert_eq!(arr.get(ctx, 6), values[1]);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_slice_bounds_are_checked() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let arr: HArray<u64> = ctx.alloc_array(4, NodeId(0));
            let _ = arr.read_slice(ctx, 2..5);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_slice_bounds_are_checked() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let arr: HArray<u64> = ctx.alloc_array(4, NodeId(0));
            arr.write_slice(ctx, 3, &[1, 2]);
        });
    }

    #[test]
    fn views_pin_data_and_read_locally() {
        let rt = runtime(2);
        let out = rt.run(|ctx| {
            let arr: HArray<f64> = ctx.alloc_array(16, NodeId(1));
            for i in 0..16 {
                arr.put(ctx, i, i as f64 / 2.0);
            }
            let view = arr.view(ctx, 4..12);
            assert_eq!(view.len(), 8);
            assert_eq!(view.start(), 4);
            assert!(!view.is_empty());
            // Reads need no ctx and charge nothing.
            let before = ctx.now();
            let sum: f64 = view.iter().sum();
            assert_eq!(view.get(0), 2.0);
            assert_eq!(view.to_vec().len(), 8);
            assert_eq!(ctx.now(), before);
            sum
        });
        assert_eq!(out.result, (4..12).map(|i| i as f64 / 2.0).sum::<f64>());
        let total = out.report.total_stats();
        assert_eq!(total.bulk_reads, 1);
    }

    #[test]
    fn mutable_views_buffer_writes_until_commit() {
        let rt = runtime(2);
        rt.run(|ctx| {
            let arr: HArray<i64> = ctx.alloc_array(10, NodeId(0));
            arr.fill(ctx, 7);
            let mut vm = arr.view_mut(ctx, 2..8);
            assert!(!vm.is_dirty());
            assert_eq!(vm.get(0), 7, "view_mut reads current contents");
            vm.set(1, -1);
            vm.set(3, -3);
            assert!(vm.is_dirty());
            // Not yet visible through the DSM.
            assert_eq!(arr.get(ctx, 3), 7);
            let vm = vm.commit(ctx);
            assert!(!vm.is_dirty());
            assert_eq!(arr.get(ctx, 3), -1);
            assert_eq!(arr.get(ctx, 5), -3);
            assert_eq!(arr.get(ctx, 2), 7, "untouched elements keep their value");
            // A clean commit flushes nothing.
            let writes_before = ctx.shared.cluster.total_stats().bulk_writes;
            let _ = vm.commit(ctx);
            assert_eq!(ctx.shared.cluster.total_stats().bulk_writes, writes_before);
        });
    }

    #[test]
    fn commit_flushes_only_written_slots_and_never_clobbers_others() {
        let rt = runtime(2);
        rt.run(|ctx| {
            let arr: HArray<i64> = ctx.alloc_array(10, NodeId(0));
            arr.fill(ctx, 1);
            // Snapshot the whole array, then write only the two ends.
            let mut vm = arr.view_mut(ctx, ..);
            vm.set(0, 100);
            vm.set(9, 900);
            // A concurrent thread on another node updates a middle slot and
            // flushes it home (thread exit is a release point).
            let worker = ctx.spawn_on(NodeId(1), move |t| {
                arr.put(t, 5, 555);
            });
            ctx.join(worker);
            assert_eq!(arr.get(ctx, 5), 555);
            // Committing the view must flush exactly the two written slots:
            // the stale snapshot of slot 5 must NOT be written back.
            let _ = vm.commit(ctx);
            assert_eq!(arr.get(ctx, 0), 100);
            assert_eq!(arr.get(ctx, 9), 900);
            assert_eq!(arr.get(ctx, 5), 555, "commit clobbered a concurrent write");
            assert_eq!(arr.get(ctx, 4), 1, "untouched slots keep their value");
        });
    }

    #[test]
    fn rows_view_caches_row_handles() {
        let rt = runtime(3);
        let out = rt.run(|ctx| {
            let m: HMatrix<i64> = ctx.alloc_matrix(6, 8, |r| NodeId((r % 3) as u32));
            let rows = m.rows_view(ctx);
            assert_eq!(rows.rows(), 6);
            assert_eq!(rows.cols(), 8);
            for r in 0..6 {
                for c in 0..8 {
                    rows.put(ctx, r, c, (r * 8 + c) as i64);
                }
            }
            // Row lookups after the view are free: field reads stay flat
            // while we fetch every row handle again.
            let reads_before = ctx.shared.cluster.total_stats().field_reads;
            for r in 0..6 {
                let row = rows.row(r);
                assert_eq!(ctx.home_of(row.base()), NodeId((r % 3) as u32));
            }
            let reads_after = ctx.shared.cluster.total_stats().field_reads;
            assert_eq!(reads_before, reads_after);
            // Element reads agree with the per-access path.
            for r in 0..6 {
                for c in 0..8 {
                    assert_eq!(rows.get(ctx, r, c), m.get(ctx, r, c));
                }
            }
            let rv = rows.row_view(ctx, 2);
            let total: i64 = rv.iter().sum();
            let mut rvm = rows.row_view_mut(ctx, 3);
            rvm.set(0, 999);
            let _ = rvm.commit(ctx);
            assert_eq!(m.get(ctx, 3, 0), 999);
            total
        });
        assert_eq!(out.result, (16..24).sum::<i64>());
    }

    #[test]
    fn matrix_rows_live_on_their_assigned_homes() {
        let rt = runtime(3);
        rt.run(|ctx| {
            let m: HMatrix<i64> = ctx.alloc_matrix(6, 8, |r| NodeId((r % 3) as u32));
            for r in 0..6 {
                for c in 0..8 {
                    m.put(ctx, r, c, (r * 8 + c) as i64);
                }
            }
            for r in 0..6 {
                let row = m.row(ctx, r);
                assert_eq!(ctx.home_of(row.base()), NodeId((r % 3) as u32));
                for c in 0..8 {
                    assert_eq!(m.get(ctx, r, c), (r * 8 + c) as i64);
                }
            }
            assert_eq!(m.rows(), 6);
            assert_eq!(m.cols(), 8);
        });
    }

    #[test]
    fn page_aligned_array_starts_a_fresh_page() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let a: HArray<u64> = ctx.alloc_array(4, NodeId(0));
            let b: HArray<u64> = ctx.alloc_array_page_aligned(4, NodeId(0));
            assert_ne!(a.base().page(), b.base().page());
            assert_eq!(b.base().slot(), 0);
        });
    }
}
