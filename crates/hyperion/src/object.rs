//! The object model: typed views over the DSM's 8-byte slots.
//!
//! The 2001 system compiled Java classes to C structs whose field accesses
//! were rewritten into the runtime's `get`/`put` primitives.  The
//! reproduction plays the role of that generated code with a small set of
//! typed handles:
//!
//! * [`HObject`] — a fixed number of named-by-index fields (a Java object);
//! * [`HArray<T>`] — a one-dimensional array of slot-sized elements;
//! * [`Array2<T>`] — a Java-style two-dimensional array: an array of row
//!   references whose row objects can each live on a different home node
//!   (this is how the benchmarks express their block distributions).
//!
//! Every accessor takes the calling thread's [`ThreadCtx`] so the protocol's
//! access-detection cost lands on the right virtual clock.

use std::marker::PhantomData;

use hyperion_pm2::{GlobalAddr, NodeId};

use crate::runtime::ThreadCtx;

/// A value that fits in one 8-byte DSM slot.
pub trait SlotValue: Copy + Send + Sync + 'static {
    /// Encode into a raw slot.
    fn to_slot(self) -> u64;
    /// Decode from a raw slot.
    fn from_slot(raw: u64) -> Self;
}

impl SlotValue for u64 {
    fn to_slot(self) -> u64 {
        self
    }
    fn from_slot(raw: u64) -> Self {
        raw
    }
}

impl SlotValue for i64 {
    fn to_slot(self) -> u64 {
        self as u64
    }
    fn from_slot(raw: u64) -> Self {
        raw as i64
    }
}

impl SlotValue for i32 {
    fn to_slot(self) -> u64 {
        self as i64 as u64
    }
    fn from_slot(raw: u64) -> Self {
        raw as i64 as i32
    }
}

impl SlotValue for f64 {
    fn to_slot(self) -> u64 {
        self.to_bits()
    }
    fn from_slot(raw: u64) -> Self {
        f64::from_bits(raw)
    }
}

impl SlotValue for bool {
    fn to_slot(self) -> u64 {
        self as u64
    }
    fn from_slot(raw: u64) -> Self {
        raw != 0
    }
}

impl SlotValue for GlobalAddr {
    fn to_slot(self) -> u64 {
        self.0
    }
    fn from_slot(raw: u64) -> Self {
        GlobalAddr(raw)
    }
}

/// A shared object with `fields` slot-sized fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HObject {
    base: GlobalAddr,
    fields: usize,
}

impl HObject {
    /// View an existing allocation as an object (used when object references
    /// are stored in other objects' fields).
    pub fn from_raw(base: GlobalAddr, fields: usize) -> Self {
        HObject { base, fields }
    }

    /// Base address of the object.
    pub fn base(&self) -> GlobalAddr {
        self.base
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields
    }

    /// Address of field `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn field_addr(&self, idx: usize) -> GlobalAddr {
        assert!(
            idx < self.fields,
            "field {idx} out of bounds for object with {} fields",
            self.fields
        );
        self.base.offset(idx as u64)
    }

    /// Read field `idx`.
    pub fn get<T: SlotValue>(&self, ctx: &mut ThreadCtx, idx: usize) -> T {
        T::from_slot(ctx.get_slot(self.field_addr(idx)))
    }

    /// Write field `idx`.
    pub fn put<T: SlotValue>(&self, ctx: &mut ThreadCtx, idx: usize, value: T) {
        ctx.put_slot(self.field_addr(idx), value.to_slot());
    }
}

/// A shared one-dimensional array of slot-sized elements.
pub struct HArray<T: SlotValue> {
    base: GlobalAddr,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SlotValue> Clone for HArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: SlotValue> Copy for HArray<T> {}

impl<T: SlotValue> std::fmt::Debug for HArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HArray")
            .field("base", &self.base)
            .field("len", &self.len)
            .finish()
    }
}

impl<T: SlotValue> HArray<T> {
    /// View an existing allocation as an array.
    pub fn from_raw(base: GlobalAddr, len: usize) -> Self {
        HArray {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the array.
    pub fn base(&self) -> GlobalAddr {
        self.base
    }

    /// Address of element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn addr_of(&self, i: usize) -> GlobalAddr {
        assert!(
            i < self.len,
            "index {i} out of bounds for array of length {}",
            self.len
        );
        self.base.offset(i as u64)
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, ctx: &mut ThreadCtx, i: usize) -> T {
        T::from_slot(ctx.get_slot(self.addr_of(i)))
    }

    /// Write element `i`.
    #[inline]
    pub fn put(&self, ctx: &mut ThreadCtx, i: usize, value: T) {
        ctx.put_slot(self.addr_of(i), value.to_slot());
    }

    /// Write `value` into every element.
    pub fn fill(&self, ctx: &mut ThreadCtx, value: T) {
        for i in 0..self.len {
            self.put(ctx, i, value);
        }
    }

    /// Read the whole array into a local `Vec` (test / verification helper).
    pub fn to_vec(&self, ctx: &mut ThreadCtx) -> Vec<T> {
        (0..self.len).map(|i| self.get(ctx, i)).collect()
    }
}

/// A Java-style two-dimensional array: a (shared) vector of row references,
/// each row being its own object with its own home node.
pub struct Array2<T: SlotValue> {
    rows: HArray<GlobalAddr>,
    cols: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SlotValue> Clone for Array2<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: SlotValue> Copy for Array2<T> {}

impl<T: SlotValue> std::fmt::Debug for Array2<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Array2")
            .field("rows", &self.rows.len())
            .field("cols", &self.cols)
            .finish()
    }
}

impl<T: SlotValue> Array2<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fetch the reference to row `r` (a DSM access, exactly like the row
    /// indirection of a Java `double[][]`) and return a handle to the row.
    pub fn row(&self, ctx: &mut ThreadCtx, r: usize) -> HArray<T> {
        let base = self.rows.get(ctx, r);
        HArray::from_raw(base, self.cols)
    }

    /// Read element `(r, c)` through the row indirection.
    pub fn get(&self, ctx: &mut ThreadCtx, r: usize, c: usize) -> T {
        self.row(ctx, r).get(ctx, c)
    }

    /// Write element `(r, c)` through the row indirection.
    pub fn put(&self, ctx: &mut ThreadCtx, r: usize, c: usize, value: T) {
        self.row(ctx, r).put(ctx, c, value);
    }
}

impl ThreadCtx {
    /// Allocate a shared object with `fields` fields, homed on `home`.
    pub fn alloc_object(&mut self, fields: usize, home: NodeId) -> HObject {
        let base = self.alloc_slots(fields.max(1), home);
        HObject {
            base,
            fields: fields.max(1),
        }
    }

    /// Allocate a shared array of `len` elements homed on `home`.
    pub fn alloc_array<T: SlotValue>(&mut self, len: usize, home: NodeId) -> HArray<T> {
        assert!(len > 0, "cannot allocate an empty array");
        HArray {
            base: self.alloc_slots(len, home),
            len,
            _marker: PhantomData,
        }
    }

    /// Allocate a shared array on fresh pages (no packing with neighbouring
    /// allocations), homed on `home`.
    pub fn alloc_array_page_aligned<T: SlotValue>(
        &mut self,
        len: usize,
        home: NodeId,
    ) -> HArray<T> {
        assert!(len > 0, "cannot allocate an empty array");
        HArray {
            base: self.alloc_slots_page_aligned(len, home),
            len,
            _marker: PhantomData,
        }
    }

    /// Allocate a two-dimensional array with `rows` rows of `cols` elements.
    ///
    /// The row-reference vector is homed on the calling thread's node; each
    /// row object is homed on `home_of_row(r)`, which is how the benchmarks
    /// express their block-of-rows data distributions (Jacobi, ASP).
    pub fn alloc_matrix<T: SlotValue>(
        &mut self,
        rows: usize,
        cols: usize,
        mut home_of_row: impl FnMut(usize) -> NodeId,
    ) -> Array2<T> {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let row_refs: HArray<GlobalAddr> = self.alloc_array(rows, self.node());
        for r in 0..rows {
            let home = home_of_row(r);
            let base = self.alloc_slots(cols, home);
            row_refs.put(self, r, base);
        }
        Array2 {
            rows: row_refs,
            cols,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{HyperionConfig, HyperionRuntime};
    use hyperion_dsm::ProtocolKind;
    use hyperion_model::myrinet_200;

    fn runtime(nodes: usize) -> HyperionRuntime {
        HyperionRuntime::new(HyperionConfig::new(
            myrinet_200(),
            nodes,
            ProtocolKind::JavaIc,
        ))
        .unwrap()
    }

    #[test]
    fn slot_value_round_trips() {
        assert_eq!(u64::from_slot(42u64.to_slot()), 42);
        assert_eq!(i64::from_slot((-7i64).to_slot()), -7);
        assert_eq!(i32::from_slot((-123i32).to_slot()), -123);
        assert_eq!(i32::from_slot(i32::MIN.to_slot()), i32::MIN);
        assert_eq!(f64::from_slot(3.25f64.to_slot()), 3.25);
        assert!(f64::from_slot(f64::NAN.to_slot()).is_nan());
        assert!(bool::from_slot(true.to_slot()));
        assert!(!bool::from_slot(false.to_slot()));
        assert_eq!(
            GlobalAddr::from_slot(GlobalAddr(99).to_slot()),
            GlobalAddr(99)
        );
    }

    #[test]
    fn object_fields_are_independent() {
        let rt = runtime(2);
        rt.run(|ctx| {
            let obj = ctx.alloc_object(4, NodeId(1));
            assert_eq!(obj.num_fields(), 4);
            obj.put(ctx, 0, 1.5f64);
            obj.put(ctx, 1, -9i64);
            obj.put(ctx, 2, true);
            assert_eq!(obj.get::<f64>(ctx, 0), 1.5);
            assert_eq!(obj.get::<i64>(ctx, 1), -9);
            assert!(obj.get::<bool>(ctx, 2));
            assert_eq!(obj.get::<i64>(ctx, 3), 0);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn object_field_bounds_are_checked() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let obj = ctx.alloc_object(2, NodeId(0));
            obj.put(ctx, 2, 1u64);
        });
    }

    #[test]
    fn array_round_trip_and_fill() {
        let rt = runtime(2);
        rt.run(|ctx| {
            let arr: HArray<f64> = ctx.alloc_array(10, NodeId(1));
            assert_eq!(arr.len(), 10);
            assert!(!arr.is_empty());
            arr.fill(ctx, 2.5);
            arr.put(ctx, 3, -1.0);
            let v = arr.to_vec(ctx);
            assert_eq!(v.len(), 10);
            assert_eq!(v[3], -1.0);
            assert!(v
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 3)
                .all(|(_, x)| *x == 2.5));
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_are_checked() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let arr: HArray<u64> = ctx.alloc_array(3, NodeId(0));
            let _ = arr.get(ctx, 3);
        });
    }

    #[test]
    fn matrix_rows_live_on_their_assigned_homes() {
        let rt = runtime(3);
        rt.run(|ctx| {
            let m: Array2<i64> = ctx.alloc_matrix(6, 8, |r| NodeId((r % 3) as u32));
            for r in 0..6 {
                for c in 0..8 {
                    m.put(ctx, r, c, (r * 8 + c) as i64);
                }
            }
            for r in 0..6 {
                let row = m.row(ctx, r);
                assert_eq!(ctx.home_of(row.base()), NodeId((r % 3) as u32));
                for c in 0..8 {
                    assert_eq!(m.get(ctx, r, c), (r * 8 + c) as i64);
                }
            }
            assert_eq!(m.rows(), 6);
            assert_eq!(m.cols(), 8);
        });
    }

    #[test]
    fn page_aligned_array_starts_a_fresh_page() {
        let rt = runtime(1);
        rt.run(|ctx| {
            let a: HArray<u64> = ctx.alloc_array(4, NodeId(0));
            let b: HArray<u64> = ctx.alloc_array_page_aligned(4, NodeId(0));
            assert_ne!(a.base().page(), b.base().page());
            assert_eq!(b.base().slot(), 0);
        });
    }
}
