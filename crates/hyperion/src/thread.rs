//! The load balancer and Hyperion thread handles.
//!
//! The paper's Table 1 lists a "Load balancer" module that "handles the
//! distribution of newly created threads to nodes" using "a round-robin
//! thread distribution algorithm"; [`LoadBalancer`] is that module.  Actual
//! thread creation happens in [`crate::runtime::ThreadCtx::spawn`]; the
//! handle returned there is an [`HThreadHandle`].

use std::sync::atomic::{AtomicUsize, Ordering};

use hyperion_model::VTime;
use hyperion_pm2::{NodeId, ThreadId};

/// Round-robin placement of newly created threads over the run's nodes.
#[derive(Debug)]
pub struct LoadBalancer {
    nodes: usize,
    next: AtomicUsize,
}

impl LoadBalancer {
    /// A balancer distributing over `nodes` nodes, starting at node 0.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "load balancer needs at least one node");
        LoadBalancer {
            nodes,
            next: AtomicUsize::new(0),
        }
    }

    /// Pick the node for the next thread (round-robin).
    pub fn assign(&self) -> NodeId {
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        NodeId((slot % self.nodes) as u32)
    }

    /// Number of nodes the balancer distributes over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of placement decisions made so far.
    pub fn assigned(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }
}

/// Handle to a running (or finished) Hyperion thread.
///
/// Join it through [`crate::runtime::ThreadCtx::join`] so the child's final
/// virtual time is merged into the joining thread's clock, mirroring
/// `Thread.join()` semantics.
#[derive(Debug)]
pub struct HThreadHandle {
    thread: ThreadId,
    node: NodeId,
    os_handle: std::thread::JoinHandle<VTime>,
}

impl HThreadHandle {
    pub(crate) fn new(
        thread: ThreadId,
        node: NodeId,
        os_handle: std::thread::JoinHandle<VTime>,
    ) -> Self {
        HThreadHandle {
            thread,
            node,
            os_handle,
        }
    }

    /// Id of the thread this handle refers to.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// Node the thread was created on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Block until the thread finishes and return its final virtual time.
    ///
    /// # Panics
    /// Propagates a panic from the thread body.
    pub(crate) fn into_end_time(self) -> VTime {
        self.os_handle
            .join()
            .expect("a Hyperion thread panicked; see stderr for the original panic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_over_nodes() {
        let lb = LoadBalancer::new(3);
        let picks: Vec<u32> = (0..7).map(|_| lb.assign().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(lb.assigned(), 7);
        assert_eq!(lb.nodes(), 3);
    }

    #[test]
    fn single_node_balancer_always_picks_node_zero() {
        let lb = LoadBalancer::new(1);
        for _ in 0..5 {
            assert_eq!(lb.assign(), NodeId(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_balancer_panics() {
        let _ = LoadBalancer::new(0);
    }

    #[test]
    fn concurrent_assignment_stays_balanced() {
        use std::sync::Arc;
        let lb = Arc::new(LoadBalancer::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lb = Arc::clone(&lb);
                std::thread::spawn(move || {
                    let mut counts = vec![0usize; 4];
                    for _ in 0..100 {
                        counts[lb.assign().index()] += 1;
                    }
                    counts
                })
            })
            .collect();
        let mut totals = vec![0usize; 4];
        for h in handles {
            for (i, c) in h.join().unwrap().into_iter().enumerate() {
                totals[i] += c;
            }
        }
        assert_eq!(totals.iter().sum::<usize>(), 400);
        for &t in &totals {
            assert_eq!(t, 100, "round robin must be perfectly balanced: {totals:?}");
        }
    }
}
