//! # hyperion-model
//!
//! Hardware and cost models plus the virtual-time engine used by the
//! Hyperion-RS reproduction of *"Remote object detection in cluster-based
//! Java"* (Antoniu & Hatcher, JavaPDC/IPDPS 2001).
//!
//! The paper evaluates two access-detection protocols (`java_ic`, `java_pf`)
//! on two physical clusters.  Those clusters no longer exist, so the
//! reproduction executes the runtime for real (real threads, real data
//! movement, real protocol state machines) while *time* is accounted on a
//! virtual clock parameterised by the machine models in this crate:
//!
//! * [`vtime`] — picosecond-resolution virtual time, per-thread clocks and
//!   per-node server clocks (home-node service contention).
//! * [`machine`] — CPU, network and DSM cost models, and the two cluster
//!   presets used throughout the paper: [`machine::myrinet_200`] and
//!   [`machine::sci_450`].
//! * [`cost`] — symbolic operation costs so that application kernels can
//!   express their inner-loop work in machine-independent terms.
//! * [`stats`] — atomic event counters (locality checks, page faults,
//!   `mprotect` calls, page loads, diffs, messages, bytes, monitor traffic).
//!
//! Everything in this crate is independent of the DSM and runtime layers and
//! is exhaustively unit- and property-tested.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cost;
pub mod machine;
pub mod stats;
pub mod vtime;

pub use cost::{Op, OpCounts, WorkEstimate};
pub use machine::{
    myrinet_200, scaled_cluster, sci_450, ClusterSpec, CpuModel, DsmCostModel, MachineModel,
    NetworkModel,
};
pub use stats::{NodeStats, StatsSnapshot, WireServiceSnapshot, WireStats};
pub use vtime::{ServerClock, ThreadClock, VTime};
