//! Virtual time: the clocks that replace the 2001 clusters' wall clocks.
//!
//! The reproduction executes Java-style threads as real OS threads, but all
//! *reported* time is virtual.  Three pieces cooperate:
//!
//! * [`VTime`] — a picosecond-resolution instant/duration (one type serves as
//!   both, like `std::time::Duration`).
//! * [`ThreadClock`] — a thread-private Lamport-style clock.  Compute work,
//!   locality checks, page faults and message latencies all advance it.
//! * [`ServerClock`] — a shared, monotonically advancing "next free" time for
//!   a node's protocol-service processor.  Remote page requests are
//!   serialised through it, which is how home-node contention shows up in the
//!   execution times (essential for the Barnes-Hut flattening in Fig. 3).

use std::sync::atomic::{AtomicU64, Ordering};

/// A point in (or span of) virtual time, stored in integer picoseconds.
///
/// Picoseconds keep sub-cycle costs exact (a 450 MHz cycle is 2222 ps) while
/// still allowing more than five virtual hours in a `u64`, far beyond the
/// longest run in the paper (~3000 s for ASP on one node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(u64);

impl VTime {
    /// The zero instant / empty duration.
    pub const ZERO: VTime = VTime(0);
    /// Largest representable time.
    pub const MAX: VTime = VTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        VTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        VTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        VTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        VTime(ms * 1_000_000_000)
    }

    /// Construct from a floating-point number of seconds (saturating, never
    /// negative).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return VTime::ZERO;
        }
        let ps = secs * 1e12;
        if ps >= u64::MAX as f64 {
            VTime::MAX
        } else {
            VTime(ps as u64)
        }
    }

    /// Construct from a floating-point number of nanoseconds (saturating,
    /// never negative).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            return VTime::ZERO;
        }
        let ps = ns * 1e3;
        if ps >= u64::MAX as f64 {
            VTime::MAX
        } else {
            VTime(ps as u64)
        }
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: VTime) -> VTime {
        VTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: VTime) -> VTime {
        VTime(self.0.saturating_sub(rhs.0))
    }

    /// Pointwise maximum.
    #[inline]
    pub fn max(self, rhs: VTime) -> VTime {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Multiply a duration by an integer count (saturating).
    #[inline]
    pub fn times(self, n: u64) -> VTime {
        VTime(self.0.saturating_mul(n))
    }

    /// True if this is the zero instant.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VTime) -> VTime {
        self.saturating_add(rhs)
    }
}

impl std::ops::AddAssign for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VTime) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for VTime {
    type Output = VTime;
    #[inline]
    fn sub(self, rhs: VTime) -> VTime {
        self.saturating_sub(rhs)
    }
}

impl std::iter::Sum for VTime {
    fn sum<I: Iterator<Item = VTime>>(iter: I) -> VTime {
        iter.fold(VTime::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Debug for VTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for VTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} us", s * 1e6)
        } else {
            write!(f, "{} ns", self.as_ns())
        }
    }
}

/// A thread-private virtual clock.
///
/// The clock only ever moves forward.  It is advanced by charging durations
/// (compute work, protocol costs) and by merging with timestamps received
/// from other threads or nodes (RPC replies, monitor hand-offs, barrier
/// releases), exactly like a Lamport clock over the events of the simulated
/// execution.
#[derive(Clone, Debug)]
pub struct ThreadClock {
    now: VTime,
    charged: VTime,
}

impl ThreadClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Self::starting_at(VTime::ZERO)
    }

    /// A clock starting at the given instant (used when a thread is created
    /// by another thread part-way through a run).
    pub fn starting_at(start: VTime) -> Self {
        ThreadClock {
            now: start,
            charged: VTime::ZERO,
        }
    }

    /// Current virtual time of this thread.
    #[inline]
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Total duration explicitly charged to this clock (excludes idle time
    /// introduced by `merge`, i.e. time spent waiting on other threads).
    #[inline]
    pub fn charged(&self) -> VTime {
        self.charged
    }

    /// Advance the clock by `d` units of local work.
    #[inline]
    pub fn advance(&mut self, d: VTime) {
        self.now += d;
        self.charged += d;
    }

    /// Merge with an externally observed timestamp: the clock jumps forward
    /// to `t` if `t` is later than the current time (it never moves back).
    #[inline]
    pub fn merge(&mut self, t: VTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Merge with `t` and then advance by `d`; convenience for the common
    /// "wait for an event, then pay a local cost" pattern.
    #[inline]
    pub fn merge_then_advance(&mut self, t: VTime, d: VTime) {
        self.merge(t);
        self.advance(d);
    }
}

impl Default for ThreadClock {
    fn default() -> Self {
        Self::new()
    }
}

/// The service clock of a node's protocol processor.
///
/// Incoming DSM requests (page fetches, diff applications, remote monitor
/// acquisitions) are serialised: each request begins service no earlier than
/// both its arrival time and the completion of the previously accepted
/// request.  This models the home node's handler occupancy and is the source
/// of the contention-driven flattening the paper observes for Barnes-Hut at
/// large node counts.
#[derive(Debug, Default)]
pub struct ServerClock {
    free_at: AtomicU64,
}

impl ServerClock {
    /// A server that is free from virtual time zero.
    pub fn new() -> Self {
        ServerClock {
            free_at: AtomicU64::new(0),
        }
    }

    /// Time at which the server becomes free, as last recorded.
    pub fn free_at(&self) -> VTime {
        VTime::from_ps(self.free_at.load(Ordering::Acquire))
    }

    /// Reserve `service` time starting no earlier than `arrival`.
    ///
    /// Returns the completion time of the request.  Linearisable: concurrent
    /// callers each obtain a disjoint service interval.
    pub fn serve(&self, arrival: VTime, service: VTime) -> VTime {
        let mut cur = self.free_at.load(Ordering::Acquire);
        loop {
            let start = arrival.as_ps().max(cur);
            let end = start.saturating_add(service.as_ps());
            match self
                .free_at
                .compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return VTime::from_ps(end),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reset the server to idle at time zero (between experiment runs).
    pub fn reset(&self) {
        self.free_at.store(0, Ordering::Release);
    }
}

/// A shared monotone watermark of virtual time, used to compute the maximum
/// finishing time over a set of threads (e.g. barrier release times and the
/// final execution time of a run).
#[derive(Debug, Default)]
pub struct TimeWatermark {
    max_ps: AtomicU64,
}

impl TimeWatermark {
    /// New watermark at time zero.
    pub fn new() -> Self {
        TimeWatermark {
            max_ps: AtomicU64::new(0),
        }
    }

    /// Record an observed time; keeps the maximum.
    pub fn record(&self, t: VTime) {
        self.max_ps.fetch_max(t.as_ps(), Ordering::AcqRel);
    }

    /// The maximum time recorded so far.
    pub fn max(&self) -> VTime {
        VTime::from_ps(self.max_ps.load(Ordering::Acquire))
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.max_ps.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_conversions_round_trip() {
        assert_eq!(VTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(VTime::from_us(3).as_ns(), 3_000);
        assert_eq!(VTime::from_ms(2).as_us(), 2_000);
        assert!((VTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(VTime::from_secs_f64(-1.0), VTime::ZERO);
        assert_eq!(VTime::from_ns_f64(-5.0), VTime::ZERO);
        assert!((VTime::from_ns_f64(2.5).as_ps()) == 2_500);
    }

    #[test]
    fn vtime_saturates_instead_of_overflowing() {
        let max = VTime::MAX;
        assert_eq!(max + VTime::from_ns(1), VTime::MAX);
        assert_eq!(VTime::ZERO - VTime::from_ns(1), VTime::ZERO);
        assert_eq!(VTime::MAX.times(3), VTime::MAX);
        assert_eq!(VTime::from_secs_f64(1e20), VTime::MAX);
    }

    #[test]
    fn vtime_ordering_and_max() {
        let a = VTime::from_us(5);
        let b = VTime::from_us(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert_eq!(a.times(3), VTime::from_us(15));
    }

    #[test]
    fn vtime_display_picks_sensible_units() {
        assert_eq!(format!("{}", VTime::from_ns(120)), "120 ns");
        assert_eq!(format!("{}", VTime::from_us(12)), "12.000 us");
        assert_eq!(format!("{}", VTime::from_ms(12)), "12.000 ms");
        assert_eq!(format!("{}", VTime::from_secs_f64(2.0)), "2.000 s");
    }

    #[test]
    fn vtime_sum_over_iterator() {
        let total: VTime = (1..=4u64).map(VTime::from_us).sum();
        assert_eq!(total, VTime::from_us(10));
    }

    #[test]
    fn thread_clock_advances_and_merges() {
        let mut c = ThreadClock::new();
        c.advance(VTime::from_us(10));
        assert_eq!(c.now(), VTime::from_us(10));
        assert_eq!(c.charged(), VTime::from_us(10));

        // Merging with an earlier timestamp is a no-op.
        c.merge(VTime::from_us(5));
        assert_eq!(c.now(), VTime::from_us(10));

        // Merging with a later timestamp jumps forward but does not count as
        // charged (it is time spent waiting).
        c.merge(VTime::from_us(25));
        assert_eq!(c.now(), VTime::from_us(25));
        assert_eq!(c.charged(), VTime::from_us(10));

        c.merge_then_advance(VTime::from_us(30), VTime::from_us(1));
        assert_eq!(c.now(), VTime::from_us(31));
        assert_eq!(c.charged(), VTime::from_us(11));
    }

    #[test]
    fn thread_clock_starting_at_offset() {
        let mut c = ThreadClock::starting_at(VTime::from_ms(1));
        assert_eq!(c.now(), VTime::from_ms(1));
        c.advance(VTime::from_ms(1));
        assert_eq!(c.now(), VTime::from_ms(2));
        assert_eq!(c.charged(), VTime::from_ms(1));
    }

    #[test]
    fn server_clock_serialises_requests() {
        let s = ServerClock::new();
        // First request arrives at t=10us and takes 5us.
        let end1 = s.serve(VTime::from_us(10), VTime::from_us(5));
        assert_eq!(end1, VTime::from_us(15));
        // Second request arrives earlier but the server is busy until 15us.
        let end2 = s.serve(VTime::from_us(12), VTime::from_us(5));
        assert_eq!(end2, VTime::from_us(20));
        // Third request arrives long after the server is idle.
        let end3 = s.serve(VTime::from_us(100), VTime::from_us(1));
        assert_eq!(end3, VTime::from_us(101));
        assert_eq!(s.free_at(), VTime::from_us(101));
        s.reset();
        assert_eq!(s.free_at(), VTime::ZERO);
    }

    #[test]
    fn server_clock_concurrent_reservations_do_not_overlap() {
        use std::sync::Arc;
        let s = Arc::new(ServerClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut ends = Vec::new();
                for _ in 0..1000 {
                    ends.push(s.serve(VTime::ZERO, VTime::from_ns(10)));
                }
                ends
            }));
        }
        let mut all: Vec<VTime> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Each of the 8000 reservations is 10ns; because they never overlap,
        // all completion times are distinct multiples of 10ns and the last
        // one is exactly 8000 * 10ns.
        all.dedup();
        assert_eq!(all.len(), 8000);
        assert_eq!(*all.last().unwrap(), VTime::from_ns(80_000));
    }

    #[test]
    fn watermark_tracks_maximum() {
        let w = TimeWatermark::new();
        w.record(VTime::from_us(3));
        w.record(VTime::from_us(1));
        w.record(VTime::from_us(9));
        assert_eq!(w.max(), VTime::from_us(9));
        w.reset();
        assert_eq!(w.max(), VTime::ZERO);
    }
}
